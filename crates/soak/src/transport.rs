//! Client/server transport storm: many concurrent [`RemoteClient`]s
//! hammer replicated [`TransportServer`]s through seeded
//! [`FaultyProxy`]s injecting every wire fault class, with zero-loss
//! accounting and end-of-run SLO gates over the `rpc.*` telemetry.
//!
//! Determinism contract, mirroring the main soak storm: the request
//! plan (which client reads which blocks in which batch) is a pure
//! function of the seed, so `requests_planned`, `blocks_requested`,
//! `blocks_served`, and `value_sig` in [`TransportTallies`] are
//! bit-identical for a fixed seed at any thread count — every block
//! must come back byte-identical to a direct [`StoreReader`] read or
//! the run charges data loss. What the storm had to *do* to get there
//! (retries, hedges, frame errors, which connections the proxy hit) is
//! timing-dependent and reported separately in
//! [`TransportReport::recovery`] and [`TransportReport::proxy`].

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use durable::retry::{splitmix64, RetryPolicy};
use eri_server::transport::ServeOptions;
use eri_server::{
    AdmissionConfig, BreakerConfig, ClientConfig, Endpoint, InjectedLoad, OverloadInject,
    RemoteClient, ServerConfig, ServerHandle, TransportServer,
};
use eri_store::{StoreReader, StoreWriter};
use faults::overload::{OverloadConfig, OverloadInjector};
use faults::{FaultyProxy, ProxyFaultConfig, ProxyTallies, WireFault};
use pastri::BlockGeometry;

use crate::report::GateResult;
use crate::{expected_block, SoakError};

/// End-of-run gates over the wire workload. `None` disables a gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportSloGates {
    /// p99 of the `rpc.rtt_us` histogram (successful-attempt round-trip
    /// time) must be at or below this.
    pub rpc_p99_us: Option<u64>,
    /// Total `rpc.deadline_exceeded` events must not exceed this.
    pub max_deadline_exceeded: Option<u64>,
    /// Total `rpc.frame_errors` (corrupt frames detected) must not
    /// exceed this.
    pub max_frame_errors: Option<u64>,
    /// Overload mode: sheds per planned request must not exceed this
    /// rate (e.g. 0.5 = at most one shed per two planned requests).
    pub max_shed_rate: Option<f64>,
    /// Overload mode: p99 of the `server.queue_wait_us` histogram must
    /// be at or below this.
    pub queue_wait_p99_us: Option<u64>,
    /// Overload mode: total breaker `Opened` transitions across all
    /// clients must not exceed this.
    pub max_breaker_opened: Option<u64>,
}

/// Full configuration of one transport storm.
#[derive(Debug, Clone)]
pub struct TransportStormConfig {
    /// Master seed: request plan, proxy fault schedule, and client
    /// backoff jitter all derive from it.
    pub seed: u64,
    /// Working directory (created; replica store files live under it).
    pub dir: PathBuf,
    /// Replica servers, each over its own byte-identical store copy.
    pub replicas: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Batched read requests per client.
    pub requests_per_client: usize,
    /// Blocks per request (1..=max, seeded draw).
    pub max_batch: usize,
    /// Blocks per store.
    pub scale: usize,
    /// Geometry of every block.
    pub geometry: BlockGeometry,
    /// Error bound of the store.
    pub error_bound: f64,
    /// Per-replica wire fault plan (the proxy seed varies per replica).
    pub faults: ProxyFaultConfig,
    /// Per-attempt socket budget for the clients.
    pub attempt_timeout: Duration,
    /// Whole-call deadline for the clients.
    pub deadline: Duration,
    /// End-of-run gates.
    pub slo: TransportSloGates,
    /// Keep replica stores on disk after the run.
    pub keep_artifacts: bool,
    /// Overload mode: when set, the storm runs *without* wire-fault
    /// proxies (the wire is clean) and instead installs a seeded
    /// overload injector on the server plus circuit breakers in the
    /// clients, ending with a graceful drain instead of an abrupt stop.
    pub overload: Option<OverloadStormConfig>,
}

/// Settings for an overload storm (see [`TransportStormConfig::overload`]).
#[derive(Debug, Clone)]
pub struct OverloadStormConfig {
    /// Seeded forced-shed / slow-handler plan installed on the server.
    pub inject: OverloadConfig,
    /// Client circuit-breaker tuning. The defaults here are
    /// *count-driven* (infinite window, zero cooldown) so breaker
    /// transitions are a pure function of each client's outcome
    /// sequence — which the injector makes a pure function of the seed.
    pub breaker: BreakerConfig,
    /// Server admission tuning. Defaults are generous enough that the
    /// only sheds in the storm are the injected ones (organic shedding
    /// is exercised by directed admission tests instead — mixing the
    /// two would make the tallies timing-dependent).
    pub admission: AdmissionConfig,
    /// Budget for the end-of-run graceful drain.
    pub drain_deadline: Duration,
}

impl Default for OverloadStormConfig {
    fn default() -> Self {
        OverloadStormConfig {
            inject: OverloadConfig::default(),
            breaker: BreakerConfig {
                failure_threshold: 3,
                window_us: u64::MAX,
                cooldown_us: 0,
            },
            admission: AdmissionConfig::default(),
            drain_deadline: Duration::from_secs(10),
        }
    }
}

/// Deterministic overload accounting: in overload mode every one of
/// these is a pure function of the seed (asserted by the determinism
/// test at 1 and 4 rayon threads — the storm uses plain threads, so
/// the pool shape is irrelevant by construction, which is the point).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OverloadTallies {
    /// Structured `Overloaded` refusals observed by the clients.
    pub client_overloaded: u64,
    /// Requests the server shed (injected + organic).
    pub server_shed: u64,
    /// Requests the server admitted.
    pub server_admitted: u64,
    /// Admitted requests the server finished. Equal to
    /// `server_admitted` after a complete drain: nothing dropped.
    pub server_completed: u64,
    /// Requests refused because the server was draining.
    pub refused_draining: u64,
    /// Breaker transitions summed across clients in index order.
    pub breaker_opened: u64,
    pub breaker_half_opened: u64,
    pub breaker_closed: u64,
    /// The graceful drain finished inside its deadline.
    pub drain_complete: bool,
}

impl TransportStormConfig {
    /// A small, fast default wire storm in `dir`: two replicas, every
    /// fault class on every third connection, no gates set.
    #[must_use]
    pub fn storm(dir: &Path, seed: u64) -> Self {
        Self {
            seed,
            dir: dir.to_path_buf(),
            replicas: 2,
            clients: 4,
            requests_per_client: 24,
            max_batch: 4,
            scale: 16,
            geometry: BlockGeometry::new(4, 8),
            error_bound: 1e-9,
            faults: ProxyFaultConfig {
                faulty_every: 3,
                classes: WireFault::ALL.to_vec(),
                max_faults: 64,
                stall: Duration::from_millis(400),
                offset_base: 60,
                offset_window: 512,
            },
            attempt_timeout: Duration::from_millis(250),
            deadline: Duration::from_secs(20),
            slo: TransportSloGates::default(),
            keep_artifacts: false,
            overload: None,
        }
    }

    /// A small, fast default *overload* storm in `dir`: one replica
    /// (no wire faults), seeded forced sheds + slow handlers on the
    /// server, circuit breakers in the clients, graceful drain at the
    /// end. One replica because hedged failover racing half-open
    /// probes is genuinely timing-dependent — multi-replica breaker
    /// behaviour is covered by directed tests; the storm's job is
    /// bit-identical tallies.
    #[must_use]
    pub fn overload_storm(dir: &Path, seed: u64) -> Self {
        Self {
            replicas: 1,
            overload: Some(OverloadStormConfig::default()),
            ..Self::storm(dir, seed)
        }
    }
}

/// Deterministic accounting: pure functions of the seed when the run
/// passes (every planned block must be served).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportTallies {
    /// Requests in the plan (clients × requests_per_client).
    pub requests_planned: u64,
    /// Requests every block of which came back clean.
    pub requests_ok: u64,
    /// Individual blocks requested across all batches.
    pub blocks_requested: u64,
    /// Blocks served byte-identical to the direct-read ground truth.
    pub blocks_served: u64,
    /// Blocks a request failed to bring back — data loss.
    pub lost_blocks: u64,
    /// Blocks served with the wrong bits — silent corruption that beat
    /// the frame CRC and the store parity. Always data loss.
    pub value_mismatches: u64,
    /// splitmix64 fold of every served value's bit pattern, folded per
    /// client in request order, then across clients in index order.
    pub value_sig: u64,
}

/// What one client thread saw, folded into the report.
#[derive(Debug, Default, Clone, Copy)]
struct ClientOutcome {
    requests_ok: u64,
    blocks_requested: u64,
    blocks_served: u64,
    lost_blocks: u64,
    value_mismatches: u64,
    sig: u64,
    stats: eri_server::ClientStats,
}

/// Aggregated client recovery counters (timing-dependent).
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryTallies {
    pub retries: u64,
    pub hedges: u64,
    pub frame_errors: u64,
    pub deadline_exceeded: u64,
}

/// The complete outcome of one transport storm.
#[derive(Debug, Clone)]
pub struct TransportReport {
    pub seed: u64,
    /// Deterministic accounting (see [`TransportTallies`]).
    pub tallies: TransportTallies,
    /// What the clients had to do to get there (timing-dependent).
    pub recovery: RecoveryTallies,
    /// What the proxies injected, summed across replicas
    /// (timing-dependent: connection counts vary with retry timing).
    pub proxy: ProxyTallies,
    /// Every configured gate, evaluated.
    pub gates: Vec<GateResult>,
    /// p99 of `rpc.rtt_us`, when any request succeeded.
    pub rpc_p99_us: Option<u64>,
    /// Overload-mode accounting (seed-deterministic); `None` in
    /// wire-fault mode.
    pub overload: Option<OverloadTallies>,
    /// p99 of `server.queue_wait_us` (overload mode).
    pub queue_wait_p99_us: Option<u64>,
    /// Wall time of the whole storm.
    pub wall: Duration,
}

impl TransportReport {
    /// Every planned block served, byte-identical.
    #[must_use]
    pub fn zero_data_loss(&self) -> bool {
        self.tallies.lost_blocks == 0
            && self.tallies.value_mismatches == 0
            && self.tallies.requests_ok == self.tallies.requests_planned
    }

    /// Every configured gate held.
    #[must_use]
    pub fn all_gates_pass(&self) -> bool {
        self.gates.iter().all(|g| g.pass)
    }

    /// Overload-mode soundness: the drain finished with the books
    /// balanced (no admitted request dropped) and every server-side
    /// shed surfaced at a client as a structured `Overloaded` error —
    /// never a silent timeout. Trivially true in wire-fault mode.
    #[must_use]
    pub fn overload_sound(&self) -> bool {
        self.overload.is_none_or(|o| {
            o.drain_complete
                && o.server_admitted == o.server_completed
                && o.client_overloaded == o.server_shed
        })
    }

    /// The storm's overall verdict.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.zero_data_loss() && self.all_gates_pass() && self.overload_sound()
    }

    /// Machine-readable report (`BENCH_transport_soak.json` by default):
    /// the `"tallies"` line is bit-identical across same-seed runs;
    /// `"recovery"`, `"proxy"`, `"slo"`, and `"timing"` carry the
    /// run-varying numbers.
    #[must_use]
    pub fn to_json(&self, cfg: &TransportStormConfig) -> String {
        let t = &self.tallies;
        let r = &self.recovery;
        let p = &self.proxy;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"transport_soak\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"config\": {{\"replicas\": {}, \"clients\": {}, \"requests_per_client\": {}, \"max_batch\": {}, \"scale\": {}, \"geometry\": [{}, {}], \"faulty_every\": {}, \"max_faults\": {}}},\n",
            cfg.replicas,
            cfg.clients,
            cfg.requests_per_client,
            cfg.max_batch,
            cfg.scale,
            cfg.geometry.num_subblocks,
            cfg.geometry.subblock_size,
            cfg.faults.faulty_every,
            cfg.faults.max_faults,
        ));
        s.push_str(&format!(
            "  \"tallies\": {{\"requests_planned\": {}, \"requests_ok\": {}, \"blocks_requested\": {}, \"blocks_served\": {}, \"lost_blocks\": {}, \"value_mismatches\": {}, \"value_sig\": {}}},\n",
            t.requests_planned,
            t.requests_ok,
            t.blocks_requested,
            t.blocks_served,
            t.lost_blocks,
            t.value_mismatches,
            t.value_sig,
        ));
        s.push_str(&format!(
            "  \"recovery\": {{\"retries\": {}, \"hedges\": {}, \"frame_errors\": {}, \"deadline_exceeded\": {}}},\n",
            r.retries, r.hedges, r.frame_errors, r.deadline_exceeded,
        ));
        s.push_str(&format!(
            "  \"proxy\": {{\"conns\": {}, \"truncates\": {}, \"corrupts\": {}, \"drops\": {}, \"stalls\": {}, \"resets\": {}}},\n",
            p.conns, p.truncates, p.corrupts, p.drops, p.stalls, p.resets,
        ));
        if let Some(o) = &self.overload {
            // Like "tallies": bit-identical across same-seed runs.
            s.push_str(&format!(
                "  \"overload\": {{\"client_overloaded\": {}, \"server_shed\": {}, \"server_admitted\": {}, \"server_completed\": {}, \"refused_draining\": {}, \"breaker_opened\": {}, \"breaker_half_opened\": {}, \"breaker_closed\": {}, \"drain_complete\": {}}},\n",
                o.client_overloaded,
                o.server_shed,
                o.server_admitted,
                o.server_completed,
                o.refused_draining,
                o.breaker_opened,
                o.breaker_half_opened,
                o.breaker_closed,
                o.drain_complete,
            ));
        }
        s.push_str("  \"slo\": [");
        for (i, g) in self.gates.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"gate\": \"{}\", \"threshold\": {}, \"actual\": {}, \"pass\": {}}}",
                g.gate,
                g.threshold,
                g.actual.map_or_else(|| "null".to_string(), |v| v.to_string()),
                g.pass,
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"timing\": {{\"wall_s\": {:.3}, \"rpc_p99_us\": {}}},\n",
            self.wall.as_secs_f64(),
            self.rpc_p99_us.map_or_else(|| "null".to_string(), |v| v.to_string()),
        ));
        s.push_str(&format!("  \"pass\": {}\n", self.passed()));
        s.push_str("}\n");
        s
    }
}

/// The planned batch for `(client, request)`: a pure function of the
/// seed, independent of execution order.
fn planned_batch(cfg: &TransportStormConfig, client: usize, request: usize) -> Vec<u64> {
    let base = splitmix64(cfg.seed ^ splitmix64(((client as u64) << 20) | (request as u64 + 1)));
    let n = (splitmix64(base ^ 0xBA7C) % cfg.max_batch.max(1) as u64) as usize + 1;
    (0..n)
        .map(|k| splitmix64(base ^ (k as u64 + 1)) % cfg.scale as u64)
        .collect()
}

/// Runs the configured transport storm: build replicas, serve them
/// through fault proxies, storm them with concurrent clients, verify
/// every served block against ground truth, evaluate the gates.
/// Resets and enables telemetry for the run (restoring the previous
/// enablement on exit), so the `rpc.*` gates see exactly this storm.
pub fn run_transport(cfg: &TransportStormConfig) -> Result<TransportReport, SoakError> {
    if cfg.replicas == 0 || cfg.clients == 0 || cfg.scale == 0 {
        return Err(SoakError::Config("replicas, clients, and scale must be at least 1"));
    }
    if cfg.requests_per_client == 0 || cfg.max_batch == 0 {
        return Err(SoakError::Config("requests_per_client and max_batch must be at least 1"));
    }
    std::fs::create_dir_all(&cfg.dir)?;

    let was_enabled = telemetry::is_enabled();
    telemetry::reset();
    telemetry::set_enabled(true);
    let started = Instant::now();
    let result = run_transport_inner(cfg, started);
    telemetry::set_enabled(was_enabled);
    result
}

fn run_transport_inner(
    cfg: &TransportStormConfig,
    started: Instant,
) -> Result<TransportReport, SoakError> {
    // Replica stores: write the first, byte-copy the rest.
    let store_path = |r: usize| cfg.dir.join(format!("replica-{r:02}.eristore"));
    {
        let mut w = StoreWriter::create(&store_path(0), cfg.geometry, cfg.error_bound)
            .map_err(|e| SoakError::Io(std::io::Error::other(e.to_string())))?;
        for b in 0..cfg.scale {
            w.append_block(&expected_block(cfg.geometry, 0, b))
                .map_err(|e| SoakError::Io(std::io::Error::other(e.to_string())))?;
        }
        w.finish()
            .map_err(|e| SoakError::Io(std::io::Error::other(e.to_string())))?;
    }
    for r in 1..cfg.replicas {
        std::fs::copy(store_path(0), store_path(r))?;
    }

    // Ground truth: what a direct reader serves (post-compression bits).
    let mut direct = StoreReader::open(&store_path(0))
        .map_err(|e| SoakError::Io(std::io::Error::other(e.to_string())))?;
    let truth: Vec<Vec<u64>> = (0..cfg.scale)
        .map(|b| {
            direct
                .read_block(b)
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .map_err(|e| SoakError::Io(std::io::Error::other(e.to_string())))
        })
        .collect::<Result<_, _>>()?;
    drop(direct);

    // Servers, one per replica. Wire-fault mode interposes a seeded
    // fault proxy per replica; overload mode serves on a clean wire
    // and instead installs the seeded overload injector in-process.
    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    let mut endpoints = Vec::new();
    for r in 0..cfg.replicas {
        let handle = Arc::new(
            ServerHandle::open(&[store_path(r)], &ServerConfig::default())
                .map_err(|e| SoakError::Io(std::io::Error::other(e.to_string())))?,
        );
        let opts = match &cfg.overload {
            None => ServeOptions::default(),
            Some(o) => {
                let injector = OverloadInjector::new(
                    splitmix64(cfg.seed ^ ((r as u64 + 1) * 0x0FE2_10AD)),
                    o.inject.clone(),
                );
                let inject = move |key: u64, attempt: u32| {
                    let d = injector.decide(key, attempt);
                    InjectedLoad { shed: d.shed, retry_after: d.retry_after, delay: d.delay }
                };
                ServeOptions {
                    admission: o.admission.clone(),
                    inject: Some(Arc::new(inject) as Arc<dyn OverloadInject>),
                    ..ServeOptions::default()
                }
            }
        };
        let srv = Arc::new(TransportServer::bind_with(
            &Endpoint::parse("tcp:127.0.0.1:0").expect("static endpoint"),
            handle,
            opts,
        )?);
        let Endpoint::Tcp(addr) = srv.local_endpoint() else { unreachable!() };
        let stop = srv.stop_handle();
        let jh = Arc::clone(&srv).spawn(None);
        if cfg.overload.is_some() {
            endpoints.push(Endpoint::Tcp(addr));
        } else {
            let proxy = FaultyProxy::start(
                &addr,
                splitmix64(cfg.seed ^ ((r as u64 + 1) * 0x9E37_79B9)),
                cfg.faults.clone(),
            )?;
            endpoints.push(Endpoint::Tcp(proxy.addr()));
            proxies.push(proxy);
        }
        servers.push((stop, jh));
    }

    // The storm: plain threads (client concurrency must not depend on
    // the rayon pool shape — tallies stay seed-pure either way).
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let endpoints = endpoints.clone();
            let truth = &truth;
            handles.push(scope.spawn(move || {
                let ccfg = ClientConfig {
                    deadline: cfg.deadline,
                    attempt_timeout: cfg.attempt_timeout,
                    connect_timeout: cfg.attempt_timeout.max(Duration::from_millis(250)),
                    retry: RetryPolicy {
                        max_retries: 10,
                        initial_backoff: Duration::from_micros(200),
                        max_backoff: Duration::from_millis(10),
                        jitter_seed: Some(splitmix64(cfg.seed ^ (c as u64) << 33)),
                    },
                    hedge: true,
                    // Wire-fault mode runs breaker-less so its tallies
                    // stay bit-identical to the pre-breaker baseline;
                    // overload mode turns it on with count-driven
                    // tuning (see OverloadStormConfig).
                    breaker: cfg.overload.as_ref().map(|o| o.breaker.clone()),
                    ..ClientConfig::default()
                };
                let mut o = ClientOutcome {
                    sig: splitmix64(cfg.seed ^ (c as u64) << 17),
                    ..ClientOutcome::default()
                };
                let mut client = match RemoteClient::connect(&endpoints, ccfg) {
                    Ok(cl) => cl,
                    Err(_) => {
                        // Even the handshake failed past its retry
                        // budget: every planned block is lost.
                        for rq in 0..cfg.requests_per_client {
                            o.blocks_requested += planned_batch(cfg, c, rq).len() as u64;
                        }
                        o.lost_blocks = o.blocks_requested;
                        return o;
                    }
                };
                for rq in 0..cfg.requests_per_client {
                    let ids = planned_batch(cfg, c, rq);
                    o.blocks_requested += ids.len() as u64;
                    match client.read_blocks_strict(&ids) {
                        Ok(blocks) => {
                            let mut clean = true;
                            for (b, &id) in blocks.iter().zip(&ids) {
                                let want = &truth[id as usize];
                                if b.len() == want.len()
                                    && b.iter().zip(want).all(|(v, w)| v.to_bits() == *w)
                                {
                                    o.blocks_served += 1;
                                    for v in b {
                                        o.sig = splitmix64(o.sig ^ v.to_bits());
                                    }
                                } else {
                                    o.value_mismatches += 1;
                                    clean = false;
                                }
                            }
                            o.requests_ok += u64::from(clean);
                        }
                        Err(_) => o.lost_blocks += ids.len() as u64,
                    }
                }
                o.stats = client.stats();
                o
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Teardown before reading the gates, so every proxy tally is final.
    // Overload mode drains gracefully — the books it returns are the
    // proof that no admitted request was dropped; fault mode keeps the
    // abrupt stop it always had.
    let mut proxy_total = ProxyTallies::default();
    for p in proxies {
        proxy_total.add(&p.stop());
    }
    let mut admission_total = eri_server::admission::AdmissionStats::default();
    let mut drain_complete = true;
    for (stop, jh) in servers {
        let stats = match &cfg.overload {
            Some(o) => {
                let outcome = stop.drain(o.drain_deadline);
                drain_complete &= outcome.complete;
                outcome.stats
            }
            None => {
                stop.stop();
                stop.admission().stats()
            }
        };
        admission_total.admitted += stats.admitted;
        admission_total.completed += stats.completed;
        admission_total.shed += stats.shed;
        admission_total.refused_draining += stats.refused_draining;
        let _ = jh.join().expect("server thread");
    }
    if !cfg.keep_artifacts {
        for r in 0..cfg.replicas {
            let _ = std::fs::remove_file(store_path(r));
        }
    }

    // Fold in client-index order: value_sig stays seed-deterministic.
    let mut tallies = TransportTallies {
        requests_planned: (cfg.clients * cfg.requests_per_client) as u64,
        value_sig: splitmix64(cfg.seed),
        ..TransportTallies::default()
    };
    let mut recovery = RecoveryTallies::default();
    let mut overload_t = OverloadTallies::default();
    for o in &outcomes {
        tallies.requests_ok += o.requests_ok;
        tallies.blocks_requested += o.blocks_requested;
        tallies.blocks_served += o.blocks_served;
        tallies.lost_blocks += o.lost_blocks;
        tallies.value_mismatches += o.value_mismatches;
        tallies.value_sig = splitmix64(tallies.value_sig ^ o.sig);
        recovery.retries += o.stats.retries;
        recovery.hedges += o.stats.hedges;
        recovery.frame_errors += o.stats.frame_errors;
        recovery.deadline_exceeded += o.stats.deadline_exceeded;
        overload_t.client_overloaded += o.stats.overloaded;
        overload_t.breaker_opened += o.stats.breaker_opened;
        overload_t.breaker_half_opened += o.stats.breaker_half_opened;
        overload_t.breaker_closed += o.stats.breaker_closed;
    }
    overload_t.server_shed = admission_total.shed;
    overload_t.server_admitted = admission_total.admitted;
    overload_t.server_completed = admission_total.completed;
    overload_t.refused_draining = admission_total.refused_draining;
    overload_t.drain_complete = drain_complete;
    let overload = cfg.overload.as_ref().map(|_| overload_t);

    let snap = telemetry::snapshot();
    let rpc_p99_us = snap
        .histograms
        .iter()
        .find(|h| h.name == "rpc.rtt_us")
        .and_then(|h| h.percentile_us(0.99));
    let queue_wait_p99_us = snap
        .histograms
        .iter()
        .find(|h| h.name == "server.queue_wait_us")
        .and_then(|h| h.percentile_us(0.99));
    let mut gates = Vec::new();
    if let Some(limit) = cfg.slo.rpc_p99_us {
        let actual = rpc_p99_us.map(|v| v as f64);
        gates.push(GateResult {
            gate: "rpc_p99_us",
            threshold: limit as f64,
            actual,
            pass: actual.is_none_or(|v| v <= limit as f64),
        });
    }
    if let Some(max) = cfg.slo.max_deadline_exceeded {
        let actual = snap.counter("rpc.deadline_exceeded");
        gates.push(GateResult {
            gate: "max_deadline_exceeded",
            threshold: max as f64,
            actual: Some(actual as f64),
            pass: actual <= max,
        });
    }
    if let Some(max) = cfg.slo.max_frame_errors {
        let actual = snap.counter("rpc.frame_errors");
        gates.push(GateResult {
            gate: "max_frame_errors",
            threshold: max as f64,
            actual: Some(actual as f64),
            pass: actual <= max,
        });
    }
    if let Some(limit) = cfg.slo.max_shed_rate {
        let actual = overload_t.server_shed as f64 / tallies.requests_planned.max(1) as f64;
        gates.push(GateResult {
            gate: "max_shed_rate",
            threshold: limit,
            actual: Some(actual),
            pass: actual <= limit,
        });
    }
    if let Some(limit) = cfg.slo.queue_wait_p99_us {
        let actual = queue_wait_p99_us.map(|v| v as f64);
        gates.push(GateResult {
            gate: "queue_wait_p99_us",
            threshold: limit as f64,
            actual,
            pass: actual.is_none_or(|v| v <= limit as f64),
        });
    }
    if let Some(max) = cfg.slo.max_breaker_opened {
        gates.push(GateResult {
            gate: "max_breaker_opened",
            threshold: max as f64,
            actual: Some(overload_t.breaker_opened as f64),
            pass: overload_t.breaker_opened <= max,
        });
    }

    Ok(TransportReport {
        seed: cfg.seed,
        tallies,
        recovery,
        proxy: proxy_total,
        gates,
        rpc_p99_us,
        overload,
        queue_wait_p99_us,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("soak-transport-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn storm_is_zero_loss_and_seed_deterministic() {
        let mut cfg = TransportStormConfig::storm(&tmp("det-a"), 0x50AF);
        cfg.clients = 3;
        cfg.requests_per_client = 10;
        let a = run_transport(&cfg).unwrap();
        assert!(a.zero_data_loss(), "{:?}", a.tallies);
        assert!(a.proxy.total() > 0, "the proxy must actually inject: {:?}", a.proxy);

        let mut cfg_b = cfg.clone();
        cfg_b.dir = tmp("det-b");
        let b = run_transport(&cfg_b).unwrap();
        assert_eq!(a.tallies, b.tallies, "tallies are a pure function of the seed");
    }

    #[test]
    fn planned_batches_are_pure() {
        let cfg = TransportStormConfig::storm(Path::new("/nonexistent"), 7);
        assert_eq!(planned_batch(&cfg, 2, 5), planned_batch(&cfg, 2, 5));
        assert_ne!(planned_batch(&cfg, 0, 0), planned_batch(&cfg, 1, 0));
        for id in planned_batch(&cfg, 3, 9) {
            assert!((id as usize) < cfg.scale);
        }
    }

    #[test]
    fn overload_storm_is_sound_and_seed_deterministic() {
        let mut cfg = TransportStormConfig::overload_storm(&tmp("ovl-a"), 0x0F_F10AD);
        cfg.clients = 3;
        cfg.requests_per_client = 12;
        let a = run_transport(&cfg).unwrap();
        // Zero data loss even under forced sheds: every request rides
        // its retries through to byte-identical service.
        assert!(a.zero_data_loss(), "{:?}", a.tallies);
        let ao = a.overload.expect("overload tallies present");
        assert!(ao.server_shed > 0, "the injector must actually shed: {ao:?}");
        // Every shed surfaced as a structured client-side refusal and
        // the drain books balance (nothing admitted was dropped).
        assert!(a.overload_sound(), "{ao:?}");
        assert!(ao.drain_complete);
        assert_eq!(ao.server_admitted, ao.server_completed);
        // The breaker actually cycled: forced-shed bursts trip it open
        // and the following success closes it.
        assert!(ao.breaker_opened > 0, "{ao:?}");
        assert_eq!(ao.breaker_opened, ao.breaker_half_opened, "every open probes");
        assert_eq!(ao.breaker_half_opened, ao.breaker_closed, "every probe closes");

        let mut cfg_b = cfg.clone();
        cfg_b.dir = tmp("ovl-b");
        let b = run_transport(&cfg_b).unwrap();
        assert_eq!(a.tallies, b.tallies, "tallies are a pure function of the seed");
        assert_eq!(
            a.overload, b.overload,
            "shed/breaker tallies are a pure function of the seed"
        );
    }

    #[test]
    fn overload_json_has_a_deterministic_overload_line() {
        let mut cfg = TransportStormConfig::overload_storm(&tmp("ovl-json"), 0xBEEF);
        cfg.clients = 2;
        cfg.requests_per_client = 6;
        cfg.slo.max_shed_rate = Some(1.0);
        cfg.slo.queue_wait_p99_us = Some(5_000_000);
        cfg.slo.max_breaker_opened = Some(10_000);
        let r = run_transport(&cfg).unwrap();
        let json = r.to_json(&cfg);
        assert!(json.contains("\"overload\""), "{json}");
        assert!(json.contains("\"drain_complete\": true"), "{json}");
        for gate in ["max_shed_rate", "queue_wait_p99_us", "max_breaker_opened"] {
            assert!(json.contains(gate), "{json}");
        }
    }

    #[test]
    fn impossible_gate_fails_the_run() {
        let mut cfg = TransportStormConfig::storm(&tmp("gate"), 11);
        cfg.clients = 2;
        cfg.requests_per_client = 6;
        cfg.slo.rpc_p99_us = Some(0);
        let r = run_transport(&cfg).unwrap();
        assert!(r.zero_data_loss());
        assert!(!r.all_gates_pass(), "{:?}", r.gates);
        assert!(!r.passed());
    }
}
