//! End-of-run accounting: op/fault tallies, SLO gate evaluation against
//! the telemetry snapshot, and the `BENCH_soak.json` emitter.
//!
//! The JSON deliberately separates the **deterministic** sections
//! (`"tallies"` and the config echo — bit-identical for the same seed
//! and op budget, each on a single line so CI can diff them textually)
//! from the **timing-dependent** sections (`"slo"`, `"timing"`), which
//! vary run to run by nature.

use std::time::Duration;

use telemetry::{HistRec, Snapshot};

use crate::SoakConfig;

/// Everything the storm did and every fault it absorbed. All fields are
/// pure functions of `(seed, op budget)` — thread-count independent —
/// except `ops_skipped`, which only moves under a wall-clock budget.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Tallies {
    /// Ops actually executed.
    pub ops_executed: u64,
    /// Ops skipped because the wall-clock budget expired.
    pub ops_skipped: u64,
    /// Read ops (each reads 1–4 blocks).
    pub reads: u64,
    /// Individual block reads attempted.
    pub block_reads: u64,
    /// Block reads that failed terminally (damage beyond parity; must
    /// end up quarantined or the final sweep charges data loss).
    pub read_failures: u64,
    /// Blocks served with values outside the error bound, or resumed /
    /// salvaged data that decoded wrong: silent corruption that leaked
    /// through every integrity layer. Always data loss.
    pub value_mismatches: u64,
    /// Container write ops.
    pub writes_container: u64,
    /// Stream write ops.
    pub writes_stream: u64,
    /// Stream writes that ran to completion.
    pub streams_completed: u64,
    /// Stream writes killed torn by the crash budget.
    pub torn_streams: u64,
    /// Streams killed before even the magic was durable (nothing
    /// committed, nothing to salvage).
    pub streams_unrecoverable: u64,
    /// Segments recovered by salvage across all stream writes.
    pub segments_salvaged: u64,
    /// Segments dropped by salvage (uncommitted by the crash model).
    pub segments_dropped: u64,
    /// Salvages that found a torn tail.
    pub torn_tails: u64,
    /// Durable side-store writers killed mid-write.
    pub crashes: u64,
    /// Successful journal resumes (must equal `crashes` at the end).
    pub resumes: u64,
    /// Scrub ops run during the storm (the final sweep adds more).
    pub scrubs: u64,
    /// SDC events fired.
    pub bit_flip_events: u64,
    /// Individual bits flipped.
    pub bit_flips: u64,
    /// Blocks rebuilt from parity during reads.
    pub read_repaired: u64,
    /// Damaged containers spliced back byte-identical by scrubs.
    pub scrub_repaired: u64,
    /// Committed blocks lost beyond repair and quarantined (ledger size).
    pub quarantined: u64,
    /// Transient read errors absorbed by the retry policy.
    pub transient_retries: u64,
}

impl Tallies {
    /// Accumulates another store's tallies (fold in store-index order
    /// for determinism; addition is commutative anyway).
    pub fn add(&mut self, other: &Tallies) {
        self.ops_executed += other.ops_executed;
        self.ops_skipped += other.ops_skipped;
        self.reads += other.reads;
        self.block_reads += other.block_reads;
        self.read_failures += other.read_failures;
        self.value_mismatches += other.value_mismatches;
        self.writes_container += other.writes_container;
        self.writes_stream += other.writes_stream;
        self.streams_completed += other.streams_completed;
        self.torn_streams += other.torn_streams;
        self.streams_unrecoverable += other.streams_unrecoverable;
        self.segments_salvaged += other.segments_salvaged;
        self.segments_dropped += other.segments_dropped;
        self.torn_tails += other.torn_tails;
        self.crashes += other.crashes;
        self.resumes += other.resumes;
        self.scrubs += other.scrubs;
        self.bit_flip_events += other.bit_flip_events;
        self.bit_flips += other.bit_flips;
        self.read_repaired += other.read_repaired;
        self.scrub_repaired += other.scrub_repaired;
        self.quarantined += other.quarantined;
        self.transient_retries += other.transient_retries;
    }
}

/// One evaluated SLO gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// Gate name (`read_p99_us`, `min_repair_success`, …).
    pub gate: &'static str,
    /// Configured threshold, rendered for the report.
    pub threshold: f64,
    /// Measured value, when the run produced one (`None` = vacuous).
    pub actual: Option<f64>,
    /// Did the gate hold?
    pub pass: bool,
}

/// The complete outcome of one soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The seed the whole storm derived from.
    pub seed: u64,
    /// Deterministic op/fault accounting.
    pub tallies: Tallies,
    /// Every configured gate, evaluated.
    pub gates: Vec<GateResult>,
    /// Committed blocks neither served within the error bound nor
    /// present in the quarantine ledger. Must be zero.
    pub unaccounted_loss: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Read p99 (µs) from the `soak.read_us` histogram, when any block
    /// was read.
    pub read_p99_us: Option<u64>,
    /// High-water mark of decompressed values resident at once.
    pub resident_high_water: i64,
    /// Telemetry span records discarded at the buffer cap during the
    /// run (counters and histograms — everything the gates read — stay
    /// complete regardless).
    pub spans_dropped: u64,
}

impl SoakReport {
    /// Zero unaccounted loss *and* zero silent value corruption.
    #[must_use]
    pub fn zero_data_loss(&self) -> bool {
        self.unaccounted_loss == 0 && self.tallies.value_mismatches == 0
    }

    /// Every configured gate held.
    #[must_use]
    pub fn all_gates_pass(&self) -> bool {
        self.gates.iter().all(|g| g.pass)
    }

    /// The run's overall verdict: no data loss and no violated gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.zero_data_loss() && self.all_gates_pass()
    }
}

/// The value at or below which a fraction `q` of observations fall,
/// resolved to the histogram's bucket upper bounds (clamped to the
/// observed max, which is exact). Returns `None` for an empty histogram.
#[must_use]
pub fn percentile_us(h: &HistRec, q: f64) -> Option<u64> {
    h.percentile_us(q)
}

/// Evaluates gates and assembles the report from the run's raw outcome
/// plus the telemetry snapshot.
#[must_use]
pub fn build(
    cfg: &SoakConfig,
    tallies: Tallies,
    unaccounted_loss: u64,
    snap: &Snapshot,
    wall: Duration,
) -> SoakReport {
    let read_hist = snap.histograms.iter().find(|h| h.name == "soak.read_us");
    let read_p99_us = read_hist.and_then(|h| percentile_us(h, 0.99));
    let resident_high_water = snap
        .gauges
        .iter()
        .find(|g| g.name == "soak.resident_values")
        .map_or(0, |g| g.max);

    let mut gates = Vec::new();
    if let Some(limit) = cfg.slo.read_p99_us {
        let actual = read_p99_us.map(|v| v as f64);
        gates.push(GateResult {
            gate: "read_p99_us",
            threshold: limit as f64,
            actual,
            // No reads at all is a vacuous pass; otherwise p99 ≤ limit.
            pass: actual.is_none_or(|v| v <= limit as f64),
        });
    }
    if let Some(min) = cfg.slo.min_repair_success {
        let repaired = tallies.read_repaired + tallies.scrub_repaired;
        let denom = repaired + tallies.quarantined;
        let actual = (denom > 0).then(|| repaired as f64 / denom as f64);
        gates.push(GateResult {
            gate: "min_repair_success",
            threshold: min,
            actual,
            pass: actual.is_none_or(|v| v >= min),
        });
    }
    if let Some(max) = cfg.slo.max_quarantined {
        gates.push(GateResult {
            gate: "max_quarantined",
            threshold: max as f64,
            actual: Some(tallies.quarantined as f64),
            pass: tallies.quarantined <= max,
        });
    }
    if let Some(max) = cfg.slo.max_resident_values {
        gates.push(GateResult {
            gate: "max_resident_values",
            threshold: max as f64,
            actual: Some(resident_high_water as f64),
            pass: resident_high_water <= max,
        });
    }

    SoakReport {
        seed: cfg.seed,
        tallies,
        gates,
        unaccounted_loss,
        wall,
        read_p99_us,
        resident_high_water,
        spans_dropped: snap.spans_dropped,
    }
}

fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:e}")
    }
}

impl SoakReport {
    /// Renders the machine-readable report. The `"tallies"` and
    /// `"config"` lines are bit-identical across same-seed runs (with an
    /// op-count budget); `"slo"` and `"timing"` carry the measured,
    /// run-varying numbers.
    #[must_use]
    pub fn to_json(&self, cfg: &SoakConfig) -> String {
        let t = &self.tallies;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"soak\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"config\": {{\"stores\": {}, \"ops\": {}, \"scale\": {}, \"geometry\": [{}, {}], \"error_bound\": {}, \"mix\": [{}, {}, {}, {}, {}], \"faults\": {{\"bit_flip_every\": {}, \"flips_per_event\": {}, \"torn_stream_every\": {}, \"transient_rate\": {}, \"max_transient_errors\": {}}}}},\n",
            cfg.stores,
            cfg.ops,
            cfg.scale,
            cfg.geometry.num_subblocks,
            cfg.geometry.subblock_size,
            json_f64(cfg.error_bound),
            cfg.mix.read,
            cfg.mix.write_container,
            cfg.mix.write_stream,
            cfg.mix.crash_resume,
            cfg.mix.scrub,
            cfg.faults.bit_flip_every,
            cfg.faults.flips_per_event,
            cfg.faults.torn_stream_every,
            json_f64(cfg.faults.transient_rate),
            cfg.faults.max_transient_errors,
        ));
        s.push_str(&format!(
            "  \"tallies\": {{\"ops_executed\": {}, \"ops_skipped\": {}, \"reads\": {}, \"block_reads\": {}, \"read_failures\": {}, \"value_mismatches\": {}, \"writes_container\": {}, \"writes_stream\": {}, \"streams_completed\": {}, \"torn_streams\": {}, \"streams_unrecoverable\": {}, \"segments_salvaged\": {}, \"segments_dropped\": {}, \"torn_tails\": {}, \"crashes\": {}, \"resumes\": {}, \"scrubs\": {}, \"bit_flip_events\": {}, \"bit_flips\": {}, \"read_repaired\": {}, \"scrub_repaired\": {}, \"quarantined\": {}, \"transient_retries\": {}}},\n",
            t.ops_executed,
            t.ops_skipped,
            t.reads,
            t.block_reads,
            t.read_failures,
            t.value_mismatches,
            t.writes_container,
            t.writes_stream,
            t.streams_completed,
            t.torn_streams,
            t.streams_unrecoverable,
            t.segments_salvaged,
            t.segments_dropped,
            t.torn_tails,
            t.crashes,
            t.resumes,
            t.scrubs,
            t.bit_flip_events,
            t.bit_flips,
            t.read_repaired,
            t.scrub_repaired,
            t.quarantined,
            t.transient_retries,
        ));
        s.push_str("  \"slo\": [");
        for (i, g) in self.gates.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"gate\": \"{}\", \"threshold\": {}, \"actual\": {}, \"pass\": {}}}",
                g.gate,
                json_f64(g.threshold),
                g.actual.map_or_else(|| "null".to_string(), json_f64),
                g.pass,
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"data\": {{\"unaccounted_loss\": {}, \"value_mismatches\": {}, \"quarantined\": {}, \"zero_data_loss\": {}}},\n",
            self.unaccounted_loss,
            t.value_mismatches,
            t.quarantined,
            self.zero_data_loss(),
        ));
        s.push_str(&format!(
            "  \"timing\": {{\"wall_s\": {:.3}, \"read_p99_us\": {}, \"resident_high_water\": {}, \"spans_dropped\": {}}},\n",
            self.wall.as_secs_f64(),
            self.read_p99_us
                .map_or_else(|| "null".to_string(), |v| v.to_string()),
            self.resident_high_water,
            self.spans_dropped,
        ));
        s.push_str(&format!("  \"pass\": {}\n", self.passed()));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(buckets: Vec<u64>, max: u64) -> HistRec {
        HistRec {
            name: "t".into(),
            count: buckets.iter().sum(),
            sum: 0,
            min: 0,
            max,
            buckets,
        }
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile_us(&hist(vec![0; 32], 0), 0.99), None);
    }

    #[test]
    fn percentile_picks_bucket_upper_bound() {
        // 99 observations in bucket 0 ([0,1]µs), 1 in bucket 4 ([8,15]).
        let mut buckets = vec![0u64; 32];
        buckets[0] = 99;
        buckets[4] = 1;
        let h = hist(buckets, 12);
        // p50 lands in bucket 0 → upper bound 1.
        assert_eq!(percentile_us(&h, 0.5), Some(1));
        // p99 rank is 99 → still bucket 0.
        assert_eq!(percentile_us(&h, 0.99), Some(1));
        // p100 walks into bucket 4, clamped to the observed max.
        assert_eq!(percentile_us(&h, 1.0), Some(12));
    }

    #[test]
    fn tallies_fold_is_total() {
        // Every field must survive the fold — catches a field added to
        // the struct but forgotten in add().
        let mut probe = Tallies::default();
        let ones = Tallies {
            ops_executed: 1,
            ops_skipped: 1,
            reads: 1,
            block_reads: 1,
            read_failures: 1,
            value_mismatches: 1,
            writes_container: 1,
            writes_stream: 1,
            streams_completed: 1,
            torn_streams: 1,
            streams_unrecoverable: 1,
            segments_salvaged: 1,
            segments_dropped: 1,
            torn_tails: 1,
            crashes: 1,
            resumes: 1,
            scrubs: 1,
            bit_flip_events: 1,
            bit_flips: 1,
            read_repaired: 1,
            scrub_repaired: 1,
            quarantined: 1,
            transient_retries: 1,
        };
        probe.add(&ones);
        assert_eq!(probe, ones);
    }
}
