//! Deterministic fault-storm soak harness with end-of-run SLO gates.
//!
//! PRs 1–5 built the individual resilience mechanisms — parity
//! repair-on-read, scrub + quarantine, durable resume-after-crash,
//! transient-retry backoff, telemetry. Each is unit-tested in isolation;
//! nothing exercised them *together*, at scale, under sustained mixed
//! traffic. This crate is that harness: a seeded workload generator that
//! runs a configurable mix of operations (store reads with
//! repair-on-read, container writes, stream writes, crash-and-resume
//! durable writes, scrubs) across many stores concurrently on the real
//! work-distributing pool, while a fault schedule (seeded [`BitFlipper`]
//! SDC events, [`CrashBudget`] torn stream kills, transient read errors
//! driving the shared [`RetryPolicy`] backoff) fires throughout.
//!
//! At the end the harness proves **zero data loss** — every committed
//! block either decodes within the error bound against its regenerable
//! expected values, or is accounted for in the quarantine ledger — and
//! evaluates declarative **SLO gates** (read p99 latency from telemetry
//! histograms, repair success rate, resident-memory high-water from the
//! gauge, max quarantine count).
//!
//! # Determinism
//!
//! The entire op plan is derived up front from the run seed via
//! splitmix64: op kind, target store, per-op sub-seeds, and the fault
//! schedule are all pure functions of `(seed, op index)`. Ops are
//! grouped by store and executed strictly sequentially *within* each
//! store while stores run concurrently, so no tally depends on thread
//! interleaving: for a fixed seed and op budget, the op/fault tallies in
//! `BENCH_soak.json` are bit-identical at any `RAYON_NUM_THREADS`.
//! (A wall-clock budget — [`SoakConfig::time_budget`] — necessarily
//! trades that away: skipped-op counts then depend on timing.)
//!
//! Like `bench` and the test suite — and unlike every production crate —
//! this crate depends on `faults` by design: injecting faults is its job.

use std::collections::BTreeSet;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use durable::retry::{splitmix64, RetryPolicy};
use durable::{atomic_write, fresh_quarantine_path, journal_path};
use eri_store::{StoreReader, StoreWriter};
use faults::{
    is_injected_crash, BitFlipper, CrashBudget, FaultConfig, FaultyReader, FaultyWriter,
    WriteFaultConfig,
};
use pastri::{BlockGeometry, Compressor};
use rayon::prelude::*;

pub mod report;
pub mod transport;

pub use report::{GateResult, SoakReport, Tallies};
pub use transport::{
    run_transport, OverloadStormConfig, OverloadTallies, TransportReport, TransportSloGates,
    TransportStormConfig, TransportTallies,
};

/// Relative weights of the operation kinds in the workload mix.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Store reads with repair-on-read (through transient-fault
    /// injection and the shared retry policy).
    pub read: u32,
    /// Compress → atomic-write → read-back container round trips.
    pub write_container: u32,
    /// Framed stream writes (periodically killed torn, then salvaged).
    pub write_stream: u32,
    /// Durable side-store writes killed mid-write, then resumed from the
    /// checkpoint journal and verified complete.
    pub crash_resume: u32,
    /// Scrub passes: verify, splice repairs back, quarantine the rest.
    pub scrub: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        Self {
            read: 6,
            write_container: 1,
            write_stream: 2,
            crash_resume: 1,
            scrub: 2,
        }
    }
}

impl OpMix {
    fn total(&self) -> u32 {
        self.read + self.write_container + self.write_stream + self.crash_resume + self.scrub
    }
}

/// The fault schedule. Defaults to a storm; zero a field to disable
/// that fault class.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Fire a seeded SDC event (bit flips inside one store's block
    /// region) after every Nth op. 0 disables.
    pub bit_flip_every: usize,
    /// Bits flipped per SDC event.
    pub flips_per_event: usize,
    /// Kill every Nth stream write torn, mid-byte, via a [`CrashBudget`].
    /// 0 disables.
    pub torn_stream_every: usize,
    /// Probability that any store read call fails with a transient error
    /// (absorbed by the retry policy).
    pub transient_rate: f64,
    /// Cap on injected transient errors per reader, so retry loops
    /// always terminate.
    pub max_transient_errors: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            bit_flip_every: 5,
            flips_per_event: 2,
            torn_stream_every: 2,
            transient_rate: 0.05,
            max_transient_errors: 200,
        }
    }
}

/// Declarative end-of-run gates. `None` disables a gate; every set gate
/// must hold for the run to pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloGates {
    /// Read p99 latency (µs), from the `soak.read_us` telemetry
    /// histogram, must be at or below this.
    pub read_p99_us: Option<u64>,
    /// repaired / (repaired + unrepairable) must be at least this
    /// (vacuously passes when no block was ever damaged).
    pub min_repair_success: Option<f64>,
    /// Total quarantined blocks must not exceed this.
    pub max_quarantined: Option<u64>,
    /// High-water mark of the `soak.resident_values` gauge (decompressed
    /// f64 values held at once) must not exceed this.
    pub max_resident_values: Option<i64>,
}

/// Full configuration of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed: the whole op plan and fault schedule derive from it.
    pub seed: u64,
    /// Working directory (created; store files live under it).
    pub dir: PathBuf,
    /// Number of concurrently-exercised stores.
    pub stores: usize,
    /// Total op budget across all stores.
    pub ops: usize,
    /// Dataset scale knob: blocks per store.
    pub scale: usize,
    /// Block geometry of every store and stream in the run.
    pub geometry: BlockGeometry,
    /// Absolute error bound for every compressor in the run.
    pub error_bound: f64,
    /// Workload mix.
    pub mix: OpMix,
    /// Fault schedule.
    pub faults: FaultPlan,
    /// End-of-run gates.
    pub slo: SloGates,
    /// Optional wall-clock budget: ops not started by the deadline are
    /// skipped (and tallied). Costs tally determinism — see the crate
    /// docs.
    pub time_budget: Option<Duration>,
    /// Keep store files and quarantines on disk after the run.
    pub keep_artifacts: bool,
}

impl SoakConfig {
    /// A small, fast default storm in `dir`: every fault class enabled,
    /// no SLO gates set.
    #[must_use]
    pub fn storm(dir: &Path, seed: u64) -> Self {
        Self {
            seed,
            dir: dir.to_path_buf(),
            stores: 4,
            ops: 120,
            scale: 12,
            geometry: BlockGeometry::new(4, 8),
            error_bound: 1e-9,
            mix: OpMix::default(),
            faults: FaultPlan::default(),
            slo: SloGates::default(),
            time_budget: None,
            keep_artifacts: false,
        }
    }
}

/// Errors that abort a soak run outright (distinct from faults the run
/// absorbs and accounts for, which are the point).
#[derive(Debug)]
pub enum SoakError {
    Io(std::io::Error),
    /// Impossible configuration (zero stores, zero-weight mix, …).
    Config(&'static str),
}

impl std::fmt::Display for SoakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoakError::Io(e) => write!(f, "I/O error: {e}"),
            SoakError::Config(m) => write!(f, "bad soak config: {m}"),
        }
    }
}

impl std::error::Error for SoakError {}

impl From<std::io::Error> for SoakError {
    fn from(e: std::io::Error) -> Self {
        SoakError::Io(e)
    }
}

/// One planned operation: everything about it is fixed before execution.
#[derive(Debug, Clone, Copy)]
struct PlannedOp {
    kind: OpKind,
    /// Per-op sub-seed; every random draw inside the op mixes from it.
    seed: u64,
    /// Fire a bit-flip SDC event against this op's store first.
    bit_flip: bool,
    /// For stream writes: kill this one torn.
    torn: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    WriteContainer,
    WriteStream,
    CrashResume,
    Scrub,
}

/// Derives the full plan from the seed: a per-store list of ops, in
/// global op order. Pure function of the config.
fn plan(cfg: &SoakConfig) -> Vec<Vec<PlannedOp>> {
    let mut per_store: Vec<Vec<PlannedOp>> = vec![Vec::new(); cfg.stores];
    let total_weight = cfg.mix.total();
    let mut stream_ops = 0usize;
    for i in 0..cfg.ops {
        let op_seed = splitmix64(cfg.seed ^ splitmix64(i as u64 + 1));
        let store = (splitmix64(op_seed ^ 0x5704) % cfg.stores as u64) as usize;
        // Walk the cumulative weight ladder: the draw lands in the
        // first kind whose bucket covers it.
        let w = (splitmix64(op_seed ^ 0x0A11) % u64::from(total_weight)) as u32;
        let ladder = [
            (cfg.mix.read, OpKind::Read),
            (cfg.mix.write_container, OpKind::WriteContainer),
            (cfg.mix.write_stream, OpKind::WriteStream),
            (cfg.mix.crash_resume, OpKind::CrashResume),
            (cfg.mix.scrub, OpKind::Scrub),
        ];
        let mut cumulative = 0u32;
        let mut kind = OpKind::Scrub;
        for (weight, k) in ladder {
            cumulative += weight;
            if w < cumulative {
                kind = k;
                break;
            }
        }
        let torn = if kind == OpKind::WriteStream {
            stream_ops += 1;
            cfg.faults.torn_stream_every != 0 && stream_ops.is_multiple_of(cfg.faults.torn_stream_every)
        } else {
            false
        };
        per_store[store].push(PlannedOp {
            kind,
            seed: op_seed,
            bit_flip: cfg.faults.bit_flip_every != 0 && (i + 1) % cfg.faults.bit_flip_every == 0,
            torn,
        });
    }
    per_store
}

/// The expected values of block `b` of store `s` — a pure function, so
/// the verification sweep regenerates ground truth instead of holding
/// the whole dataset resident. Smooth (compresses like real ERI blocks)
/// and distinct per `(store, block)`.
fn expected_block(geom: BlockGeometry, s: usize, b: usize) -> Vec<f64> {
    let mut block = Vec::with_capacity(geom.block_size());
    let phase = (s as f64).mul_add(0.83, b as f64 * 0.61);
    for sb in 0..geom.num_subblocks {
        let scale = ((sb as f64).mul_add(0.47, phase)).cos();
        for i in 0..geom.subblock_size {
            block.push(scale * ((i as f64).mul_add(0.37, phase)).sin() * 1e-6);
        }
    }
    block
}

/// Scratch values for side artifacts (streams, crash/resume side
/// stores) — distinct family from the committed store blocks.
fn scratch_block(geom: BlockGeometry, op_seed: u64, b: usize) -> Vec<f64> {
    expected_block(geom, (splitmix64(op_seed) % 1024) as usize + 1024, b)
}

fn store_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("store-{s:03}.eristore"))
}

/// Mutable per-store context threaded through that store's op sequence.
struct StoreCtx {
    id: usize,
    path: PathBuf,
    /// Committed blocks known lost beyond repair (quarantined): reads of
    /// these may legitimately fail.
    ledger: BTreeSet<usize>,
    tallies: Tallies,
}

/// Runs the configured soak: populate, storm, final verification sweep,
/// SLO evaluation. Resets and enables telemetry for the run's duration
/// (restoring the previous enablement on exit).
pub fn run(cfg: &SoakConfig) -> Result<SoakReport, SoakError> {
    if cfg.stores == 0 || cfg.scale == 0 {
        return Err(SoakError::Config("stores and scale must be at least 1"));
    }
    if cfg.mix.total() == 0 {
        return Err(SoakError::Config("op mix has zero total weight"));
    }
    if cfg.faults.bit_flip_every != 0 && cfg.faults.flips_per_event == 0 {
        return Err(SoakError::Config("bit_flip_every set but flips_per_event is 0"));
    }
    std::fs::create_dir_all(&cfg.dir)?;

    let was_enabled = telemetry::is_enabled();
    telemetry::reset();
    telemetry::set_enabled(true);
    let started = Instant::now();
    let result = run_inner(cfg, started);
    telemetry::set_enabled(was_enabled);
    result
}

fn run_inner(cfg: &SoakConfig, started: Instant) -> Result<SoakReport, SoakError> {
    // Populate: every store gets `scale` committed blocks through the
    // durable writer (journal created, checkpointed, removed on finish).
    let checkpoint_every = (cfg.scale / 4).max(1);
    (0..cfg.stores)
        .into_par_iter()
        .map(|s| -> Result<(), SoakError> {
            let path = store_path(&cfg.dir, s);
            let mut w =
                StoreWriter::create_durable(&path, cfg.geometry, cfg.error_bound, checkpoint_every)
                    .map_err(store_io)?;
            for b in 0..cfg.scale {
                w.append_block(&expected_block(cfg.geometry, s, b))
                    .map_err(store_io)?;
            }
            w.finish().map_err(store_io)?;
            Ok(())
        })
        .collect::<Result<Vec<()>, SoakError>>()?;

    // The storm: per-store op sequences run concurrently, each strictly
    // sequential inside, so tallies are interleaving-independent.
    let deadline = cfg.time_budget.map(|d| started + d);
    let per_store = plan(cfg);
    let outcomes: Vec<Result<StoreCtx, SoakError>> = per_store
        .into_par_iter()
        .enumerate()
        .map(|(s, ops)| {
            let mut ctx = StoreCtx {
                id: s,
                path: store_path(&cfg.dir, s),
                ledger: BTreeSet::new(),
                tallies: Tallies::default(),
            };
            for op in ops {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    ctx.tallies.ops_skipped += 1;
                    continue;
                }
                execute_op(cfg, &mut ctx, op)?;
                ctx.tallies.ops_executed += 1;
            }
            Ok(ctx)
        })
        .collect();

    let mut tallies = Tallies::default();
    let mut ctxs = Vec::with_capacity(cfg.stores);
    for outcome in outcomes {
        ctxs.push(outcome?);
    }

    // Final sweep: scrub everything (splicing repairs, quarantining the
    // unrepairable), then prove every committed block is served within
    // the error bound or accounted for in the ledger.
    let mut unaccounted_loss = 0u64;
    for ctx in &mut ctxs {
        scrub_store(ctx)?;
        let mut r = StoreReader::open(&ctx.path).map_err(store_io)?;
        for b in 0..cfg.scale {
            match r.read_block(b) {
                Ok(values) => {
                    let expected = expected_block(cfg.geometry, ctx.id, b);
                    if !within_bound(&values, &expected, cfg.error_bound) {
                        unaccounted_loss += 1;
                    }
                }
                Err(_) if ctx.ledger.contains(&b) => {} // accounted: quarantined
                Err(_) => unaccounted_loss += 1,
            }
        }
        let stats = r.read_stats();
        ctx.tallies.read_repaired += stats.blocks_repaired;
    }
    for ctx in &ctxs {
        tallies.add(&ctx.tallies);
    }
    tallies.quarantined = ctxs.iter().map(|c| c.ledger.len() as u64).sum();

    if !cfg.keep_artifacts {
        for s in 0..cfg.stores {
            let p = store_path(&cfg.dir, s);
            let _ = std::fs::remove_file(&p);
            let _ = std::fs::remove_file(journal_path(&p));
        }
    }

    let snap = telemetry::snapshot();
    let wall = started.elapsed();
    Ok(report::build(cfg, tallies, unaccounted_loss, &snap, wall))
}

/// Store errors cross the rayon boundary as plain I/O errors carrying
/// the display text; the soak aborts on any of them (a fault the run is
/// *supposed* to absorb never surfaces this way).
fn store_io(e: eri_store::StoreError) -> SoakError {
    match e {
        eri_store::StoreError::Io(io) => SoakError::Io(io),
        other => SoakError::Io(std::io::Error::new(ErrorKind::InvalidData, other.to_string())),
    }
}

fn within_bound(got: &[f64], expected: &[f64], eb: f64) -> bool {
    got.len() == expected.len()
        && got
            .iter()
            .zip(expected)
            .all(|(g, e)| (g - e).abs() <= eb + 1e-300)
}

fn execute_op(cfg: &SoakConfig, ctx: &mut StoreCtx, op: PlannedOp) -> Result<(), SoakError> {
    if op.bit_flip {
        inject_bit_flips(cfg, ctx, op.seed)?;
    }
    match op.kind {
        OpKind::Read => op_read(cfg, ctx, op.seed),
        OpKind::WriteContainer => op_write_container(cfg, ctx, op.seed),
        OpKind::WriteStream => op_write_stream(cfg, ctx, op.seed, op.torn),
        OpKind::CrashResume => op_crash_resume(cfg, ctx, op.seed),
        OpKind::Scrub => {
            ctx.tallies.scrubs += 1;
            scrub_store(ctx)
        }
    }
}

/// A seeded SDC event: flips `flips_per_event` bits inside the store's
/// block region. The header and index are left alone — silent *data*
/// corruption is the modeled fault; metadata damage is a different
/// failure class (covered by the CLI corruption tests).
fn inject_bit_flips(cfg: &SoakConfig, ctx: &mut StoreCtx, op_seed: u64) -> Result<(), SoakError> {
    const HEADER_LEN: u64 = 52;
    let header = std::fs::read(&ctx.path)?;
    if header.len() < 48 {
        return Ok(());
    }
    let index_offset = u64::from_le_bytes(header[40..48].try_into().unwrap());
    if index_offset <= HEADER_LEN {
        return Ok(()); // empty block region: nothing to corrupt
    }
    let flipper = BitFlipper::new(
        HEADER_LEN,
        index_offset,
        cfg.faults.flips_per_event,
        splitmix64(op_seed ^ 0xB17F),
    );
    ctx.tallies.bit_flips += flipper.plan().len() as u64;
    flipper.apply_to_file(&ctx.path)?;
    ctx.tallies.bit_flip_events += 1;
    Ok(())
}

/// Store reads through transient-fault injection and the shared jittered
/// retry policy; damaged blocks repair on read where parity allows.
fn op_read(cfg: &SoakConfig, ctx: &mut StoreCtx, op_seed: u64) -> Result<(), SoakError> {
    ctx.tallies.reads += 1;
    let file = std::fs::File::open(&ctx.path)?;
    let faulty = FaultyReader::new(
        file,
        splitmix64(op_seed ^ 0x7EAD),
        FaultConfig {
            transient_rate: cfg.faults.transient_rate,
            max_transient_errors: cfg.faults.max_transient_errors,
            transient_kind: ErrorKind::Interrupted,
            short_reads: true,
            ..FaultConfig::default()
        },
    );
    let retry = RetryPolicy {
        max_retries: 8,
        initial_backoff: Duration::from_micros(20),
        max_backoff: Duration::from_micros(500),
        jitter_seed: Some(op_seed),
    };
    let mut r = StoreReader::from_source(faulty, retry).map_err(store_io)?;
    let k = 1 + (splitmix64(op_seed ^ 0x0B10) % 4) as usize;
    for j in 0..k {
        let b = (splitmix64(op_seed ^ (0x77 + j as u64)) % cfg.scale as u64) as usize;
        let t = Instant::now();
        let outcome = r.read_block(b);
        telemetry::observe_us("soak.read_us", t.elapsed().as_micros() as u64);
        ctx.tallies.block_reads += 1;
        match outcome {
            Ok(values) => {
                telemetry::gauge_add("soak.resident_values", values.len() as i64);
                let expected = expected_block(cfg.geometry, ctx.id, b);
                if !within_bound(&values, &expected, cfg.error_bound) {
                    // Served values outside the bound: silent corruption
                    // leaked through every integrity layer. Data loss.
                    ctx.tallies.value_mismatches += 1;
                }
                telemetry::gauge_add("soak.resident_values", -(values.len() as i64));
            }
            // Damage beyond the parity budget: tolerated here, must be
            // quarantined by a scrub before the final sweep accepts it.
            Err(_) => ctx.tallies.read_failures += 1,
        }
    }
    let stats = r.read_stats();
    ctx.tallies.transient_retries += stats.transient_retries;
    ctx.tallies.read_repaired += stats.blocks_repaired;
    Ok(())
}

/// Compress → atomic write → read back → verify → remove: the
/// whole-file container path under concurrent load.
fn op_write_container(cfg: &SoakConfig, ctx: &mut StoreCtx, op_seed: u64) -> Result<(), SoakError> {
    ctx.tallies.writes_container += 1;
    let compressor = Compressor::new(cfg.geometry, cfg.error_bound);
    let block = scratch_block(cfg.geometry, op_seed, 0);
    let t = Instant::now();
    let payload = compressor.compress(&block);
    let path = ctx.path.with_extension(format!("op{:08x}.pstr", op_seed as u32));
    atomic_write(&path, &payload)?;
    telemetry::observe_us("soak.write_us", t.elapsed().as_micros() as u64);
    let back = std::fs::read(&path)?;
    let values = pastri::decompress(&back)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    telemetry::gauge_add("soak.resident_values", values.len() as i64);
    if !within_bound(&values, &block, cfg.error_bound) {
        ctx.tallies.value_mismatches += 1;
    }
    telemetry::gauge_add("soak.resident_values", -(values.len() as i64));
    let _ = std::fs::remove_file(&path);
    Ok(())
}

/// A framed stream write, torn mid-byte by a [`CrashBudget`] when the
/// schedule says so, then salvaged: every surviving segment must decode
/// against the values that were fed in. A torn tail is *uncommitted*
/// (streams carry no journal) — dropped bytes are accounted, not lost.
fn op_write_stream(
    cfg: &SoakConfig,
    ctx: &mut StoreCtx,
    op_seed: u64,
    torn: bool,
) -> Result<(), SoakError> {
    ctx.tallies.writes_stream += 1;
    let blocks = 3 + (splitmix64(op_seed ^ 0x57E0) % 4) as usize;
    let mut fed = Vec::with_capacity(blocks * cfg.geometry.block_size());
    for b in 0..blocks {
        fed.extend(scratch_block(cfg.geometry, op_seed, b));
    }

    let mut buf: Vec<u8> = Vec::new();
    let budget = 8 + splitmix64(op_seed ^ 0xC4A5) % 600;
    let writer_result = (|| -> std::io::Result<()> {
        let faulty = FaultyWriter::new(
            &mut buf,
            splitmix64(op_seed ^ 0x707A),
            WriteFaultConfig {
                short_writes: true,
                kill_after: torn.then(|| CrashBudget::new(budget)),
                torn_kill: true,
            },
        );
        let t = Instant::now();
        let mut sw = StreamWriter::new(faulty, Compressor::new(cfg.geometry, cfg.error_bound), 2)?;
        sw.write_values(&fed)?;
        sw.finish()?;
        telemetry::observe_us("soak.write_us", t.elapsed().as_micros() as u64);
        Ok(())
    })();
    match writer_result {
        Ok(()) => ctx.tallies.streams_completed += 1,
        Err(ref e) if is_injected_crash(e) => ctx.tallies.torn_streams += 1,
        Err(e) => return Err(e.into()),
    }

    // Salvage whatever hit the "disk" (the buffer) and verify it.
    let mut healed = Vec::new();
    match pastri::stream::salvage(&buf[..], &mut healed) {
        Ok(sreport) => {
            ctx.tallies.segments_salvaged += sreport.kept as u64;
            ctx.tallies.segments_dropped += sreport.dropped.len() as u64;
            if sreport.tail_lost {
                ctx.tallies.torn_tails += 1;
            }
            // Truncation damage drops only the tail, so the salvaged
            // stream must decode to a prefix of what was fed — any
            // deviation is corruption, not crash loss.
            if sreport.dropped.is_empty() {
                let got = pastri::stream::StreamReader::new(&healed[..])
                    .and_then(|r| r.read_to_vec())
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                if !within_bound(&got, &fed[..got.len().min(fed.len())], cfg.error_bound)
                    || got.len() > fed.len()
                {
                    ctx.tallies.value_mismatches += 1;
                }
            }
        }
        // Killed before even the magic got out: nothing was committed.
        Err(ref e) if e.kind() == ErrorKind::InvalidData => {
            ctx.tallies.streams_unrecoverable += 1;
        }
        Err(e) => return Err(e.into()),
    }
    Ok(())
}

/// A durable side-store write killed mid-write (writer dropped without
/// finish), resumed from its checkpoint journal, completed, and
/// verified block-for-block — the full crash/recovery cycle in one op.
fn op_crash_resume(cfg: &SoakConfig, ctx: &mut StoreCtx, op_seed: u64) -> Result<(), SoakError> {
    let side = ctx
        .path
        .with_extension(format!("side{:08x}.eristore", op_seed as u32));
    let total = 4 + (splitmix64(op_seed ^ 0xCAFE) % 5) as usize;
    let kill_at = 1 + (splitmix64(op_seed ^ 0xDEAD) % total as u64) as usize;
    {
        let mut w = StoreWriter::create_durable(&side, cfg.geometry, cfg.error_bound, 2)
            .map_err(store_io)?;
        for b in 0..kill_at {
            w.append_block(&scratch_block(cfg.geometry, op_seed, b))
                .map_err(store_io)?;
        }
        // Crash: dropped without finish. The journal's last checkpoint
        // defines the committed prefix; the tail is torn away on resume.
    }
    ctx.tallies.crashes += 1;
    let (mut w, cp) = StoreWriter::open_for_append(&side, cfg.geometry, cfg.error_bound, 2)
        .map_err(store_io)?;
    for b in cp.segments as usize..total {
        w.append_block(&scratch_block(cfg.geometry, op_seed, b))
            .map_err(store_io)?;
    }
    w.finish().map_err(store_io)?;
    ctx.tallies.resumes += 1;

    let mut r = StoreReader::open(&side).map_err(store_io)?;
    for b in 0..total {
        let values = r.read_block(b).map_err(store_io)?;
        if !within_bound(&values, &scratch_block(cfg.geometry, op_seed, b), cfg.error_bound) {
            ctx.tallies.value_mismatches += 1;
        }
    }
    let _ = std::fs::remove_file(&side);
    let _ = std::fs::remove_file(journal_path(&side));
    Ok(())
}

/// One scrub pass over the store: verify every block, splice repairable
/// damage back to the writer's exact bytes (atomic replacement), and
/// quarantine what parity cannot save — preserving the damaged original
/// at a fresh (never clobbered) quarantine path and recording the block
/// in the ledger.
fn scrub_store(ctx: &mut StoreCtx) -> Result<(), SoakError> {
    let bytes = std::fs::read(&ctx.path)?;
    let mut r = StoreReader::from_source(std::io::Cursor::new(&bytes[..]), RetryPolicy::none())
        .map_err(store_io)?;
    let (outcome, patches) = r.scrub().map_err(store_io)?;
    let newly_lost: Vec<usize> = outcome
        .unrepairable
        .iter()
        .copied()
        .filter(|b| !ctx.ledger.contains(b))
        .collect();
    if !newly_lost.is_empty() {
        // Evidence first: preserve the damaged original before any
        // repair rewrites the file.
        let qpath = fresh_quarantine_path(&ctx.path);
        std::fs::write(&qpath, &bytes)?;
        telemetry::counter_add("soak.quarantines", 1);
        for b in newly_lost {
            ctx.ledger.insert(b);
        }
    }
    if !patches.is_empty() {
        let mut healed = bytes;
        for (offset, replacement) in &patches {
            let start = *offset as usize;
            healed[start..start + replacement.len()].copy_from_slice(replacement);
        }
        atomic_write(&ctx.path, &healed)?;
        ctx.tallies.scrub_repaired += patches.len() as u64;
        // Flips already applied on top of now-healed bytes are gone;
        // nothing else to do — the splice is certified byte-identical.
    }
    Ok(())
}

use pastri::stream::StreamWriter;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Telemetry state is process-global; soak runs must not overlap.
    static SOAK_LOCK: Mutex<()> = Mutex::new(());

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("soak-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn clean_run_without_faults_loses_nothing() {
        let _g = SOAK_LOCK.lock().unwrap();
        let dir = tmpdir("clean");
        let mut cfg = SoakConfig::storm(&dir, 7);
        cfg.ops = 40;
        cfg.faults = FaultPlan {
            bit_flip_every: 0,
            flips_per_event: 0,
            torn_stream_every: 0,
            transient_rate: 0.0,
            max_transient_errors: 0,
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.unaccounted_loss, 0);
        assert_eq!(report.tallies.value_mismatches, 0);
        assert_eq!(report.tallies.quarantined, 0);
        assert_eq!(report.tallies.bit_flip_events, 0);
        assert!(report.passed(), "no gates set, no loss: must pass");
        assert_eq!(report.tallies.ops_executed, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storm_tallies_are_seed_deterministic() {
        let _g = SOAK_LOCK.lock().unwrap();
        let dir = tmpdir("det");
        let cfg = SoakConfig::storm(&dir, 99);
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.tallies, b.tallies, "same seed must reproduce tallies");
        assert_eq!(a.unaccounted_loss, 0, "faults must all be accounted");
        assert_eq!(b.unaccounted_loss, 0);
        assert!(a.tallies.bit_flip_events > 0, "the storm must actually fire");
        assert!(a.tallies.crashes > 0 && a.tallies.resumes == a.tallies.crashes);
        // A different seed produces a different storm.
        let other = run(&SoakConfig::storm(&dir, 100)).unwrap();
        assert_ne!(a.tallies, other.tallies);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn impossible_gate_fails_the_run() {
        let _g = SOAK_LOCK.lock().unwrap();
        let dir = tmpdir("gate");
        let mut cfg = SoakConfig::storm(&dir, 11);
        cfg.ops = 30;
        cfg.slo.read_p99_us = Some(0); // below achievable by construction
        let report = run(&cfg).unwrap();
        assert_eq!(report.unaccounted_loss, 0);
        assert!(!report.passed(), "a 0µs p99 gate must fail");
        let failed: Vec<&GateResult> =
            report.gates.iter().filter(|g| !g.pass).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].gate, "read_p99_us");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_weight_mix_is_rejected() {
        let dir = tmpdir("badmix");
        let mut cfg = SoakConfig::storm(&dir, 1);
        cfg.mix = OpMix {
            read: 0,
            write_container: 0,
            write_stream: 0,
            crash_resume: 0,
            scrub: 0,
        };
        assert!(matches!(run(&cfg), Err(SoakError::Config(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
