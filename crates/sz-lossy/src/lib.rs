//! SZ-style error-bounded lossy compressor (comparison baseline).
//!
//! A faithful reimplementation of the SZ 1.4 one-dimensional pipeline the
//! paper compares against (Di & Cappello, IPDPS'16; Tao et al., IPDPS'17):
//!
//! 1. **Best-fit curve-fitting prediction** — each point is predicted from
//!    the *previously decompressed* neighbours by one of three models:
//!    preceding value, linear extrapolation `2a − b`, or quadratic
//!    `3a − 3b + c`. The best model is selected per [`SEGMENT`]-point
//!    segment by measuring true residuals on the encoder side; only a
//!    2-bit id per segment is transmitted (SZ transmits no per-point
//!    choices either — its 1.4 pipeline fixes the predictor for a buffer).
//! 2. **Linear-scaling quantization** — the prediction residual is mapped
//!    to one of `2^16` bins of width `2·EB`; in-range residuals become
//!    quantization codes, the rest are *unpredictable*.
//! 3. **Huffman coding** of the code stream (dictionary shipped in-band,
//!    unlike PaSTRI's fixed trees — this is exactly the overhead the paper
//!    discusses in Sec. IV-C).
//! 4. **Binary-representation analysis** for unpredictable values: the
//!    IEEE-754 mantissa is truncated to the bits the error bound actually
//!    requires.
//!
//! The intent is behavioural fidelity: on ERI data the sequential
//! predictor straddles sub-block boundaries and misses the long-range
//! pattern, which is why PaSTRI beats it — the same failure mode as the
//! real SZ in the paper's Fig. 9.

use bitio::{BitReader, BitWriter};
use codecs::huffman;
use codecs::varint;

/// Number of quantization intervals (SZ's default `intervals = 65536`).
const INTERVALS: u32 = 1 << 16;
/// Code space offset: code `RADIUS` means zero residual.
const RADIUS: u32 = INTERVALS / 2;
/// Reserved Huffman symbol for unpredictable points.
const UNPRED: u32 = 0;
/// Points per predictor-selection segment.
pub const SEGMENT: usize = 1024;

const MAGIC: [u8; 4] = *b"SZ1D";

/// Decompression failure for the SZ baseline.
#[derive(Debug)]
pub enum SzError {
    /// Bad magic / version / framing.
    Corrupt(&'static str),
    /// Entropy decode failure.
    Codec(codecs::CodecError),
    /// Bit-level truncation.
    BitRead(bitio::ReadError),
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::Corrupt(m) => write!(f, "corrupt SZ stream: {m}"),
            SzError::Codec(e) => write!(f, "codec error: {e}"),
            SzError::BitRead(e) => write!(f, "bit read error: {e}"),
        }
    }
}

impl std::error::Error for SzError {}

impl From<codecs::CodecError> for SzError {
    fn from(e: codecs::CodecError) -> Self {
        SzError::Codec(e)
    }
}

impl From<bitio::ReadError> for SzError {
    fn from(e: bitio::ReadError) -> Self {
        SzError::BitRead(e)
    }
}

/// The SZ-style compressor configured with an absolute error bound.
#[derive(Debug, Clone, Copy)]
pub struct SzCompressor {
    eb: f64,
}

impl SzCompressor {
    /// Creates a compressor with absolute error bound `eb`.
    ///
    /// # Panics
    /// Panics unless `eb` is finite and positive.
    #[must_use]
    pub fn new(eb: f64) -> Self {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be finite and > 0");
        Self { eb }
    }

    /// Compressor with a value-range-relative bound (`rel · (max − min)`
    /// of the finite values), the real SZ's "REL" mode.
    #[must_use]
    pub fn with_relative_bound(rel: f64, data: &[f64]) -> Self {
        assert!(rel.is_finite() && rel > 0.0, "relative bound must be finite and > 0");
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in data {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let range = if hi > lo { hi - lo } else { 1.0 };
        Self::new(rel * range)
    }

    /// The configured error bound.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// Compresses `data`, guaranteeing `|v − v̂| ≤ eb` for finite inputs
    /// (non-finite values are stored verbatim and restored bit-exactly).
    #[must_use]
    pub fn compress(&self, data: &[f64]) -> Vec<u8> {
        let bin = 2.0 * self.eb;
        let mut codes: Vec<u32> = Vec::with_capacity(data.len());
        // Unpredictable values, truncated-binary coded.
        let mut unpred = BitWriter::new();
        // Reconstruction history (what the decompressor will see).
        let mut hist = [0.0f64; 3]; // hist[0] = most recent
        // One 2-bit predictor id per segment, chosen by true residuals.
        let mut pred_ids = BitWriter::new();

        for (seg_idx, segment) in data.chunks(SEGMENT).enumerate() {
            let pid = select_predictor(segment, &hist);
            pred_ids.write_bits(u64::from(pid), 2);
            for (k, &v) in segment.iter().enumerate() {
                let i = seg_idx * SEGMENT + k;
                let pred = predict(&hist, i, pid);
                let mut stored: Option<(u32, f64)> = None;
                if v.is_finite() && pred.is_finite() {
                    let diff = v - pred;
                    let q = (diff / bin).round();
                    if q.abs() < f64::from(RADIUS - 1) {
                        let code = (q as i64 + i64::from(RADIUS)) as u32;
                        let recon = pred + (q * bin);
                        if (v - recon).abs() <= self.eb {
                            stored = Some((code, recon));
                        }
                    }
                }
                match stored {
                    Some((code, recon)) => {
                        codes.push(code);
                        push_hist(&mut hist, recon);
                    }
                    None => {
                        codes.push(UNPRED);
                        let recon = write_truncated(&mut unpred, v, self.eb);
                        push_hist(&mut hist, recon);
                    }
                }
            }
        }

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.eb.to_le_bytes());
        varint::write_u64(&mut out, data.len() as u64);
        let huff = huffman::encode_stream(&codes, INTERVALS as usize);
        varint::write_u64(&mut out, huff.len() as u64);
        out.extend_from_slice(&huff);
        let pid_bytes = pred_ids.into_bytes();
        varint::write_u64(&mut out, pid_bytes.len() as u64);
        out.extend_from_slice(&pid_bytes);
        let unpred_bytes = unpred.into_bytes();
        varint::write_u64(&mut out, unpred_bytes.len() as u64);
        out.extend_from_slice(&unpred_bytes);
        out
    }

    /// Decompresses a stream produced by [`compress`](Self::compress).
    pub fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, SzError> {
        decompress(bytes)
    }
}

/// Decompresses an SZ-style stream (self-describing).
pub fn decompress(bytes: &[u8]) -> Result<Vec<f64>, SzError> {
    let mut pos = 0usize;
    if bytes.get(..4) != Some(&MAGIC) {
        return Err(SzError::Corrupt("bad magic"));
    }
    pos += 4;
    let eb_bytes: [u8; 8] = bytes
        .get(pos..pos + 8)
        .ok_or(SzError::Corrupt("truncated header"))?
        .try_into()
        .unwrap();
    let eb = f64::from_le_bytes(eb_bytes);
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Corrupt("invalid error bound"));
    }
    pos += 8;
    let n = varint::read_u64(bytes, &mut pos).ok_or(SzError::Corrupt("truncated length"))? as usize;
    let hlen =
        varint::read_u64(bytes, &mut pos).ok_or(SzError::Corrupt("truncated huffman len"))? as usize;
    let hslice = bytes
        .get(pos..pos + hlen)
        .ok_or(SzError::Corrupt("huffman block truncated"))?;
    let (codes, _) = huffman::decode_stream(hslice)?;
    pos += hlen;
    if codes.len() != n {
        return Err(SzError::Corrupt("code count mismatch"));
    }
    let plen =
        varint::read_u64(bytes, &mut pos).ok_or(SzError::Corrupt("truncated pid len"))? as usize;
    let pid_slice = bytes
        .get(pos..pos + plen)
        .ok_or(SzError::Corrupt("pid block truncated"))?;
    pos += plen;
    let ulen =
        varint::read_u64(bytes, &mut pos).ok_or(SzError::Corrupt("truncated unpred len"))? as usize;
    let unpred_slice = bytes
        .get(pos..pos + ulen)
        .ok_or(SzError::Corrupt("unpred block truncated"))?;

    let bin = 2.0 * eb;
    let mut pid_r = BitReader::new(pid_slice);
    let mut unpred_r = BitReader::new(unpred_slice);
    let mut hist = [0.0f64; 3];
    let mut out = Vec::with_capacity(n);
    let mut pid = 0u8;
    for (i, &code) in codes.iter().enumerate() {
        if i % SEGMENT == 0 {
            pid = pid_r.read_bits(2)? as u8;
        }
        let pred = predict(&hist, i, pid);
        let v = if code == UNPRED {
            read_truncated(&mut unpred_r)?
        } else {
            let q = i64::from(code) - i64::from(RADIUS);
            pred + q as f64 * bin
        };
        push_hist(&mut hist, v);
        out.push(v);
    }
    Ok(out)
}

#[inline]
fn push_hist(hist: &mut [f64; 3], v: f64) {
    hist[2] = hist[1];
    hist[1] = hist[0];
    hist[0] = v;
}

/// Prediction with model `pid` given reconstruction history
/// (`hist[0]` = previous point).
#[inline]
fn predict(hist: &[f64; 3], i: usize, pid: u8) -> f64 {
    match (pid, i) {
        (_, 0) => 0.0,
        (0, _) => hist[0],
        (1, _) => 2.0 * hist[0] - hist[1],
        (2, _) => 3.0 * hist[0] - 3.0 * hist[1] + hist[2],
        _ => hist[0],
    }
}

/// Best-fit selection over one segment: simulate each curve-fitting model
/// on the *true* values (a cheap encoder-side proxy for the reconstructed
/// ones) and pick the model with the smallest total absolute residual.
fn select_predictor(segment: &[f64], hist: &[f64; 3]) -> u8 {
    let mut cost = [0.0f64; 3];
    let mut h = *hist;
    for (k, &v) in segment.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        for (pid, c) in cost.iter_mut().enumerate() {
            let p = predict(&h, k.max(1), pid as u8); // k.max(1): hist is live
            if p.is_finite() {
                *c += (v - p).abs().min(1e300);
            }
        }
        push_hist(&mut h, v);
    }
    cost.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map_or(0, |(pid, _)| pid as u8)
}

/// Writes `v` with just enough mantissa bits for `eb`, returning the
/// value the decompressor will reconstruct.
fn write_truncated(w: &mut BitWriter, v: f64, eb: f64) -> f64 {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    // Keep mantissa bits down to magnitude `eb`: bit k of the mantissa has
    // weight 2^{exp-k}; we need 2^{exp-keep} ≤ eb.
    let needed = exp - eb.log2().floor() as i64 + 1;
    if !v.is_finite() || needed > 52 {
        // Escape: full 64-bit image, flagged by mantissa-bit count 63.
        // Also used when even the full mantissa cannot meet the bound
        // (|v| so large that ulp(v) > eb) — bit-exact is always within EB.
        w.write_bits(63, 6);
        w.write_bits(bits, 64);
        return v;
    }
    let keep = needed.clamp(0, 52) as u32;
    w.write_bits(u64::from(keep), 6);
    // Sign (1) + exponent (11) + top `keep` mantissa bits.
    w.write_bits(bits >> 63, 1);
    w.write_bits((bits >> 52) & 0x7ff, 11);
    let mantissa = bits & ((1u64 << 52) - 1);
    let kept = if keep == 0 { 0 } else { mantissa >> (52 - keep) };
    if keep > 0 {
        w.write_bits(kept, keep);
    }
    let recon_bits = (bits >> 63) << 63 | (((bits >> 52) & 0x7ff) << 52) | (kept << (52 - keep));
    f64::from_bits(recon_bits)
}

fn read_truncated(r: &mut BitReader<'_>) -> Result<f64, SzError> {
    let keep = r.read_bits(6)? as u32;
    if keep == 63 {
        return Ok(f64::from_bits(r.read_bits(64)?));
    }
    if keep > 52 {
        // 53..=62 is unreachable from the encoder (only 0..=52 or the
        // escape 63): a corrupted stream, not a value.
        return Err(SzError::Corrupt("mantissa bit count out of range"));
    }
    let sign = r.read_bits(1)?;
    let exp = r.read_bits(11)?;
    let kept = if keep == 0 { 0 } else { r.read_bits(keep)? };
    let bits = sign << 63 | exp << 52 | (kept << (52 - keep));
    Ok(f64::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_within(a: &[f64], b: &[f64], eb: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            if x.is_finite() {
                assert!((x - y).abs() <= eb, "point {i}: {x} vs {y}");
            } else {
                assert_eq!(x.to_bits(), y.to_bits(), "point {i}");
            }
        }
    }

    #[test]
    fn roundtrip_smooth_signal() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.01).sin() * 1e-5).collect();
        let c = SzCompressor::new(1e-9);
        let bytes = c.compress(&data);
        let back = c.decompress(&bytes).unwrap();
        assert_within(&data, &back, 1e-9);
        // Smooth data must compress well (> 8x).
        assert!(bytes.len() * 8 < data.len() * 8, "len {}", bytes.len());
    }

    #[test]
    fn roundtrip_constant_and_zero() {
        let c = SzCompressor::new(1e-10);
        for data in [vec![0.0f64; 5000], vec![3.7e-6; 5000]] {
            let bytes = c.compress(&data);
            let back = c.decompress(&bytes).unwrap();
            assert_within(&data, &back, 1e-10);
            assert!(bytes.len() < 2000, "len {}", bytes.len());
        }
    }

    #[test]
    fn roundtrip_empty_and_single() {
        let c = SzCompressor::new(1e-8);
        for data in [vec![], vec![1.23e-4]] {
            let bytes = c.compress(&data);
            let back = c.decompress(&bytes).unwrap();
            assert_within(&data, &back, 1e-8);
        }
    }

    #[test]
    fn unpredictable_spikes_respect_bound() {
        let mut data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.02).cos() * 1e-6).collect();
        data[500] = 12.5;
        data[501] = -3e4;
        data[1999] = 1e-300;
        let c = SzCompressor::new(1e-10);
        let back = c.decompress(&c.compress(&data)).unwrap();
        assert_within(&data, &back, 1e-10);
    }

    #[test]
    fn non_finite_values_roundtrip_exactly() {
        let mut data = vec![1e-6f64; 100];
        data[10] = f64::NAN;
        data[20] = f64::INFINITY;
        data[30] = f64::NEG_INFINITY;
        let c = SzCompressor::new(1e-9);
        let back = c.decompress(&c.compress(&data)).unwrap();
        assert!(back[10].is_nan());
        assert_eq!(back[20], f64::INFINITY);
        assert_eq!(back[30], f64::NEG_INFINITY);
        assert_within(&data, &back, 1e-9);
    }

    #[test]
    fn rejects_corrupt_streams() {
        let c = SzCompressor::new(1e-9);
        let bytes = c.compress(&[1.0, 2.0, 3.0]);
        assert!(decompress(b"nope").is_err());
        assert!(decompress(&bytes[..8]).is_err());
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad.truncate(last);
        // Either an error or (rarely) still decodable if the cut hit
        // padding; must not panic.
        let _ = decompress(&bad);
    }

    #[test]
    fn relative_bound_mode() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin() * 3.0).collect();
        let c = SzCompressor::with_relative_bound(1e-6, &data);
        // Range is ~6, so the absolute bound is ~6e-6.
        assert!((c.error_bound() - 6e-6).abs() < 1e-6);
        let back = c.decompress(&c.compress(&data)).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= c.error_bound());
        }
    }

    #[test]
    fn tighter_bound_costs_more_bits() {
        let data: Vec<f64> = (0..20_000)
            .map(|i| (i as f64 * 0.013).sin() * 1e-5 + (i as f64 * 0.31).cos() * 1e-7)
            .collect();
        let loose = SzCompressor::new(1e-8).compress(&data).len();
        let tight = SzCompressor::new(1e-12).compress(&data).len();
        assert!(tight > loose, "tight {tight} loose {loose}");
    }
}
