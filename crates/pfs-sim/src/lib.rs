//! Analytic performance models for the paper's system-level experiments.
//!
//! The paper ran two experiments we cannot rerun without the Bebop
//! supercomputer and GAMESS:
//!
//! * **Fig. 10** — dumping/loading a compressed ERI dataset to GPFS with
//!   256–2048 cores (file-per-process POSIX I/O).
//! * **Fig. 11** — total time to *obtain* integral data over 20 reuses:
//!   recompute-with-GAMESS-every-time vs generate-once + compress +
//!   decompress-on-reuse.
//!
//! Both figures are arithmetic over a handful of rates (per-core
//! compression/decompression throughput, compression ratio, file-system
//! bandwidth, ERI generation rate). This crate reproduces that arithmetic
//! exactly; the compressor rates and ratios are *measured* from the real
//! implementations by the benchmark harness and fed in as
//! [`CompressorProfile`]s, while the cluster constants ([`GpfsModel`],
//! the GAMESS generation rates) are taken from the paper's own numbers.

/// Measured single-core behaviour of one compressor on one dataset.
#[derive(Debug, Clone)]
pub struct CompressorProfile {
    /// Display name ("PaSTRI", "SZ", "ZFP").
    pub name: String,
    /// Compression ratio (original / compressed).
    pub ratio: f64,
    /// Single-core compression throughput, MB/s of input consumed.
    pub compress_mbs: f64,
    /// Single-core decompression throughput, MB/s of output produced.
    pub decompress_mbs: f64,
}

/// File-per-process parallel file system model.
///
/// Each process streams its share at `per_process_mbs` until the shared
/// `aggregate_mbs` backbone saturates; every file pays `metadata_s` once
/// (open/close + directory traffic).
#[derive(Debug, Clone, Copy)]
pub struct GpfsModel {
    /// Per-process POSIX stream bandwidth (MB/s).
    pub per_process_mbs: f64,
    /// Shared aggregate bandwidth of the file servers (MB/s).
    pub aggregate_mbs: f64,
    /// Per-file metadata cost (seconds).
    pub metadata_s: f64,
}

impl GpfsModel {
    /// Constants calibrated to the paper's Bebop/GPFS observations: the
    /// per-core stream is slow enough that writing the *uncompressed*
    /// dataset takes "thousands of seconds", dump/load times shrink
    /// roughly linearly from 256 to 2048 cores (per-process-bound regime),
    /// and the 256-core SZ dump+load lands in the tens of minutes.
    #[must_use]
    pub fn bebop() -> Self {
        Self {
            per_process_mbs: 15.0,
            aggregate_mbs: 40_000.0,
            metadata_s: 1.0,
        }
    }

    /// Seconds to move `bytes` with `cores` files in parallel.
    #[must_use]
    pub fn io_seconds(&self, bytes: f64, cores: u32) -> f64 {
        assert!(cores > 0);
        let per_core = bytes / f64::from(cores);
        let stream = per_core / (self.per_process_mbs * 1e6);
        let backbone = bytes / (self.aggregate_mbs * 1e6);
        stream.max(backbone) + self.metadata_s
    }
}

/// Phase breakdown of one dump or load (Fig. 10's stacked bars).
#[derive(Debug, Clone, Copy)]
pub struct IoPhases {
    /// Seconds spent compressing (dump) or decompressing (load).
    pub codec_s: f64,
    /// Seconds spent in file I/O.
    pub io_s: f64,
}

impl IoPhases {
    /// Total elapsed seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.codec_s + self.io_s
    }
}

/// The Fig. 10 experiment: dump/load `dataset_bytes` through a compressor
/// with `cores` processes against a [`GpfsModel`].
#[derive(Debug, Clone, Copy)]
pub struct DumpLoadModel {
    pub gpfs: GpfsModel,
    pub dataset_bytes: f64,
}

impl DumpLoadModel {
    /// Dump: compress in parallel (perfectly block-parallel, as PaSTRI,
    /// SZ, and ZFP all are at file granularity), then write compressed
    /// bytes.
    #[must_use]
    pub fn dump(&self, prof: &CompressorProfile, cores: u32) -> IoPhases {
        let compress_s = self.dataset_bytes / (f64::from(cores) * prof.compress_mbs * 1e6);
        let io_s = self
            .gpfs
            .io_seconds(self.dataset_bytes / prof.ratio, cores);
        IoPhases {
            codec_s: compress_s,
            io_s,
        }
    }

    /// Load: read compressed bytes, then decompress in parallel.
    #[must_use]
    pub fn load(&self, prof: &CompressorProfile, cores: u32) -> IoPhases {
        let io_s = self
            .gpfs
            .io_seconds(self.dataset_bytes / prof.ratio, cores);
        let decompress_s = self.dataset_bytes / (f64::from(cores) * prof.decompress_mbs * 1e6);
        IoPhases {
            codec_s: decompress_s,
            io_s,
        }
    }

    /// Dump/load of the raw, uncompressed dataset (the case the paper
    /// omits from Fig. 10 because it "takes extremely long").
    #[must_use]
    pub fn raw_io(&self, cores: u32) -> f64 {
        self.gpfs.io_seconds(self.dataset_bytes, cores)
    }
}

/// GAMESS ERI generation rates reported in the paper (Sec. V-B):
/// `(dd|dd)`: 322.82 MB/s, `(ff|ff)`: 622.81 MB/s per node.
#[must_use]
pub fn gamess_eri_rate_mbs(config_label: &str) -> f64 {
    match config_label {
        "(ff|ff)" => 622.81,
        _ => 322.82,
    }
}

/// Phase breakdown of the Fig. 11 comparison (in-memory; the paper states
/// "disk access times are not included").
#[derive(Debug, Clone, Copy)]
pub struct ReuseBreakdown {
    /// Seconds computing ERIs from scratch.
    pub calculate_s: f64,
    /// Seconds compressing (once).
    pub compress_s: f64,
    /// Seconds decompressing (per reuse, totalled).
    pub decompress_s: f64,
    /// Seconds in scrub/repair passes: rebuilding damaged blocks from
    /// their containers' parity sections instead of regenerating them
    /// (zero for formats without a parity layer).
    pub repair_s: f64,
}

impl ReuseBreakdown {
    /// Total elapsed seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.calculate_s + self.compress_s + self.decompress_s + self.repair_s
    }
}

/// Storage-fault model for the reuse loop: expected corruption and
/// transient-I/O costs over many SCF reuses of one compressed dataset.
///
/// A dataset that "lives" on a parallel file system across 20 reuses is
/// exposed to bit rot, torn writes, and congested-server hiccups the
/// whole time. What those cost depends on the storage format's integrity
/// design: with per-block checksums and salvage (container v2 /
/// `ERISTOR2`), a detected corruption loses only the damaged blocks and
/// only those are regenerated; with the v3 parity layer on top, the
/// damaged blocks rebuild bit-exact from their parity group and nothing
/// is regenerated at all; without either, detection happens — if at
/// all — as garbage SCF energies, and the honest recovery cost is
/// regenerating the full dataset.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability that any given reuse observes detectable corruption
    /// somewhere in the dataset (per-reuse, not per-byte).
    pub corruption_per_reuse: f64,
    /// Probability that any given reuse observes *silent* corruption:
    /// bit flips the storage stack never reports (SDC). Per-block
    /// checksums turn these into detected, block-contained losses; a
    /// parity layer additionally repairs them in place; a format with
    /// neither learns about them as garbage SCF energies.
    pub silent_corruption_per_reuse: f64,
    /// Fraction of blocks lost when corruption strikes. Independent
    /// per-block framing keeps this near `1 / num_blocks`; framing-level
    /// damage loses more.
    pub damaged_block_fraction: f64,
    /// Expected transient-I/O retries per reuse (interrupted or
    /// would-block reads on a busy file system).
    pub transient_retries_per_reuse: f64,
    /// Seconds per transient retry (bounded backoff + the re-read).
    pub retry_s: f64,
}

impl FaultModel {
    /// No faults: reduces every faulted projection to the fault-free one.
    #[must_use]
    pub fn none() -> Self {
        Self {
            corruption_per_reuse: 0.0,
            silent_corruption_per_reuse: 0.0,
            damaged_block_fraction: 0.0,
            transient_retries_per_reuse: 0.0,
            retry_s: 0.0,
        }
    }

    /// A long-lived GPFS dataset: corruption is rare per reuse but not
    /// negligible over a campaign, damage is contained to a sliver of
    /// blocks, and transient retries are routine.
    #[must_use]
    pub fn gpfs_resident() -> Self {
        Self {
            corruption_per_reuse: 0.01,
            silent_corruption_per_reuse: 0.005,
            damaged_block_fraction: 1e-4,
            transient_retries_per_reuse: 2.0,
            retry_s: 0.05,
        }
    }
}

/// The Fig. 11 experiment: integral data of `bytes` size is needed
/// `reuse_count` times (the paper uses 20, "a conservatively acceptable
/// value for ERIs").
#[derive(Debug, Clone, Copy)]
pub struct ReuseModel {
    pub bytes: f64,
    pub eri_gen_mbs: f64,
    pub reuse_count: u32,
}

impl ReuseModel {
    /// Original GAMESS infrastructure: regenerate every time it is needed.
    #[must_use]
    pub fn original(&self) -> ReuseBreakdown {
        ReuseBreakdown {
            calculate_s: f64::from(self.reuse_count) * self.bytes / (self.eri_gen_mbs * 1e6),
            compress_s: 0.0,
            decompress_s: 0.0,
            repair_s: 0.0,
        }
    }

    /// Compressor infrastructure: generate once, compress once,
    /// decompress on every reuse.
    #[must_use]
    pub fn with_compressor(&self, prof: &CompressorProfile) -> ReuseBreakdown {
        ReuseBreakdown {
            calculate_s: self.bytes / (self.eri_gen_mbs * 1e6),
            compress_s: self.bytes / (prof.compress_mbs * 1e6),
            decompress_s: f64::from(self.reuse_count) * self.bytes / (prof.decompress_mbs * 1e6),
            repair_s: 0.0,
        }
    }

    /// Compressor infrastructure behind the sharded cache server:
    /// generate once, compress once, but only the *missed* fraction of
    /// reuses pays decompression — cache hits serve the already
    /// decompressed block straight from memory. `hit_rate` is the
    /// measured `cache.hits / (cache.hits + cache.misses)` from a
    /// server run (BENCH_server.json), clamped to `[0, 1]`; at 0 this
    /// degenerates to [`with_compressor`](Self::with_compressor).
    #[must_use]
    pub fn with_cache_server(&self, prof: &CompressorProfile, hit_rate: f64) -> ReuseBreakdown {
        let base = self.with_compressor(prof);
        ReuseBreakdown {
            decompress_s: base.decompress_s * (1.0 - hit_rate.clamp(0.0, 1.0)),
            ..base
        }
    }

    /// Compressor infrastructure on faulty storage *with* the integrity
    /// layer: corruption is detected by checksums and contained by
    /// per-block framing, so only the damaged fraction is regenerated and
    /// recompressed; transient errors cost bounded retries folded into
    /// the reuse (decompress) phase.
    #[must_use]
    pub fn with_compressor_faulty(
        &self,
        prof: &CompressorProfile,
        faults: &FaultModel,
    ) -> ReuseBreakdown {
        let base = self.with_compressor(prof);
        let reuses = f64::from(self.reuse_count);
        // Expected bytes regenerated over the campaign: each reuse hits
        // corruption with some probability, losing a fraction of blocks.
        // Checksums catch silent flips too, so they join the detected
        // rate here — contained, but still regenerated.
        let corruption = faults.corruption_per_reuse + faults.silent_corruption_per_reuse;
        let lost_bytes = reuses * corruption * faults.damaged_block_fraction * self.bytes;
        ReuseBreakdown {
            calculate_s: base.calculate_s + lost_bytes / (self.eri_gen_mbs * 1e6),
            compress_s: base.compress_s + lost_bytes / (prof.compress_mbs * 1e6),
            decompress_s: base.decompress_s
                + reuses * faults.transient_retries_per_reuse * faults.retry_s,
            repair_s: 0.0,
        }
    }

    /// Compressor infrastructure on faulty storage with the *self-healing*
    /// layer (container v3): checksums localize damage exactly as in
    /// [`Self::with_compressor_faulty`], but the per-group Reed-Solomon
    /// parity rebuilds damaged blocks bit-exact from the surviving shards,
    /// so nothing is regenerated or recompressed. Repair reads the damaged
    /// block's whole parity group of compressed payloads and runs the
    /// GF(256) decode — streaming work charged to `repair_s` at the
    /// decompressor's rate. Parity emission itself is part of the measured
    /// `compress_mbs` (v3 writers emit parity by default), so no extra
    /// compress-side charge appears here.
    #[must_use]
    pub fn with_compressor_self_healing(
        &self,
        prof: &CompressorProfile,
        faults: &FaultModel,
    ) -> ReuseBreakdown {
        /// Data shards per parity group (`ParityConfig::default`).
        const PARITY_GROUP: f64 = 8.0;
        let base = self.with_compressor(prof);
        let reuses = f64::from(self.reuse_count);
        let corruption = faults.corruption_per_reuse + faults.silent_corruption_per_reuse;
        let damaged_bytes = reuses * corruption * faults.damaged_block_fraction * self.bytes;
        let repaired_compressed = damaged_bytes / prof.ratio * PARITY_GROUP;
        ReuseBreakdown {
            calculate_s: base.calculate_s,
            compress_s: base.compress_s,
            decompress_s: base.decompress_s
                + reuses * faults.transient_retries_per_reuse * faults.retry_s,
            repair_s: repaired_compressed / (prof.decompress_mbs * 1e6),
        }
    }

    /// Compressor infrastructure on faulty storage *without* checksums
    /// (the pre-v2 formats): detected corruption cannot be localized, so
    /// each corrupted reuse regenerates and recompresses the full
    /// dataset, and every transient error fails the load outright —
    /// costing a full re-read/decompress pass instead of a bounded retry.
    #[must_use]
    pub fn with_compressor_faulty_no_integrity(
        &self,
        prof: &CompressorProfile,
        faults: &FaultModel,
    ) -> ReuseBreakdown {
        let base = self.with_compressor(prof);
        let reuses = f64::from(self.reuse_count);
        // Silent flips are just as fatal here: they surface as garbage
        // energies and force the same full regeneration.
        let corrupted_reuses =
            reuses * (faults.corruption_per_reuse + faults.silent_corruption_per_reuse);
        let failed_loads = reuses * faults.transient_retries_per_reuse;
        ReuseBreakdown {
            calculate_s: base.calculate_s + corrupted_reuses * self.bytes / (self.eri_gen_mbs * 1e6),
            compress_s: base.compress_s + corrupted_reuses * self.bytes / (prof.compress_mbs * 1e6),
            decompress_s: base.decompress_s
                + failed_loads * self.bytes / (prof.decompress_mbs * 1e6),
            repair_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pastri_like() -> CompressorProfile {
        CompressorProfile {
            name: "PaSTRI".into(),
            ratio: 16.8,
            compress_mbs: 660.0,
            decompress_mbs: 1110.0,
        }
    }

    fn sz_like() -> CompressorProfile {
        CompressorProfile {
            name: "SZ".into(),
            ratio: 7.24,
            compress_mbs: 104.1,
            decompress_mbs: 148.6,
        }
    }

    #[test]
    fn cache_server_hit_rate_discounts_only_decompression() {
        let model = ReuseModel {
            bytes: 1e9,
            eri_gen_mbs: 322.82,
            reuse_count: 20,
        };
        let prof = pastri_like();
        let base = model.with_compressor(&prof);

        // A cold cache is exactly the plain compressor pipeline.
        let cold = model.with_cache_server(&prof, 0.0);
        assert_eq!(cold.total_s(), base.total_s());

        // Hits discount decompression linearly and touch nothing else.
        let warm = model.with_cache_server(&prof, 0.75);
        assert!((warm.decompress_s - base.decompress_s * 0.25).abs() < 1e-12);
        assert_eq!(warm.calculate_s, base.calculate_s);
        assert_eq!(warm.compress_s, base.compress_s);
        assert!(warm.total_s() < cold.total_s());

        // A perfect cache pays decompression never; rates outside [0,1]
        // clamp rather than going negative.
        let perfect = model.with_cache_server(&prof, 1.0);
        assert_eq!(perfect.decompress_s, 0.0);
        assert_eq!(model.with_cache_server(&prof, 7.0).total_s(), perfect.total_s());
    }

    #[test]
    fn io_time_scales_down_with_cores() {
        let g = GpfsModel::bebop();
        let t256 = g.io_seconds(1e12, 256);
        let t1024 = g.io_seconds(1e12, 1024);
        assert!(t1024 < t256);
        // Per-process-bound regime: near-linear scaling.
        assert!(t256 / t1024 > 3.0, "{t256} vs {t1024}");
    }

    #[test]
    fn aggregate_cap_binds_at_scale() {
        let g = GpfsModel {
            per_process_mbs: 1000.0,
            aggregate_mbs: 10_000.0,
            metadata_s: 0.0,
        };
        // 256 cores × 1000 MB/s would be 256 GB/s, but the backbone caps
        // at 10 GB/s.
        let t = g.io_seconds(1e12, 256);
        assert!((t - 100.0).abs() < 1.0, "t={t}");
    }

    #[test]
    fn raw_io_takes_thousands_of_seconds() {
        // The paper's justification for not plotting uncompressed I/O.
        let m = DumpLoadModel {
            gpfs: GpfsModel::bebop(),
            dataset_bytes: 4e12,
        };
        assert!(m.raw_io(256) > 1000.0);
    }

    #[test]
    fn pastri_dump_load_beats_sz_by_2x() {
        // The headline claim of Fig. 10: "PaSTRI leads to much higher
        // performance (2X or higher) than the other two compressors".
        let m = DumpLoadModel {
            gpfs: GpfsModel::bebop(),
            dataset_bytes: 4e12,
        };
        for cores in [256u32, 512, 1024, 2048] {
            let p = m.dump(&pastri_like(), cores).total_s() + m.load(&pastri_like(), cores).total_s();
            let s = m.dump(&sz_like(), cores).total_s() + m.load(&sz_like(), cores).total_s();
            assert!(s > 2.0 * p, "cores {cores}: sz {s} vs pastri {p}");
        }
    }

    #[test]
    fn dump_load_times_decrease_with_cores() {
        let m = DumpLoadModel {
            gpfs: GpfsModel::bebop(),
            dataset_bytes: 4e12,
        };
        let mut last = f64::INFINITY;
        for cores in [256u32, 512, 1024, 2048] {
            let t = m.dump(&pastri_like(), cores).total_s();
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn reuse_model_matches_paper_structure() {
        // Fig. 11: GAMESS at (dd|dd) rate, 20 reuses, PaSTRI decompression
        // ~1 GB/s. The compressed infrastructure must win big.
        let m = ReuseModel {
            bytes: 2e9,
            eri_gen_mbs: gamess_eri_rate_mbs("(dd|dd)"),
            reuse_count: 20,
        };
        let orig = m.original();
        let fast = m.with_compressor(&pastri_like());
        // Fig. 11 shows the (dd|dd) PaSTRI bar at ~0.35 of Original,
        // i.e. just under a 3x win.
        assert!(orig.total_s() > 2.5 * fast.total_s());
        // Generation happens once in the compressed pipeline.
        assert!((fast.calculate_s * 20.0 - orig.calculate_s).abs() < 1e-9);
    }

    #[test]
    fn reuse_speedup_grows_with_reuse_count() {
        let mk = |reuse| ReuseModel {
            bytes: 1e9,
            eri_gen_mbs: 322.82,
            reuse_count: reuse,
        };
        let speedup = |reuse: u32| {
            let m = mk(reuse);
            m.original().total_s() / m.with_compressor(&pastri_like()).total_s()
        };
        assert!(speedup(20) > speedup(5));
        assert!(speedup(100) > speedup(20));
    }

    #[test]
    fn gamess_rates_match_paper() {
        assert_eq!(gamess_eri_rate_mbs("(dd|dd)"), 322.82);
        assert_eq!(gamess_eri_rate_mbs("(ff|ff)"), 622.81);
    }

    #[test]
    fn zero_faults_reduce_to_fault_free_model() {
        let m = ReuseModel {
            bytes: 2e9,
            eri_gen_mbs: 322.82,
            reuse_count: 20,
        };
        let clean = m.with_compressor(&pastri_like());
        let faulted = m.with_compressor_faulty(&pastri_like(), &FaultModel::none());
        let no_integrity =
            m.with_compressor_faulty_no_integrity(&pastri_like(), &FaultModel::none());
        let healing = m.with_compressor_self_healing(&pastri_like(), &FaultModel::none());
        assert_eq!(clean.total_s(), faulted.total_s());
        assert_eq!(clean.total_s(), no_integrity.total_s());
        assert_eq!(clean.total_s(), healing.total_s());
        assert_eq!(healing.repair_s, 0.0);
    }

    #[test]
    fn parity_repair_beats_drop_and_regenerate() {
        // The self-healing layer's claim: when corruption (detected or
        // silent) strikes, rebuilding damaged blocks from parity is
        // cheaper than regenerating + recompressing them, and it never
        // touches the generation or compression phases at all.
        let m = ReuseModel {
            bytes: 2e9,
            eri_gen_mbs: 322.82,
            reuse_count: 20,
        };
        let faults = FaultModel::gpfs_resident();
        assert!(faults.silent_corruption_per_reuse > 0.0);
        let clean = m.with_compressor(&pastri_like());
        let drop = m.with_compressor_faulty(&pastri_like(), &faults);
        let heal = m.with_compressor_self_healing(&pastri_like(), &faults);
        // Repair does real work...
        assert!(heal.repair_s > 0.0);
        // ...but generation and compression stay at the fault-free cost,
        // unlike the drop-and-regenerate path.
        assert_eq!(heal.calculate_s, clean.calculate_s);
        assert_eq!(heal.compress_s, clean.compress_s);
        assert!(drop.calculate_s > clean.calculate_s);
        // Net: self-healing strictly beats drop-and-regenerate.
        assert!(
            heal.total_s() < drop.total_s(),
            "heal {}s vs drop {}s",
            heal.total_s(),
            drop.total_s()
        );
    }

    #[test]
    fn integrity_layer_pays_for_itself_on_faulty_storage() {
        let m = ReuseModel {
            bytes: 2e9,
            eri_gen_mbs: 322.82,
            reuse_count: 20,
        };
        let faults = FaultModel::gpfs_resident();
        let clean = m.with_compressor(&pastri_like());
        let with = m.with_compressor_faulty(&pastri_like(), &faults);
        let without = m.with_compressor_faulty_no_integrity(&pastri_like(), &faults);
        // Faults always cost something...
        assert!(with.total_s() > clean.total_s());
        // ...but block-contained recovery costs far less than full
        // regeneration: the fault overhead shrinks by >10x.
        let overhead_with = with.total_s() - clean.total_s();
        let overhead_without = without.total_s() - clean.total_s();
        assert!(
            overhead_without > 10.0 * overhead_with,
            "contained {overhead_with}s vs uncontained {overhead_without}s"
        );
        // And the faulted-but-protected pipeline still beats regenerating
        // every time.
        assert!(m.original().total_s() > 2.0 * with.total_s());
    }
}
