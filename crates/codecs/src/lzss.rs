//! Byte-oriented LZSS with a hash-chained sliding window.
//!
//! This is the dictionary stage of the DEFLATE-like lossless baseline.
//! Matches are emitted as `(distance, length)` pairs, literals as raw
//! bytes; a one-bit flag distinguishes them. The output token stream is
//! then entropy-coded by the caller (see `lossless::deflate_like`).

use crate::CodecError;

/// Minimum match length worth a token (below this, literals are cheaper).
pub const MIN_MATCH: usize = 3;
/// Maximum match length (fits the token length field).
pub const MAX_MATCH: usize = 258;
/// Sliding window size (32 KiB, as in DEFLATE).
pub const WINDOW: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Max chain walk per position: caps worst-case compression time.
const MAX_CHAIN: usize = 64;

/// One LZSS token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A raw byte.
    Literal(u8),
    /// Copy `len` bytes from `dist` bytes back.
    Match { dist: u32, len: u32 },
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = u32::from(data[i])
        .wrapping_mul(0x9e37)
        .wrapping_add(u32::from(data[i + 1]).wrapping_mul(0x79b9))
        .wrapping_add(u32::from(data[i + 2]));
    (h.wrapping_mul(0x85eb_ca6b) >> (32 - HASH_BITS)) as usize
}

/// Greedy-parse `data` into LZSS tokens.
#[must_use]
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == limit {
                        break;
                    }
                }
                let next = prev[cand % WINDOW];
                // Chains can alias across window wraps; guard monotonicity.
                if next >= cand {
                    break;
                }
                cand = next;
                chain += 1;
            }
            prev[i % WINDOW] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                dist: best_dist as u32,
                len: best_len as u32,
            });
            // Insert hashes for skipped positions so later matches see them.
            for k in i + 1..(i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash3(data, k);
                prev[k % WINDOW] = head[h];
                head[h] = k;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Expands tokens back into bytes.
pub fn detokenize(tokens: &[Token]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt("lzss match distance out of range"));
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (run encoding), so byte-wise.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data);
        let back = detokenize(&tokens).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc";
        let tokens = tokenize(data);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        roundtrip(data);
    }

    #[test]
    fn overlapping_match_run() {
        let data = vec![0x55u8; 1000];
        let tokens = tokenize(&data);
        // A run should need very few tokens.
        assert!(tokens.len() < 20, "tokens={}", tokens.len());
        roundtrip(&data);
    }

    #[test]
    fn incompressible_input_roundtrips() {
        // Simple xorshift noise.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn bad_distance_rejected() {
        let tokens = [Token::Match { dist: 5, len: 3 }];
        assert!(detokenize(&tokens).is_err());
    }

    #[test]
    fn long_input_exceeding_window() {
        let mut data = Vec::new();
        for i in 0..(WINDOW * 2 + 1234) {
            data.push((i % 251) as u8);
        }
        roundtrip(&data);
    }
}
