//! LEB128-style unsigned variable-length integers.
//!
//! Seven payload bits per byte, little-endian groups, high bit = "more".
//! Used for container headers and Huffman table serialization.

/// Appends `v` to `out` in LEB128 form (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 value from `input` at `*pos`, advancing `*pos`.
/// Returns `None` on truncation or overlong (>10 byte) encodings.
#[must_use]
pub fn read_u64(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// ZigZag-maps a signed value so small magnitudes stay small, then LEB128s.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Inverse of [`write_i64`].
#[must_use]
pub fn read_i64(input: &[u8], pos: &mut usize) -> Option<i64> {
    let z = read_u64(input, pos)?;
    Some(((z >> 1) as i64) ^ -((z & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_representative_values() {
        for &v in &[0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn signed_roundtrip() {
        for &v in &[0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn small_values_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_u64(&buf[..buf.len() - 1], &mut pos), None);
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes can't be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }
}
