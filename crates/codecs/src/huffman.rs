//! Canonical Huffman coding over a `u32` symbol alphabet.
//!
//! The encoder builds an optimal prefix code from symbol frequencies
//! (length-limited to [`MAX_CODE_LEN`] by frequency clamping and a
//! Kraft-repair pass), converts it to *canonical* form, and serializes only
//! the code lengths — the decoder rebuilds identical codes from lengths
//! alone, which is how DEFLATE and SZ ship their dictionaries.

use bitio::{BitReader, BitWriter};

use crate::CodecError;

/// Maximum code length. 32 keeps codes in a `u32` and is far above the
/// entropy of any realistic quantization-code distribution.
pub const MAX_CODE_LEN: u32 = 32;

/// A built canonical Huffman code: per-symbol (code, length) pairs.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// `lengths[s]` = code length in bits for symbol `s` (0 = unused).
    lengths: Vec<u32>,
    /// `codes[s]` = canonical code for symbol `s`, MSB-first in the low
    /// `lengths[s]` bits.
    codes: Vec<u32>,
}

impl HuffmanCode {
    /// Builds a canonical code from symbol frequencies.
    ///
    /// `freqs[s]` is the occurrence count of symbol `s`; zero-frequency
    /// symbols get no code. Returns `None` if no symbol has a nonzero
    /// frequency.
    #[must_use]
    pub fn from_frequencies(freqs: &[u64]) -> Option<Self> {
        let n = freqs.len();
        let used: Vec<usize> = (0..n).filter(|&s| freqs[s] > 0).collect();
        if used.is_empty() {
            return None;
        }
        let mut lengths = vec![0u32; n];
        if used.len() == 1 {
            // A single symbol still needs one bit so the stream is framed.
            lengths[used[0]] = 1;
        } else {
            build_lengths(freqs, &used, &mut lengths);
            limit_lengths(&mut lengths, MAX_CODE_LEN);
        }
        let codes = assign_canonical(&lengths);
        Some(Self { lengths, codes })
    }

    /// Rebuilds the code from serialized lengths (the decoder-side entry).
    ///
    /// Fails if the lengths violate the Kraft inequality (not a prefix code).
    pub fn from_lengths(lengths: Vec<u32>) -> Result<Self, CodecError> {
        let mut kraft: u64 = 0;
        let mut any = false;
        for &l in &lengths {
            if l > MAX_CODE_LEN {
                return Err(CodecError::Corrupt("huffman code length > MAX_CODE_LEN"));
            }
            if l > 0 {
                any = true;
                kraft = kraft
                    .checked_add(1u64 << (MAX_CODE_LEN - l))
                    .ok_or(CodecError::Corrupt("huffman kraft overflow"))?;
            }
        }
        if !any {
            return Err(CodecError::Corrupt("huffman code with no symbols"));
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::Corrupt("huffman lengths violate Kraft inequality"));
        }
        let codes = assign_canonical(&lengths);
        Ok(Self { lengths, codes })
    }

    /// Number of symbols in the alphabet (including unused ones).
    #[must_use]
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }

    /// Per-symbol code lengths (0 = symbol unused).
    #[must_use]
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// Encoded size in bits of symbol `s`, or `None` if it has no code.
    #[must_use]
    pub fn symbol_cost(&self, s: usize) -> Option<u32> {
        match self.lengths.get(s) {
            Some(&l) if l > 0 => Some(l),
            _ => None,
        }
    }

    /// Appends the code for symbol `s` to `w`. Panics if `s` is unused
    /// (encoder bug, not data corruption).
    #[inline]
    pub fn encode_symbol(&self, s: usize, w: &mut BitWriter) {
        let len = self.lengths[s];
        assert!(len > 0, "encoding symbol {s} with no huffman code");
        w.write_bits(u64::from(self.codes[s]), len);
    }

    /// Serializes the code lengths (varint-packed) so the decoder can
    /// rebuild the table.
    pub fn write_table(&self, out: &mut Vec<u8>) {
        crate::varint::write_u64(out, self.lengths.len() as u64);
        // Run-length encode zeros since most alphabets are sparse.
        let mut i = 0;
        while i < self.lengths.len() {
            if self.lengths[i] == 0 {
                let start = i;
                while i < self.lengths.len() && self.lengths[i] == 0 {
                    i += 1;
                }
                // 0 marker then run length.
                crate::varint::write_u64(out, 0);
                crate::varint::write_u64(out, (i - start) as u64);
            } else {
                crate::varint::write_u64(out, u64::from(self.lengths[i]));
                i += 1;
            }
        }
    }

    /// Deserializes a table written by [`write_table`](Self::write_table).
    pub fn read_table(input: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let n = crate::varint::read_u64(input, pos)
            .ok_or(CodecError::Corrupt("huffman table truncated"))? as usize;
        if n > (1 << 28) {
            return Err(CodecError::Corrupt("huffman alphabet implausibly large"));
        }
        let mut lengths = Vec::with_capacity(n);
        while lengths.len() < n {
            let v = crate::varint::read_u64(input, pos)
                .ok_or(CodecError::Corrupt("huffman table truncated"))?;
            if v == 0 {
                let run = crate::varint::read_u64(input, pos)
                    .ok_or(CodecError::Corrupt("huffman table truncated"))?
                    as usize;
                if lengths.len() + run > n {
                    return Err(CodecError::Corrupt("huffman zero-run overflows table"));
                }
                lengths.resize(lengths.len() + run, 0);
            } else {
                lengths.push(v as u32);
            }
        }
        Self::from_lengths(lengths)
    }

    /// Builds a decoder for this code.
    #[must_use]
    pub fn decoder(&self) -> HuffmanDecoder {
        HuffmanDecoder::new(self)
    }
}

/// Canonical Huffman decoder using the limit/base table method
/// (per-length first-code comparison), O(code length) per symbol with no
/// large lookup tables.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `first_code[l]` = canonical code value of the first code of length l.
    first_code: Vec<u32>,
    /// `first_index[l]` = index into `symbols` of that first code.
    first_index: Vec<u32>,
    /// Count of codes per length.
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol) — canonical order.
    symbols: Vec<u32>,
    max_len: u32,
}

impl HuffmanDecoder {
    fn new(code: &HuffmanCode) -> Self {
        let max_len = code.lengths.iter().copied().max().unwrap_or(0);
        let mut count = vec![0u32; (max_len + 1) as usize];
        for &l in &code.lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut symbols: Vec<u32> = (0..code.lengths.len() as u32)
            .filter(|&s| code.lengths[s as usize] > 0)
            .collect();
        symbols.sort_by_key(|&s| (code.lengths[s as usize], s));

        let mut first_code = vec![0u32; (max_len + 2) as usize];
        let mut first_index = vec![0u32; (max_len + 2) as usize];
        let mut c = 0u32;
        let mut idx = 0u32;
        for l in 1..=max_len {
            first_code[l as usize] = c;
            first_index[l as usize] = idx;
            c = (c + count[l as usize]) << 1;
            idx += count[l as usize];
        }
        Self {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
        }
    }

    /// Decodes one symbol from `r`.
    #[inline]
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | u32::from(r.read_bit()?);
            let cnt = self.count[l as usize];
            if cnt > 0 {
                let first = self.first_code[l as usize];
                if code < first + cnt {
                    if code < first {
                        return Err(CodecError::Corrupt("huffman code underflow"));
                    }
                    let idx = self.first_index[l as usize] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(CodecError::Corrupt("invalid huffman code"))
    }
}

/// Standard two-queue Huffman length construction over the used symbols.
fn build_lengths(freqs: &[u64], used: &[usize], lengths: &mut [u32]) {
    // Node arena: leaves first, then internal nodes.
    #[derive(Clone, Copy)]
    struct Node {
        freq: u64,
        left: u32,
        right: u32, // u32::MAX for leaves
        symbol: u32,
    }
    let mut nodes: Vec<Node> = used
        .iter()
        .map(|&s| Node {
            freq: freqs[s],
            left: u32::MAX,
            right: u32::MAX,
            symbol: s as u32,
        })
        .collect();
    // Min-heap of (freq, node index). Tie-break on index for determinism.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..nodes.len() as u32)
        .map(|i| Reverse((nodes[i as usize].freq, i)))
        .collect();
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().unwrap();
        let Reverse((fb, b)) = heap.pop().unwrap();
        let idx = nodes.len() as u32;
        nodes.push(Node {
            freq: fa.saturating_add(fb),
            left: a,
            right: b,
            symbol: u32::MAX,
        });
        heap.push(Reverse((nodes[idx as usize].freq, idx)));
    }
    // Depth-first assignment of depths as code lengths.
    let root = heap.pop().unwrap().0 .1;
    let mut stack = vec![(root, 0u32)];
    while let Some((i, depth)) = stack.pop() {
        let node = nodes[i as usize];
        if node.right == u32::MAX {
            lengths[node.symbol as usize] = depth.max(1);
        } else {
            stack.push((node.left, depth + 1));
            stack.push((node.right, depth + 1));
        }
    }
}

/// Clamp code lengths to `max_len` and repair the Kraft sum
/// (the classic zlib-style length-limiting pass).
fn limit_lengths(lengths: &mut [u32], max_len: u32) {
    let mut overflow = false;
    for l in lengths.iter_mut() {
        if *l > max_len {
            *l = max_len;
            overflow = true;
        }
    }
    if !overflow {
        return;
    }
    // Kraft sum in units of 2^-max_len.
    let unit = |l: u32| 1u64 << (max_len - l);
    let mut kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit(l)).sum();
    let budget = 1u64 << max_len;
    // Demote (lengthen) the shortest over-budget codes until the sum fits.
    while kraft > budget {
        // Find a symbol with length < max_len whose lengthening frees
        // the most Kraft mass (i.e. the longest such length below max).
        let mut candidate: Option<usize> = None;
        for (s, &l) in lengths.iter().enumerate() {
            if l > 0 && l < max_len {
                match candidate {
                    None => candidate = Some(s),
                    Some(c) if lengths[c] < l => candidate = Some(s),
                    _ => {}
                }
            }
        }
        let s = candidate.expect("kraft repair impossible");
        kraft -= unit(lengths[s]) - unit(lengths[s] + 1);
        lengths[s] += 1;
    }
}

/// Assigns canonical codes: symbols sorted by (length, symbol index),
/// consecutive code values within a length.
fn assign_canonical(lengths: &[u32]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u32; (max_len + 1) as usize];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = vec![0u32; (max_len + 2) as usize];
    let mut c = 0u32;
    for l in 1..=max_len {
        next[l as usize] = c;
        c = (c + count[l as usize]) << 1;
    }
    let mut codes = vec![0u32; lengths.len()];
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    for s in order {
        let l = lengths[s] as usize;
        codes[s] = next[l];
        next[l] += 1;
    }
    codes
}

/// Convenience: Huffman-encode a symbol stream, producing a
/// self-describing byte buffer (table + payload).
pub fn encode_stream(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    let mut freqs = vec![0u64; alphabet];
    for &s in symbols {
        freqs[s as usize] += 1;
    }
    let mut out = Vec::new();
    crate::varint::write_u64(&mut out, symbols.len() as u64);
    if symbols.is_empty() {
        return out;
    }
    let code = HuffmanCode::from_frequencies(&freqs).expect("nonempty stream");
    code.write_table(&mut out);
    let mut w = BitWriter::new();
    for &s in symbols {
        code.encode_symbol(s as usize, &mut w);
    }
    let payload = w.into_bytes();
    crate::varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Inverse of [`encode_stream`]. Returns the decoded symbols and the number
/// of input bytes consumed.
pub fn decode_stream(input: &[u8]) -> Result<(Vec<u32>, usize), CodecError> {
    let mut pos = 0usize;
    let n = crate::varint::read_u64(input, &mut pos)
        .ok_or(CodecError::Corrupt("stream header truncated"))? as usize;
    if n == 0 {
        return Ok((Vec::new(), pos));
    }
    let code = HuffmanCode::read_table(input, &mut pos)?;
    let plen = crate::varint::read_u64(input, &mut pos)
        .ok_or(CodecError::Corrupt("payload length truncated"))? as usize;
    let payload = input
        .get(pos..pos + plen)
        .ok_or(CodecError::Corrupt("payload truncated"))?;
    // Each symbol costs at least one bit of payload.
    if n > payload.len().saturating_mul(8) {
        return Err(CodecError::Corrupt("declared symbol count exceeds payload"));
    }
    let dec = code.decoder();
    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.decode_symbol(&mut r)?);
    }
    Ok((out, pos + plen))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symbol_stream() {
        let syms = vec![7u32; 100];
        let enc = encode_stream(&syms, 16);
        let (dec, _) = decode_stream(&enc).unwrap();
        assert_eq!(dec, syms);
        // 100 one-bit codes -> ~13 bytes payload, plus small table.
        assert!(enc.len() < 40, "len={}", enc.len());
    }

    #[test]
    fn empty_stream() {
        let enc = encode_stream(&[], 4);
        let (dec, used) = decode_stream(&enc).unwrap();
        assert!(dec.is_empty());
        assert_eq!(used, enc.len());
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros, a tail of larger codes — the SZ quantization shape.
        let mut syms = Vec::new();
        for i in 0..10_000u32 {
            syms.push(if i % 10 == 0 { 1 + (i % 7) } else { 0 });
        }
        let enc = encode_stream(&syms, 8);
        let (dec, _) = decode_stream(&enc).unwrap();
        assert_eq!(dec, syms);
        // Entropy ~0.8 bits/symbol; allow generous slack.
        assert!(enc.len() < 10_000 / 4, "len={}", enc.len());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = [5u64, 9, 12, 13, 16, 45, 0, 3];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let used: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
        for &a in &used {
            for &b in &used {
                if a == b {
                    continue;
                }
                let (la, lb) = (code.lengths[a], code.lengths[b]);
                let (ca, cb) = (code.codes[a], code.codes[b]);
                let l = la.min(lb);
                assert_ne!(ca >> (la - l), cb >> (lb - l), "prefix collision {a},{b}");
            }
        }
    }

    #[test]
    fn table_roundtrip() {
        let freqs = [1u64, 0, 0, 100, 2, 0, 0, 0, 0, 50];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut buf = Vec::new();
        code.write_table(&mut buf);
        let mut pos = 0;
        let back = HuffmanCode::read_table(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back.lengths(), code.lengths());
    }

    #[test]
    fn rejects_bad_lengths() {
        // Kraft violation: three codes of length 1.
        assert!(HuffmanCode::from_lengths(vec![1, 1, 1]).is_err());
        assert!(HuffmanCode::from_lengths(vec![0, 0]).is_err());
        assert!(HuffmanCode::from_lengths(vec![MAX_CODE_LEN + 1]).is_err());
    }

    #[test]
    fn optimality_on_known_distribution() {
        // Classic example: frequencies 45,13,12,16,9,5 -> expected lengths
        // {45:1, 16:3, 13:3, 12:3, 9:4, 5:4} (total weighted 224 bits/100).
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let total: u64 = freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * u64::from(code.lengths[s]))
            .sum();
        assert_eq!(total, 224);
    }
}
