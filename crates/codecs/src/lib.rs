//! Entropy and dictionary coding substrates.
//!
//! These are the general-purpose coding blocks the baseline compressors are
//! built from:
//!
//! * [`huffman`] — canonical Huffman coding over `u32` symbol alphabets,
//!   used by the SZ-style baseline to entropy-code quantization codes and by
//!   the DEFLATE-like lossless codec.
//! * [`lzss`] — byte-oriented LZSS (sliding-window dictionary) used by the
//!   lossless baseline.
//! * [`varint`] — LEB128-style variable-length integers, used in container
//!   headers.
//! * [`rle`] — run-length coding for long zero runs.
//!
//! PaSTRI itself deliberately does *not* use Huffman coding (Sec. IV-C of
//! the paper explains why: dictionary cost, huge sparse alphabets, and the
//! serialization it would force). These codecs exist so that the SZ and
//! DEFLATE baselines are real implementations rather than stubs.

pub mod huffman;
pub mod lzss;
pub mod rle;
pub mod varint;

/// Errors shared by the codecs in this crate.
#[derive(Debug)]
pub enum CodecError {
    /// The compressed stream ended prematurely or contains an invalid code.
    Corrupt(&'static str),
    /// Bit-level read failure.
    BitRead(bitio::ReadError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            CodecError::BitRead(e) => write!(f, "bit read failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<bitio::ReadError> for CodecError {
    fn from(e: bitio::ReadError) -> Self {
        CodecError::BitRead(e)
    }
}
