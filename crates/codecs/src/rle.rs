//! Zero-run-length coding for sparse integer streams.
//!
//! Encodes a `&[i64]` as alternating (zero-run-length, nonzero-value)
//! varint records. Used where long zero runs dominate (e.g. quantized
//! error-correction streams in ablation experiments).

use crate::varint;
use crate::CodecError;

/// Encodes `values` into `out`.
pub fn encode(values: &[i64], out: &mut Vec<u8>) {
    varint::write_u64(out, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let run_start = i;
        while i < values.len() && values[i] == 0 {
            i += 1;
        }
        varint::write_u64(out, (i - run_start) as u64);
        if i < values.len() {
            varint::write_i64(out, values[i]);
            i += 1;
        }
    }
}

/// Decodes a stream produced by [`encode`].
pub fn decode(input: &[u8], pos: &mut usize) -> Result<Vec<i64>, CodecError> {
    let n = varint::read_u64(input, pos).ok_or(CodecError::Corrupt("rle header"))? as usize;
    if n > (1 << 34) {
        return Err(CodecError::Corrupt("rle output implausibly large"));
    }
    let mut out = Vec::with_capacity(n.min(1 << 20));
    while out.len() < n {
        let run = varint::read_u64(input, pos).ok_or(CodecError::Corrupt("rle run"))? as usize;
        if out.len() + run > n {
            return Err(CodecError::Corrupt("rle run overflows length"));
        }
        out.resize(out.len() + run, 0);
        if out.len() < n {
            let v = varint::read_i64(input, pos).ok_or(CodecError::Corrupt("rle value"))?;
            out.push(v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64]) {
        let mut buf = Vec::new();
        encode(values, &mut buf);
        let mut pos = 0;
        let back = decode(&buf, &mut pos).unwrap();
        assert_eq!(back, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn basic_cases() {
        roundtrip(&[]);
        roundtrip(&[0, 0, 0, 0]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[0, 0, 5, 0, -7, 0, 0, 0, 1]);
        roundtrip(&[i64::MAX, i64::MIN, 0]);
    }

    #[test]
    fn sparse_stream_is_small() {
        let mut values = vec![0i64; 10_000];
        values[137] = 42;
        values[9_999] = -1;
        let mut buf = Vec::new();
        encode(&values, &mut buf);
        assert!(buf.len() < 20, "len={}", buf.len());
    }

    #[test]
    fn trailing_zero_run() {
        roundtrip(&[7, 0, 0, 0, 0, 0]);
    }
}
