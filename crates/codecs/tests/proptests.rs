//! Property tests: every codec round-trips arbitrary inputs exactly.

use codecs::{huffman, lzss, rle, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_u64(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_i64(&buf, &mut pos), Some(v));
    }

    #[test]
    fn huffman_roundtrip(symbols in proptest::collection::vec(0u32..64, 0..2000)) {
        let enc = huffman::encode_stream(&symbols, 64);
        let (dec, used) = huffman::decode_stream(&enc).unwrap();
        prop_assert_eq!(dec, symbols);
        prop_assert_eq!(used, enc.len());
    }

    #[test]
    fn huffman_never_beats_entropy_floor(
        symbols in proptest::collection::vec(0u32..16, 100..1000)
    ) {
        // Shannon lower bound on payload bits (table overhead excluded).
        let mut freqs = [0u64; 16];
        for &s in &symbols { freqs[s as usize] += 1; }
        let n = symbols.len() as f64;
        let entropy_bits: f64 = freqs.iter().filter(|&&f| f > 0).map(|&f| {
            let p = f as f64 / n;
            -(p.log2()) * f as f64
        }).sum();
        let code = huffman::HuffmanCode::from_frequencies(&freqs).unwrap();
        let coded_bits: u64 = symbols.iter()
            .map(|&s| u64::from(code.symbol_cost(s as usize).unwrap()))
            .sum();
        // Optimal prefix code is within 1 bit/symbol of entropy, and never below it
        // (up to the 1-bit minimum per symbol).
        prop_assert!((coded_bits as f64) + 1e-6 >= entropy_bits.floor());
        prop_assert!((coded_bits as f64) <= entropy_bits + n + 1.0);
    }

    #[test]
    fn lzss_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let tokens = lzss::tokenize(&data);
        let back = lzss::detokenize(&tokens).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn lzss_roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
        let tokens = lzss::tokenize(&data);
        let back = lzss::detokenize(&tokens).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn rle_roundtrip(values in proptest::collection::vec(-100i64..100, 0..2000)) {
        let mut buf = Vec::new();
        rle::encode(&values, &mut buf);
        let mut pos = 0;
        let back = rle::decode(&buf, &mut pos).unwrap();
        prop_assert_eq!(back, values);
    }
}
