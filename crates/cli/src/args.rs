//! Dependency-free `--key value` argument parsing.

use crate::CliError;

/// Parsed positional arguments and flags.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: Vec<(String, String)>,
    /// Flags present without a value (e.g. `--model`).
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv`: positionals anywhere, `--key value` pairs, and
    /// bare `--switch`es (a `--key` followed by another `--...` or end).
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err(CliError::new("empty flag `--`"));
                }
                match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        args.flags.push((key.to_string(), v.clone()));
                        i += 2;
                    }
                    _ => {
                        args.switches.push(key.to_string());
                        i += 1;
                    }
                }
            } else {
                args.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Positional argument `idx` or an error naming it.
    pub fn positional(&self, idx: usize, name: &str) -> Result<&str, CliError> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| CliError::new(format!("missing <{name}> argument")))
    }

    /// String flag value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable flag, in order (e.g.
    /// `--replica a --replica b`).
    #[must_use]
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Boolean switch presence.
    #[must_use]
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|k| k == key)
    }

    /// Parsed numeric flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("--{key}: `{v}` is not a number"))),
        }
    }

    /// Parsed integer flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("--{key}: `{v}` is not an integer"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        let v: Vec<String> = words.iter().map(|s| (*s).to_string()).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = parse(&["in.f64", "--eb", "1e-9", "out.bin", "--model"]);
        assert_eq!(a.positional, vec!["in.f64", "out.bin"]);
        assert_eq!(a.get("eb"), Some("1e-9"));
        assert!(a.switch("model"));
        assert!(!a.switch("eb"));
    }

    #[test]
    fn last_flag_wins() {
        let a = parse(&["--eb", "1", "--eb", "2"]);
        assert_eq!(a.get("eb"), Some("2"));
    }

    #[test]
    fn numeric_parsing() {
        let a = parse(&["--eb", "1e-10", "--blocks", "42"]);
        assert_eq!(a.get_f64("eb", 0.0).unwrap(), 1e-10);
        assert_eq!(a.get_usize("blocks", 0).unwrap(), 42);
        assert_eq!(a.get_f64("missing", 7.5).unwrap(), 7.5);
        let bad = parse(&["--eb", "--x"]); // eb becomes a switch
        assert_eq!(bad.get_f64("eb", 3.0).unwrap(), 3.0);
    }

    #[test]
    fn bad_number_is_error() {
        let a = parse(&["--eb", "abc"]);
        assert!(a.get_f64("eb", 0.0).is_err());
    }

    #[test]
    fn missing_positional_reports_name() {
        let a = parse(&["only-one"]);
        let err = a.positional(1, "output").unwrap_err();
        assert!(err.message.contains("output"));
    }
}
