//! The `pastri` command-line tool. See `pastri help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = pastri_cli::run(&argv, &mut stdout) {
        eprintln!("error: {e}");
        // 1 = I/O or usage error, 2 = corruption found (see `pastri help`).
        std::process::exit(e.code);
    }
}
