//! Library backing the `pastri` command-line tool.
//!
//! Subcommands (see [`run`]):
//!
//! * `compress`   — raw little-endian f64 file → PaSTRI container
//! * `decompress` — PaSTRI container → raw f64 file
//! * `inspect`    — print container metadata and per-block-kind census
//! * `verify`     — integrity-scan a container/stream/store; non-zero
//!   exit with a per-block damage report when anything is corrupt
//! * `scrub`      — classify damage as repairable/unrepairable; with
//!   `--repair`, heal it in place from the containers' parity sections
//! * `salvage`    — rewrite a damaged stream, repairing what parity
//!   covers and keeping intact segments
//! * `gen`        — generate an ERI dataset file (GAMESS stand-in)
//! * `assess`     — compare an original and a decompressed file
//! * `report`     — re-render a saved `--telemetry json` capture as the
//!   human-readable summary tree
//! * `serve`      — mount ERI stores behind the sharded cache server and
//!   serve a batched block read, or expose them over the PTRF wire
//!   protocol with `--listen`
//! * `fetch`      — read blocks from a `serve --listen` endpoint with
//!   deadlines, bounded retry, and hedged replica failover
//! * `top`        — live dashboard over a serving endpoint: polls
//!   telemetry snapshots and prints rates, cache hit rate, latency
//!   percentiles, admission and journal state per tick
//! * `trace`      — merge telemetry JSON-lines exports from different
//!   processes into one Chrome trace joined on shared trace ids
//! * `bench-server` — seeded traffic replay against the cache server,
//!   emitting BENCH_server.json
//!
//! The argument parser is deliberately dependency-free: flags are
//! `--key value` pairs after the subcommand, positional paths first.

pub mod args;
pub mod commands;

use std::fmt;

/// CLI failure: message plus the process exit code to use.
///
/// Exit codes are part of the CLI contract (scripts gate on them):
///
/// * `0` — success, artifact clean
/// * `1` — I/O or usage error (missing file, bad flag, unknown format)
/// * `2` — corruption found in a recognized PaSTRI artifact
///   (`verify`/`decompress` hit damage, `scrub` could not fully repair,
///   `salvage` had to drop segments, or `soak` lost data / violated an
///   SLO gate)
#[derive(Debug)]
pub struct CliError {
    pub message: String,
    pub code: i32,
}

impl CliError {
    /// An I/O or usage error (exit code 1).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }

    /// Damage found in a recognized artifact (exit code 2).
    #[must_use]
    pub fn corruption(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(format!("I/O error: {e}"))
    }
}

/// Entry point shared by the binary and the tests: parses `argv` (without
/// the program name) and executes. Output goes to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::new(usage()));
    };
    match cmd.as_str() {
        "compress" => commands::compress(rest, out),
        "decompress" => commands::decompress(rest, out),
        "inspect" => commands::inspect(rest, out),
        "verify" => commands::verify(rest, out),
        "scrub" => commands::scrub(rest, out),
        "salvage" => commands::salvage(rest, out),
        "gen" => commands::generate(rest, out),
        "assess" => commands::assess(rest, out),
        "report" => commands::report(rest, out),
        "soak" => commands::soak_cmd(rest, out),
        "serve" => commands::serve(rest, out),
        "fetch" => commands::fetch(rest, out),
        "top" => commands::top(rest, out),
        "trace" => commands::trace_cmd(rest, out),
        "bench-server" => commands::bench_server(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage())?;
            Ok(())
        }
        other => Err(CliError::new(format!(
            "unknown subcommand `{other}`\n{}",
            usage()
        ))),
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> &'static str {
    "pastri — error-bounded lossy compression for two-electron integrals

USAGE:
  pastri compress   <in.f64> <out.pastri> --config (dd|dd) --eb 1e-10
                    [--metric ER] [--tree 5] [--stream [--segment-blocks 64]
                    [--checkpoint-every 16] [--resume]]
  pastri decompress <in.pastri> <out.f64>
  pastri inspect    <in.pastri>
  pastri verify     <file>            (container, stream, or ERI store)
  pastri scrub      <file> [--repair] (heal damage in place from parity)
  pastri salvage    <in.pstrs> <out.pstrs>
  pastri gen        <out.f64> --molecule benzene --config (dd|dd)
                    [--blocks 100] [--seed 0] [--cluster 1] [--model]
  pastri assess     <original.f64> <decompressed.f64>
  pastri report     <telemetry.jsonl>
  pastri soak       <dir> [--seed 42] [--ops 120] [--stores 4] [--scale 12]
                    [--seconds S] [--bench-out BENCH_soak.json] [--keep]
                    [--transport [--overload] [--replicas N] [--clients N]
                     [--requests N] [--shed-every N] [--breaker-threshold N]
                     [--slo-max-shed-rate F] [--slo-queue-wait-p99-us N]
                     [--slo-max-breaker-opened N]]
  pastri serve      <store.eristore>... [--blocks 0,3,7-9] [--out raw.f64]
                    [--shards 4] [--cache-mb 8] [--cache-shards 8]
                    [--listen (tcp:HOST:PORT|unix:PATH) [--serve-conns N]]
  pastri fetch      <endpoint> [--replica ENDPOINT]... [--blocks 0,3,7-9]
                    [--out raw.f64] [--deadline-ms 5000] [--attempt-ms 1000]
                    [--retries 8] [--seed N] [--stats]
  pastri top        <endpoint> [--interval-ms 1000] [--count N]
                    [--once] [--json] [--deadline-ms 2000]
  pastri trace      --merge <a.jsonl> <b.jsonl>... [--out merged.json]
  pastri bench-server <store.eristore> [--gen-blocks N] [--seed 42]
                    [--clients 4] [--requests 256] [--max-batch 8]
                    [--skew 3.0] [--shards 4] [--cache-mb 8]
                    [--bench-out BENCH_server.json]

FLAGS:
  --config   BF configuration, e.g. '(dd|dd)', '(ff|ff)', 'fdff'
  --eb       absolute error bound (default 1e-10)
  --metric   FR | ER | AR | AAR | IS        (default ER)
  --tree     1..5 or 'fixed'                (default 5)
  --molecule benzene | glutamine | alanine
  --cluster  tile N copies at 4.5 A (production-scale far-field mix)
  --model    use the fast Eq.-3 far-field model generator

TELEMETRY (compress, decompress, scrub):
  --telemetry <summary|json|chrome>  capture spans, counters, and stage
             timings for the run: `summary` prints a human-readable tree,
             `json` emits one JSON object per line (re-render later with
             `pastri report`), `chrome` emits a Chrome trace-event file
             (load in chrome://tracing or Perfetto).
  --telemetry-out FILE  write the capture to FILE instead of stdout.

DURABILITY (streamed compression):
  --stream writes durably: segments are fsync'd in batches and sealed by
  a <out>.journal checkpoint record; the journal is removed on success.
  --checkpoint-every N   segments per durable batch (default 16)
  --resume               continue an interrupted --stream run: loads the
                         last checkpoint, discards the torn tail, skips
                         the already-committed input, and finishes
                         byte-identical to an uninterrupted run. Pass
                         the same flags as the interrupted run.

SOAK (deterministic fault-storm harness with SLO gates):
  `pastri soak` runs a seeded mixed workload (reads with repair-on-read,
  container/stream/durable writes, scrubs, crash/resume) across many
  stores concurrently while injecting bit-flip SDC, torn-write kills,
  and transient read errors. For a fixed --seed and --ops budget the
  op/fault tallies are bit-identical at any thread count. At the end it
  verifies zero data loss and evaluates the configured SLO gates.
  --ops N / --seconds S       op-count or wall-clock budget
  --stores N / --scale N      concurrency and blocks-per-store knobs
  --read-weight --container-weight --stream-weight --crash-weight
  --scrub-weight              op-mix weights (default 6/1/2/1/2)
  --bit-flip-every N --flips-per-event K --torn-every N
  --transient-rate P          fault schedule (0 disables a class)
  --slo-read-p99-us N --slo-min-repair-success F
  --slo-max-quarantined N --slo-max-resident-values N   SLO gates
  --bench-out FILE            machine-readable report (BENCH_soak.json)

CACHE SERVER (`serve` / `bench-server`):
  `pastri serve` mounts one or more stores (shared geometry and error
  bound) as one global block index space behind shard-parallel readers
  and a byte-budgeted hot-block cache, then serves the requested blocks
  in order (all blocks when --blocks is omitted). `pastri bench-server`
  replays a seeded Zipf-ish workload against the same server: for a
  fixed --seed the report's `tallies` line (requests, blocks, bytes,
  value signature) is bit-identical at any thread count, while `cache`
  and `timing` carry the scheduling-dependent hit rate and latency
  percentiles. --gen-blocks N synthesizes the store first.

REMOTE SERVING (`serve --listen` / `fetch`):
  `pastri serve --listen tcp:127.0.0.1:7421` (or `unix:/path.sock`)
  exposes the mounted server over the CRC32-framed PTRF protocol;
  `--serve-conns N` exits cleanly after N connections (one-shot jobs,
  tests). `pastri fetch tcp:HOST:PORT` reads blocks remotely under a
  whole-call deadline with bounded seeded-jitter retry; each extra
  `--replica` endpoint (serving the same dataset) joins the hedged
  failover rotation, so a dead or stalling replica costs one attempt,
  not the deadline. Corrupt frames or blocks that outlive the retry
  budget exit 2; unreachable endpoints and blown deadlines exit 1.

LIVE OBSERVABILITY (DESIGN §15):
  A v3 `serve --listen` endpoint answers TelemetrySnapshot scrape
  frames (full counters, gauges, 32-bucket histograms, and the bounded
  event journal) admitted at priority >= 1, so scrapes survive
  overload. `pastri top <endpoint>` polls those snapshots and prints
  requests/s, cache hit rate, read p50/p99, in-flight, shed rate, and
  drain state per tick (`--once --json` for scripts). Every `fetch`
  carries a seeded trace id on the wire; the server adopts it into its
  own spans, and `pastri trace --merge client.jsonl server.jsonl`
  joins the two exports into one cross-process Chrome timeline.

OVERLOAD PROTECTION (DESIGN §14):
  The server admits requests through a permit budget (global, per-conn,
  and response-bytes); a request whose estimated queue wait exceeds its
  carried deadline budget is shed *immediately* with an `Overloaded`
  frame carrying a retry-after hint — never a silent timeout. The
  client treats `Overloaded` as a backoff signal (exit 1, distinct from
  frame corruption's exit 2) and runs a per-endpoint circuit breaker
  (open -> half-open probe -> close) that steers hedged failover away
  from saturated replicas. `fetch --stats` prints both sides: server
  admitted/shed/refused-draining and client breaker transitions, so
  shed-at-server is distinguishable from failed-at-client. `pastri soak
  <dir> --transport --overload` drives a seeded overload storm (forced
  sheds + slow handlers, pure function of --seed) and gates on shed
  rate, queue-wait p99, and breaker-transition counts; the run ends in
  a graceful drain whose books prove no admitted request was dropped.

SELF-HEALING:
  Containers carry Reed-Solomon parity by default (v3): up to 2 damaged
  blocks per group of 8 rebuild bit-exact. `verify` classifies damage as
  repairable/unrepairable; `scrub --repair` heals repairable damage in
  place (atomic rewrite), quarantining the damaged original at
  <file>.quarantine when anything is beyond the parity budget.

EXIT CODES:
  0  success / artifact clean / scrub fully repaired in place
  1  I/O or usage error (missing file, bad flag, unknown format)
  2  corruption found (verify found damage; decompress hit damage in a
     recognized artifact; scrub could not fully repair, or found damage
     without --repair; salvage dropped data; soak lost data or violated
     an SLO gate; serve/bench-server hit a block beyond the parity
     budget; fetch saw corrupt frames or blocks past the retry budget)"
}
