//! Subcommand implementations.

use std::fs;
use std::io::Write;

use pastri::{BlockGeometry, Compressor, CompressorOptions, EncodingTree, ScalingMetric};
use qchem::basis::BfConfig;
use qchem::dataset::{DatasetSpec, EriDataset};
use qchem::molecule::Molecule;

use crate::args::Args;
use crate::CliError;

/// Which telemetry exporter `--telemetry` selected.
#[derive(Debug, Clone, Copy)]
enum TelemetryFormat {
    Summary,
    Json,
    Chrome,
}

/// Active telemetry capture for one CLI command: created by
/// [`telemetry_capture`] (which resets and enables the global recorder),
/// finished by [`TelemetryCapture::finish`] (snapshot → export →
/// disable). Dropping without `finish` (error paths) still disables the
/// recorder so no cross-command state leaks.
struct TelemetryCapture {
    format: TelemetryFormat,
    out_path: Option<String>,
}

impl Drop for TelemetryCapture {
    fn drop(&mut self) {
        telemetry::set_enabled(false);
    }
}

/// Parses `--telemetry <summary|json|chrome>` and `--telemetry-out FILE`.
/// When present, resets and enables the global recorder so the command's
/// whole run is captured.
fn telemetry_capture(args: &Args) -> Result<Option<TelemetryCapture>, CliError> {
    let Some(fmt) = args.get("telemetry") else {
        return Ok(None);
    };
    let format = match fmt {
        "summary" => TelemetryFormat::Summary,
        "json" => TelemetryFormat::Json,
        "chrome" => TelemetryFormat::Chrome,
        other => {
            return Err(CliError::new(format!(
                "--telemetry: unknown format `{other}` (expected summary, json, or chrome)"
            )))
        }
    };
    let out_path = args.get("telemetry-out").map(str::to_owned);
    telemetry::reset();
    telemetry::set_enabled(true);
    Ok(Some(TelemetryCapture { format, out_path }))
}

impl TelemetryCapture {
    /// Disables the recorder, renders the captured snapshot, and writes
    /// it to `--telemetry-out` (or `out` when no file was given). A
    /// truncated span buffer is warned about on the CLI output either
    /// way — a capture silently missing records is worse than a noisy
    /// one.
    fn finish(self, out: &mut dyn Write) -> Result<(), CliError> {
        telemetry::set_enabled(false);
        let snap = telemetry::snapshot();
        if let Some(warning) = span_drop_warning(&snap) {
            writeln!(out, "{warning}")?;
        }
        let text = match self.format {
            TelemetryFormat::Summary => telemetry::export::summary(&snap),
            TelemetryFormat::Json => telemetry::export::json_lines(&snap),
            TelemetryFormat::Chrome => telemetry::export::chrome(&snap),
        };
        match &self.out_path {
            Some(path) => fs::write(path, text)
                .map_err(|e| CliError::new(format!("writing {path}: {e}")))?,
            None => out.write_all(text.as_bytes())?,
        }
        Ok(())
    }
}

/// The CLI warning for a capture whose span buffer overflowed, or `None`
/// when nothing was dropped. Only the span/event *timeline* is
/// incomplete past the cap — counters, gauges, and histograms keep
/// recording, so derived numbers (latency gates, fsync counts) stay
/// trustworthy.
fn span_drop_warning(snap: &telemetry::Snapshot) -> Option<String> {
    (snap.spans_dropped > 0).then(|| {
        format!(
            "warning: {} telemetry span/event record(s) dropped at the {}-record buffer cap; \
             the span timeline is incomplete (counters and histograms remain complete)",
            snap.spans_dropped,
            telemetry::span_capacity(),
        )
    })
}

/// Reads a raw little-endian f64 file.
fn read_f64_file(path: &str) -> Result<Vec<f64>, CliError> {
    let bytes = fs::read(path).map_err(|e| CliError::new(format!("reading {path}: {e}")))?;
    if bytes.len() % 8 != 0 {
        return Err(CliError::new(format!(
            "{path}: length {} is not a multiple of 8 (expected raw f64)",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Writes a raw little-endian f64 file atomically (temp + fsync +
/// rename): a crash mid-write never leaves a half-written artifact.
fn write_f64_file(path: &str, values: &[f64]) -> Result<(), CliError> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    durable::atomic_write(std::path::Path::new(path), &bytes)
        .map_err(|e| CliError::new(format!("writing {path}: {e}")))
}

fn parse_config(args: &Args) -> Result<BfConfig, CliError> {
    let raw = args
        .get("config")
        .ok_or_else(|| CliError::new("--config is required (e.g. --config '(dd|dd)')"))?;
    BfConfig::parse(raw)
        .ok_or_else(|| CliError::new(format!("--config: `{raw}` is not a BF configuration")))
}

fn parse_options(args: &Args) -> Result<CompressorOptions, CliError> {
    let metric = match args.get("metric").unwrap_or("ER").to_ascii_uppercase().as_str() {
        "FR" => ScalingMetric::Fr,
        "ER" => ScalingMetric::Er,
        "AR" => ScalingMetric::Ar,
        "AAR" => ScalingMetric::Aar,
        "IS" => ScalingMetric::Is,
        other => return Err(CliError::new(format!("--metric: unknown metric `{other}`"))),
    };
    let tree = match args.get("tree").unwrap_or("5") {
        "1" => EncodingTree::Tree1,
        "2" => EncodingTree::Tree2,
        "3" => EncodingTree::Tree3,
        "4" => EncodingTree::Tree4,
        "5" => EncodingTree::Tree5,
        "fixed" => EncodingTree::FixedLength,
        other => return Err(CliError::new(format!("--tree: unknown tree `{other}`"))),
    };
    Ok(CompressorOptions {
        metric,
        tree,
        ..Default::default()
    })
}

/// `pastri compress <in.f64> <out.pastri> --config ... [--eb ...]
/// [--threads N] [--stream [--segment-blocks B] [--checkpoint-every N]
/// [--resume]]`.
pub fn compress(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    let input = args.positional(0, "in.f64")?;
    let output = args.positional(1, "out.pastri")?;
    let config = parse_config(&args)?;
    let eb = args.get_f64("eb", 1e-10)?;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(CliError::new("--eb must be finite and > 0"));
    }
    // 0 = auto (RAYON_NUM_THREADS, then available parallelism). Output is
    // byte-identical at every thread count.
    let threads = args.get_usize("threads", 0)?;
    let compressor = Compressor::with_options(
        BlockGeometry::from_dims(config.dims()),
        eb,
        parse_options(&args)?,
    );
    if args.switch("stream") {
        // Bounded-memory, crash-safe path: read/compress/write segment
        // by segment through a durable writer that fsyncs checkpointed
        // batches and seals each in a `<out>.journal` record. `--resume`
        // picks an interrupted run back up at its last checkpoint.
        let segment_blocks = args.get_usize("segment-blocks", 64)?.max(1);
        let checkpoint_every = args.get_usize("checkpoint-every", 16)?.max(1);
        let resume = args.switch("resume");
        let run = || -> Result<(u64, u64), CliError> {
            let out_path = std::path::Path::new(output);
            let mut writer = if resume {
                pastri::durable_stream::DurableFileWriter::resume(
                    out_path,
                    compressor,
                    segment_blocks,
                    checkpoint_every,
                )
            } else {
                pastri::durable_stream::DurableFileWriter::create(
                    out_path,
                    compressor,
                    segment_blocks,
                    checkpoint_every,
                )
            }
            .map_err(|e| CliError::new(format!("{output}: {e}")))?;
            // Values already durable from the interrupted run: skip them
            // in the input so the finished stream is byte-identical to
            // an uninterrupted one.
            let skipped = writer.checkpoint().values;
            let mut infile =
                fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
            if skipped > 0 {
                use std::io::Seek;
                infile
                    .seek(std::io::SeekFrom::Start(skipped * 8))
                    .map_err(|e| CliError::new(format!("{input}: {e}")))?;
            }
            let mut reader = std::io::BufReader::new(infile);
            let mut buf = vec![0u8; config.block_size() * 8];
            let mut total_in = skipped * 8;
            loop {
                let n = read_chunk(&mut reader, &mut buf)?;
                if n == 0 {
                    break;
                }
                if n % 8 != 0 {
                    return Err(CliError::new(format!(
                        "{input}: length is not a multiple of 8 (raw f64 expected)"
                    )));
                }
                let values: Vec<f64> = buf[..n]
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                total_in += n as u64;
                writer.write_values(&values)?;
            }
            writer.finish()?;
            Ok((total_in, skipped))
        };
        // `--threads N` pins the batch-compression crew; 0 = auto.
        let (total_in, skipped) = if threads > 0 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| CliError::new(format!("thread pool: {e}")))?;
            pool.install(run)?
        } else {
            run()?
        };
        let out_len = fs::metadata(output)?.len();
        let resumed = if skipped > 0 {
            format!(", resumed at value {skipped}")
        } else {
            String::new()
        };
        writeln!(
            out,
            "{input} -> {output} (streamed, durable{resumed}): {total_in} -> {out_len} bytes (ratio {:.2}x, EB {eb:.1e})",
            total_in as f64 / out_len as f64
        )?;
        if let Some(t) = telem {
            t.finish(out)?;
        }
        return Ok(());
    }
    let data = read_f64_file(input)?;
    let (bytes, stats) = if threads > 0 {
        // Pin the in-memory fan-out's crew size for this compression.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| CliError::new(format!("thread pool: {e}")))?;
        pool.install(|| compressor.compress_with_stats(&data))
    } else {
        compressor.compress_with_stats(&data)
    };
    durable::atomic_write(std::path::Path::new(output), &bytes)
        .map_err(|e| CliError::new(format!("writing {output}: {e}")))?;
    writeln!(
        out,
        "{} -> {}: {} -> {} bytes (ratio {:.2}x, {:.2} bits/value, EB {:.1e})",
        input,
        output,
        data.len() * 8,
        bytes.len(),
        stats.compression_ratio(),
        stats.bitrate(),
        eb
    )?;
    if let Some(t) = telem {
        t.finish(out)?;
    }
    Ok(())
}

/// Fills `buf` as far as possible; returns bytes read (0 at EOF).
fn read_chunk(r: &mut impl std::io::Read, buf: &mut [u8]) -> Result<usize, CliError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r
            .read(&mut buf[filled..])
            .map_err(|e| CliError::new(format!("read error: {e}")))?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// `pastri decompress <in.pastri> <out.f64>`.
pub fn decompress(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    let input = args.positional(0, "in.pastri")?;
    let output = args.positional(1, "out.f64")?;
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    // Auto-detect the streamed ("PSTRS") vs single-container ("PSTR")
    // format by magic. A decode failure in a file that carries a PaSTRI
    // magic is corruption in a recognized artifact (exit 2); anything
    // else is a format/usage error (exit 1).
    let recognized = bytes.starts_with(b"PSTR");
    let decode_err = |msg: String| {
        if recognized {
            CliError::corruption(msg)
        } else {
            CliError::new(msg)
        }
    };
    let values = if bytes.starts_with(b"PSTRS") {
        pastri::stream::StreamReader::new(bytes.as_slice())
            .and_then(pastri::stream::StreamReader::read_to_vec)
            .map_err(|e| decode_err(format!("{input}: {e}")))?
    } else {
        pastri::decompress(&bytes).map_err(|e| decode_err(format!("{input}: {e}")))?
    };
    write_f64_file(output, &values)?;
    writeln!(
        out,
        "{} -> {}: {} values ({} bytes)",
        input,
        output,
        values.len(),
        values.len() * 8
    )?;
    if let Some(t) = telem {
        t.finish(out)?;
    }
    Ok(())
}

/// `pastri inspect <in.pastri>`: header metadata + per-kind block census
/// via the cheap O(blocks) inspection API — no value is decoded.
pub fn inspect(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "in.pastri")?;
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    let info = pastri::inspect(&bytes).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    writeln!(
        out,
        "{input}: valid PaSTRI container, {} bytes, {} values ({:.2}x vs raw)",
        info.container_bytes,
        info.original_len,
        info.compression_ratio()
    )?;
    writeln!(
        out,
        "  error bound {:.1e}, geometry {}x{} ({} points/block), {} blocks, tree {}",
        info.error_bound,
        info.geometry.num_subblocks,
        info.geometry.subblock_size,
        info.geometry.block_size(),
        info.num_blocks,
        info.tree.name()
    )?;
    let kinds = ["all-zero", "pattern-only", "dense", "sparse", "verbatim"];
    let census: Vec<String> = kinds
        .iter()
        .zip(info.kind_counts.iter())
        .filter(|(_, &c)| c > 0)
        .map(|(k, c)| format!("{k} {c}"))
        .collect();
    writeln!(out, "  blocks: {}", census.join(", "))?;
    // Storage breakdown (paper Sec. V-B), reconstructed from the wire:
    // raw bits per category plus the percentage of the accounted total.
    let stats = pastri::container_bit_stats(&bytes)
        .map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let b = stats.breakdown();
    writeln!(
        out,
        "  storage: pattern+scales {} bits ({:.1}%), ecq {} bits ({:.1}%), bookkeeping {} bits ({:.1}%), verbatim {} bits ({:.1}%)",
        stats.pq_bits + stats.sq_bits,
        b.pattern_and_scales * 100.0,
        stats.ecq_bits,
        b.ecq * 100.0,
        stats.header_bits + stats.container_bits,
        b.bookkeeping * 100.0,
        stats.verbatim_bits,
        b.verbatim * 100.0,
    )?;
    Ok(())
}

/// `pastri report <telemetry.jsonl>`: re-render a line-oriented JSON
/// telemetry capture (from `--telemetry json --telemetry-out FILE`) as
/// the human-readable summary tree.
pub fn report(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "telemetry.jsonl")?;
    let text = fs::read_to_string(input)
        .map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    let snap = telemetry::export::from_json_lines(&text)
        .map_err(|e| CliError::new(format!("{input}: {e}")))?;
    write!(out, "{}", telemetry::export::summary(&snap))?;
    Ok(())
}

/// `pastri verify <file>`: scan any PaSTRI artifact — a single container
/// (`PSTR`), a stream (`PSTRS`), or an eri-store (`ERISTOR1/2`) — and
/// print a per-block/segment damage report. Exit codes are the scripting
/// contract: 0 clean, 2 when damage is found in a recognized artifact,
/// 1 for I/O trouble or an unrecognized format.
pub fn verify(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "file")?;
    let mut magic = [0u8; 8];
    {
        use std::io::Read;
        let mut f = fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
        let n = f.read(&mut magic).map_err(|e| CliError::new(format!("{input}: {e}")))?;
        magic[n..].fill(0);
    }
    if magic.starts_with(b"ERISTOR") {
        verify_store(input, out)
    } else if magic.starts_with(b"PSTRS") {
        verify_stream(input, out)
    } else if magic.starts_with(b"PSTR") {
        verify_container(input, out)
    } else {
        Err(CliError::new(format!(
            "{input}: not a PaSTRI container, stream, or store (unknown magic)"
        )))
    }
}

fn damage_verdict(
    input: &str,
    repairable: usize,
    unrepairable: usize,
    total: usize,
    unit: &str,
) -> Result<(), CliError> {
    let damaged = repairable + unrepairable;
    if damaged == 0 {
        Ok(())
    } else if unrepairable == 0 {
        Err(CliError::corruption(format!(
            "{input}: {damaged} of {total} {unit}(s) damaged (all repairable — run `pastri scrub --repair`)"
        )))
    } else {
        Err(CliError::corruption(format!(
            "{input}: {damaged} of {total} {unit}(s) damaged ({unrepairable} beyond the parity budget)"
        )))
    }
}

fn verify_container(input: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    // The repair report is the classification: it finds *all* on-disk
    // damage (payloads, framing, and the parity section itself) and says
    // which of it the parity budget covers — without modifying the file.
    let (_, report) = pastri::repair_container(&bytes)
        .map_err(|e| CliError::corruption(format!("{input}: unrecoverable header damage: {e}")))?;
    let repairable = report.repaired_blocks.len();
    let unrepairable = report.unrepairable_blocks.len();
    writeln!(
        out,
        "{input}: PaSTRI container, {} blocks, {} damaged ({repairable} repairable, {unrepairable} unrepairable)",
        report.total_blocks,
        repairable + unrepairable,
    )?;
    for b in &report.repaired_blocks {
        writeln!(out, "  block {b}: damaged, repairable from parity")?;
    }
    for b in &report.unrepairable_blocks {
        writeln!(out, "  block {b}: damaged beyond the parity budget")?;
    }
    for g in &report.parity_groups_rebuilt {
        writeln!(out, "  parity group {g}: parity section damaged (rebuildable)")?;
    }
    if report.is_clean() {
        return Ok(());
    }
    if repairable + unrepairable == 0 {
        // Damage confined to the redundancy itself: the data is intact,
        // but the file is not the one the writer produced.
        return Err(CliError::corruption(format!(
            "{input}: {} parity group(s) damaged (data intact — run `pastri scrub --repair`)",
            report.parity_groups_rebuilt.len()
        )));
    }
    damage_verdict(input, repairable, unrepairable, report.total_blocks, "block")
}

fn verify_stream(input: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let file = fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let mut reader = pastri::stream::StreamReader::new(std::io::BufReader::new(file))
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    let mut lines: Vec<String> = Vec::new();
    let mut repairable = 0usize;
    let mut unrepairable = 0usize;
    let mut total = 0usize;
    let mut tail_lost = false;
    loop {
        match reader.next_segment_or_skip() {
            Ok(Some(seg)) => {
                total += 1;
                match (&seg.values, &seg.repair) {
                    (Ok(_), None) => {}
                    (Ok(_), Some(_)) => {
                        repairable += 1;
                        lines.push(format!(
                            "  segment {}: damaged, repairable from parity",
                            seg.index
                        ));
                    }
                    (Err(e), _) => {
                        unrepairable += 1;
                        lines.push(format!("  segment {}: {e}", seg.index));
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Framing damage: the rest of the stream is unreadable.
                unrepairable += 1;
                lines.push(format!("  segment {total}: framing lost ({e})"));
                tail_lost = true;
                break;
            }
        }
    }
    writeln!(
        out,
        "{input}: PaSTRI stream, {total} segment(s) scanned, {} damaged ({repairable} repairable){}",
        repairable + unrepairable,
        if tail_lost { ", tail unreadable" } else { "" }
    )?;
    for line in &lines {
        writeln!(out, "{line}")?;
    }
    damage_verdict(
        input,
        repairable,
        unrepairable,
        total.max(repairable + unrepairable),
        "segment",
    )
}

fn verify_store(input: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let mut store = eri_store::StoreReader::open(std::path::Path::new(input))
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    let report = store
        .verify()
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    // Classify each damaged block: can its container's parity rebuild it?
    let repairable: std::collections::BTreeSet<usize> = if report.is_clean() {
        Default::default()
    } else {
        let (outcome, _) = store
            .scrub()
            .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
        outcome.repaired.into_iter().collect()
    };
    writeln!(
        out,
        "{input}: ERI store v{}, {} block(s) scanned, {} damaged ({} repairable)",
        store.version(),
        report.blocks,
        report.damaged.len(),
        repairable.len(),
    )?;
    for d in &report.damaged {
        let fate = if repairable.contains(&d.block) {
            "repairable from parity"
        } else {
            "beyond the parity budget"
        };
        writeln!(
            out,
            "  block {} (offset {}): {} — {fate}",
            d.block, d.offset, d.error
        )?;
    }
    let unrepairable = report.damaged.len() - repairable.len();
    damage_verdict(input, repairable.len(), unrepairable, report.blocks, "block")
}

/// `pastri salvage <in.pstrs> <out.pstrs>`: rewrite a damaged stream,
/// repairing damaged segments from their containers' parity where the
/// budget allows, keeping intact segments byte-for-byte, and dropping
/// only what is beyond repair. The output is committed atomically
/// (temp file, fsync, rename) and always verifies clean; the exit code
/// reports
/// what salvage found in the *input* — 0 if no data was lost (repairs
/// are not losses), 2 if segments were dropped or the tail was
/// unreadable.
pub fn salvage(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "in.pstrs")?;
    let output = args.positional(1, "out.pstrs")?;
    let infile = fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let outfile = durable::AtomicFile::create(std::path::Path::new(output))
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    let mut sink = std::io::BufWriter::new(outfile);
    let report = pastri::stream::salvage(std::io::BufReader::new(infile), &mut sink)
        .map_err(|e| CliError::new(format!("salvaging {input}: {e}")))?;
    let outfile = sink
        .into_inner()
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    outfile
        .commit()
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    writeln!(
        out,
        "{input} -> {output}: kept {} segment(s), repaired {}, dropped {}{}",
        report.kept,
        report.repaired.len(),
        report.dropped.len(),
        if report.tail_lost {
            " (framing damage: tail lost)"
        } else {
            ""
        }
    )?;
    for (index, _) in &report.repaired {
        writeln!(out, "  repaired segment {index} from parity")?;
    }
    for (index, err) in &report.dropped {
        writeln!(out, "  dropped segment {index}: {err}")?;
    }
    if report.is_lossless() {
        Ok(())
    } else {
        Err(CliError::corruption(format!(
            "{input}: salvage dropped {} segment(s){}",
            report.dropped.len(),
            if report.tail_lost { " and lost the tail" } else { "" }
        )))
    }
}

/// `pastri scrub <file> [--repair]`: the maintenance half of
/// self-healing storage. Scans any PaSTRI artifact — container, stream,
/// or ERI store — and classifies every damaged block/segment as
/// repairable (its parity budget covers the damage) or not. With
/// `--repair`, repairable damage is healed *in place*: the fixed file is
/// rewritten atomically (temp + fsync + rename), byte-identical to what
/// the writer originally produced. When damage exceeds the parity
/// budget, the damaged original is preserved at `<file>.quarantine`
/// before any rewrite, so nothing is destroyed by a best-effort repair.
///
/// Exit codes: 0 clean, 0 damage fully repaired in place (with report),
/// 2 damage present and not (fully) repaired.
pub fn scrub(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    let input = args.positional(0, "file")?;
    let do_repair = args.switch("repair");
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let result = if bytes.starts_with(b"ERISTOR") {
        scrub_store(input, do_repair, out)
    } else if bytes.starts_with(b"PSTRS") {
        scrub_stream(input, &bytes, do_repair, out)
    } else if bytes.starts_with(b"PSTR") {
        scrub_container(input, &bytes, do_repair, out)
    } else {
        Err(CliError::new(format!(
            "{input}: not a PaSTRI container, stream, or store (unknown magic)"
        )))
    };
    // Telemetry is exported even when the scrub found damage: the
    // capture of a failing run is exactly what a postmortem wants.
    if let Some(t) = telem {
        t.finish(out)?;
    }
    result
}

/// Atomically replaces `path` with `bytes` (temp + fsync + rename).
fn rewrite_atomic(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    durable::atomic_write(std::path::Path::new(path), bytes)
        .map_err(|e| CliError::new(format!("rewriting {path}: {e}")))
}

/// Preserves the damaged original at a fresh quarantine path
/// (`<path>.quarantine`, `.quarantine.1`, …) so a partial repair never
/// destroys forensic evidence — and a repeated scrub never clobbers the
/// evidence from an earlier pass.
fn quarantine(path: &str, bytes: &[u8], out: &mut dyn Write) -> Result<(), CliError> {
    let qpath = durable::fresh_quarantine_path(std::path::Path::new(path))
        .to_string_lossy()
        .into_owned();
    rewrite_atomic(&qpath, bytes)?;
    telemetry::counter_add("scrub.quarantines", 1);
    telemetry::event("scrub.quarantine");
    writeln!(out, "  damaged original preserved at {qpath}")?;
    Ok(())
}

fn scrub_container(
    input: &str,
    bytes: &[u8],
    do_repair: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (repaired_bytes, report) = pastri::repair_container(bytes)
        .map_err(|e| CliError::corruption(format!("{input}: unrecoverable header damage: {e}")))?;
    if report.is_clean() {
        writeln!(out, "{input}: clean ({} blocks)", report.total_blocks)?;
        return Ok(());
    }
    writeln!(
        out,
        "{input}: PaSTRI container, {} blocks — {} repairable, {} unrepairable, {} parity group(s) to rebuild",
        report.total_blocks,
        report.repaired_blocks.len(),
        report.unrepairable_blocks.len(),
        report.parity_groups_rebuilt.len(),
    )?;
    if !do_repair {
        return Err(CliError::corruption(format!(
            "{input}: damage found (re-run with --repair to heal in place)"
        )));
    }
    if report.is_fully_repaired() {
        rewrite_atomic(input, &repaired_bytes)?;
        writeln!(
            out,
            "{input}: repaired in place ({} block(s) rebuilt, {} parity group(s) regenerated)",
            report.repaired_blocks.len(),
            report.parity_groups_rebuilt.len()
        )?;
        return Ok(());
    }
    // Partial repair: heal what the parity covers, but keep the damaged
    // original quarantined and report failure.
    quarantine(input, bytes, out)?;
    rewrite_atomic(input, &repaired_bytes)?;
    Err(CliError::corruption(format!(
        "{input}: {} block(s) damaged beyond the parity budget",
        report.unrepairable_blocks.len()
    )))
}

fn scrub_stream(
    input: &str,
    bytes: &[u8],
    do_repair: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    // Salvage into memory: that *is* the scrub — it repairs what parity
    // covers and drops the rest, and its report is the classification.
    let mut healed = Vec::with_capacity(bytes.len());
    let report = pastri::stream::salvage(bytes, &mut healed)
        .map_err(|e| CliError::new(format!("scrubbing {input}: {e}")))?;
    if report.is_clean() {
        writeln!(out, "{input}: clean ({} segments)", report.kept)?;
        return Ok(());
    }
    writeln!(
        out,
        "{input}: PaSTRI stream — {} kept, {} repairable, {} beyond repair{}",
        report.kept,
        report.repaired.len(),
        report.dropped.len(),
        if report.tail_lost { ", tail unreadable" } else { "" }
    )?;
    if !do_repair {
        return Err(CliError::corruption(format!(
            "{input}: damage found (re-run with --repair to heal in place)"
        )));
    }
    if report.is_lossless() {
        rewrite_atomic(input, &healed)?;
        writeln!(
            out,
            "{input}: repaired in place ({} segment(s) rebuilt from parity)",
            report.repaired.len()
        )?;
        return Ok(());
    }
    quarantine(input, bytes, out)?;
    rewrite_atomic(input, &healed)?;
    Err(CliError::corruption(format!(
        "{input}: {} segment(s) dropped{}",
        report.dropped.len(),
        if report.tail_lost { " and the tail was unreadable" } else { "" }
    )))
}

fn scrub_store(input: &str, do_repair: bool, out: &mut dyn Write) -> Result<(), CliError> {
    let path = std::path::Path::new(input);
    let mut store = eri_store::StoreReader::open(path)
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    let (outcome, patches) = store
        .scrub()
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    if outcome.is_clean() {
        writeln!(out, "{input}: clean ({} blocks)", outcome.blocks)?;
        return Ok(());
    }
    writeln!(
        out,
        "{input}: ERI store, {} blocks — {} repairable, {} unrepairable",
        outcome.blocks,
        outcome.repaired.len(),
        outcome.unrepairable.len(),
    )?;
    for b in &outcome.unrepairable {
        writeln!(out, "  block {b}: damaged beyond the parity budget")?;
    }
    if !do_repair {
        return Err(CliError::corruption(format!(
            "{input}: damage found (re-run with --repair to heal in place)"
        )));
    }
    // Splice the certified patches into a copy and atomically swap it
    // in. Each patch is byte-identical to the originally-written block
    // (the index CRC vouches), so repaired stores verify clean.
    let original = fs::read(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let mut bytes = original.clone();
    for (offset, patch) in &patches {
        let start = *offset as usize;
        let end = start + patch.len();
        if end > bytes.len() {
            return Err(CliError::corruption(format!(
                "{input}: repair patch for offset {offset} falls outside the file"
            )));
        }
        bytes[start..end].copy_from_slice(patch);
    }
    if outcome.unrepairable.is_empty() {
        rewrite_atomic(input, &bytes)?;
        writeln!(
            out,
            "{input}: repaired in place ({} block(s) rebuilt from parity)",
            outcome.repaired.len()
        )?;
        return Ok(());
    }
    quarantine(input, &original, out)?;
    rewrite_atomic(input, &bytes)?;
    Err(CliError::corruption(format!(
        "{input}: {} block(s) damaged beyond the parity budget",
        outcome.unrepairable.len()
    )))
}

/// `pastri gen <out.f64> --molecule benzene --config (dd|dd) ...`.
pub fn generate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let output = args.positional(0, "out.f64")?;
    let config = parse_config(&args)?;
    let blocks = args.get_usize("blocks", 100)?;
    let seed = args.get_usize("seed", 0)? as u64;
    let ds = if args.switch("model") {
        EriDataset::generate_model(config, blocks, seed)
    } else {
        let mol_name = args.get("molecule").unwrap_or("benzene");
        let molecule = Molecule::by_name(mol_name)
            .ok_or_else(|| CliError::new(format!("--molecule: unknown molecule `{mol_name}`")))?;
        let copies = args.get_usize("cluster", 1)?;
        EriDataset::generate(&DatasetSpec {
            molecule: molecule.cluster(copies.max(1), 4.5),
            config,
            max_blocks: blocks,
            seed,
        })
    };
    write_f64_file(output, &ds.values)?;
    writeln!(
        out,
        "{output}: {} — {} blocks of {} values ({} bytes)",
        ds.label,
        ds.num_blocks(),
        config.block_size(),
        ds.byte_size()
    )?;
    Ok(())
}

/// `pastri assess <original.f64> <decompressed.f64>`.
pub fn assess(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let orig_path = args.positional(0, "original.f64")?;
    let dec_path = args.positional(1, "decompressed.f64")?;
    let orig = read_f64_file(orig_path)?;
    let dec = read_f64_file(dec_path)?;
    if orig.len() != dec.len() {
        return Err(CliError::new(format!(
            "length mismatch: {} has {} values, {} has {}",
            orig_path,
            orig.len(),
            dec_path,
            dec.len()
        )));
    }
    let a = zcheck::assess(&orig, &dec, 0);
    writeln!(
        out,
        "n = {}, max abs err = {:.3e}, MSE = {:.3e}, PSNR = {:.1} dB, value range = {:.3e}",
        a.n, a.max_abs_err, a.mse, a.psnr, a.value_range
    )?;
    Ok(())
}

/// `pastri soak <dir> [--seed N] [--ops N] [--stores N] [--scale N] …`:
/// the deterministic fault-storm soak harness (see the `soak` crate).
/// Runs a seeded mixed workload across many stores under SDC, crash,
/// torn-write, and transient-read faults; verifies zero data loss; and
/// evaluates the configured SLO gates. Writes the machine-readable
/// report to `--bench-out` (default `BENCH_soak.json`).
///
/// Exit codes: 0 all gates hold and no data was lost, 1 I/O or usage
/// error, 2 unaccounted data loss or a violated SLO gate.
pub fn soak_cmd(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    let dir = args.positional(0, "dir")?;

    if args.switch("transport") {
        return soak_transport(&args, dir, out, telem);
    }

    let defaults = soak::SoakConfig::storm(std::path::Path::new(dir), 42);
    let mut cfg = defaults;
    cfg.seed = args.get_usize("seed", 42)? as u64;
    cfg.ops = args.get_usize("ops", cfg.ops)?;
    cfg.stores = args.get_usize("stores", cfg.stores)?;
    cfg.scale = args.get_usize("scale", cfg.scale)?;
    cfg.error_bound = args.get_f64("eb", cfg.error_bound)?;
    cfg.geometry = BlockGeometry::new(
        args.get_usize("subblocks", cfg.geometry.num_subblocks)?,
        args.get_usize("subblock-size", cfg.geometry.subblock_size)?,
    );
    cfg.mix = soak::OpMix {
        read: args.get_usize("read-weight", cfg.mix.read as usize)? as u32,
        write_container: args.get_usize("container-weight", cfg.mix.write_container as usize)?
            as u32,
        write_stream: args.get_usize("stream-weight", cfg.mix.write_stream as usize)? as u32,
        crash_resume: args.get_usize("crash-weight", cfg.mix.crash_resume as usize)? as u32,
        scrub: args.get_usize("scrub-weight", cfg.mix.scrub as usize)? as u32,
    };
    cfg.faults = soak::FaultPlan {
        bit_flip_every: args.get_usize("bit-flip-every", cfg.faults.bit_flip_every)?,
        flips_per_event: args.get_usize("flips-per-event", cfg.faults.flips_per_event)?,
        torn_stream_every: args.get_usize("torn-every", cfg.faults.torn_stream_every)?,
        transient_rate: args.get_f64("transient-rate", cfg.faults.transient_rate)?,
        max_transient_errors: args
            .get_usize("max-transients", cfg.faults.max_transient_errors as usize)?
            as u32,
    };
    cfg.slo = soak::SloGates {
        read_p99_us: args
            .get("slo-read-p99-us")
            .map(|_| args.get_usize("slo-read-p99-us", 0))
            .transpose()?
            .map(|v| v as u64),
        min_repair_success: args
            .get("slo-min-repair-success")
            .map(|_| args.get_f64("slo-min-repair-success", 0.0))
            .transpose()?,
        max_quarantined: args
            .get("slo-max-quarantined")
            .map(|_| args.get_usize("slo-max-quarantined", 0))
            .transpose()?
            .map(|v| v as u64),
        max_resident_values: args
            .get("slo-max-resident-values")
            .map(|_| args.get_usize("slo-max-resident-values", 0))
            .transpose()?
            .map(|v| v as i64),
    };
    let seconds = args.get_f64("seconds", 0.0)?;
    if seconds > 0.0 {
        cfg.time_budget = Some(std::time::Duration::from_secs_f64(seconds));
    }
    cfg.keep_artifacts = args.switch("keep");
    let bench_out = args.get("bench-out").unwrap_or("BENCH_soak.json");

    let report = soak::run(&cfg).map_err(|e| match e {
        soak::SoakError::Config(m) => CliError::new(format!("soak: {m}")),
        soak::SoakError::Io(io) => CliError::new(format!("soak: {io}")),
    })?;

    let t = &report.tallies;
    writeln!(
        out,
        "soak: seed {} — {} ops across {} stores ({} skipped), {:.2}s wall",
        report.seed,
        t.ops_executed,
        cfg.stores,
        t.ops_skipped,
        report.wall.as_secs_f64()
    )?;
    writeln!(
        out,
        "  faults: {} bit-flip events ({} bits), {} torn streams, {} crashes (all {} resumed), {} transient retries",
        t.bit_flip_events, t.bit_flips, t.torn_streams, t.crashes, t.resumes, t.transient_retries
    )?;
    writeln!(
        out,
        "  healing: {} repaired on read, {} repaired by scrub, {} quarantined",
        t.read_repaired, t.scrub_repaired, t.quarantined
    )?;
    for g in &report.gates {
        writeln!(
            out,
            "  gate {:<24} threshold {:>12} actual {:>12}  {}",
            g.gate,
            format!("{}", g.threshold),
            g.actual.map_or_else(|| "n/a".to_string(), |v| format!("{v}")),
            if g.pass { "PASS" } else { "FAIL" }
        )?;
    }
    if report.spans_dropped > 0 {
        writeln!(
            out,
            "warning: {} telemetry span/event record(s) dropped at the {}-record buffer cap \
             (counters and histograms behind the SLO gates remain complete)",
            report.spans_dropped,
            telemetry::span_capacity()
        )?;
    }
    fs::write(bench_out, report.to_json(&cfg))
        .map_err(|e| CliError::new(format!("writing {bench_out}: {e}")))?;
    writeln!(out, "  report: {bench_out}")?;
    if let Some(tcap) = telem {
        tcap.finish(out)?;
    }

    if !report.zero_data_loss() {
        return Err(CliError::corruption(format!(
            "soak: DATA LOSS — {} block(s) unaccounted, {} value mismatch(es)",
            report.unaccounted_loss, t.value_mismatches
        )));
    }
    if !report.all_gates_pass() {
        let failed: Vec<&str> = report
            .gates
            .iter()
            .filter(|g| !g.pass)
            .map(|g| g.gate)
            .collect();
        return Err(CliError::corruption(format!(
            "soak: SLO gate(s) violated: {}",
            failed.join(", ")
        )));
    }
    writeln!(out, "soak: PASS — zero data loss, all gates hold")?;
    Ok(())
}

/// `pastri soak --transport` — the client/server wire storm: replicated
/// servers behind seeded fault proxies, concurrent remote clients,
/// zero-loss accounting, and `rpc.*` SLO gates (DESIGN §13).
fn soak_transport(
    args: &Args,
    dir: &str,
    out: &mut dyn Write,
    telem: Option<TelemetryCapture>,
) -> Result<(), CliError> {
    let mut cfg = soak::TransportStormConfig::storm(std::path::Path::new(dir), 42);
    cfg.seed = args.get_usize("seed", 42)? as u64;
    cfg.replicas = args.get_usize("replicas", cfg.replicas)?;
    cfg.clients = args.get_usize("clients", cfg.clients)?;
    cfg.requests_per_client = args.get_usize("requests", cfg.requests_per_client)?;
    cfg.max_batch = args.get_usize("max-batch", cfg.max_batch)?;
    cfg.scale = args.get_usize("scale", cfg.scale)?;
    cfg.error_bound = args.get_f64("eb", cfg.error_bound)?;
    cfg.faults.faulty_every =
        args.get_usize("faulty-every", cfg.faults.faulty_every as usize)? as u32;
    cfg.faults.max_faults = args.get_usize("max-faults", cfg.faults.max_faults as usize)? as u32;
    if args.switch("overload") {
        // Overload mode: clean wire, seeded server-side injector,
        // client breakers, graceful drain (DESIGN §14). Defaults to
        // one replica so the shed/breaker tallies stay seed-pure.
        cfg.replicas = args.get_usize("replicas", 1)?;
        let mut ovl = soak::OverloadStormConfig::default();
        ovl.inject.shed_every = args.get_usize("shed-every", ovl.inject.shed_every as usize)? as u64;
        ovl.inject.max_sheds_per_key =
            args.get_usize("max-sheds-per-key", ovl.inject.max_sheds_per_key as usize)? as u32;
        ovl.inject.delay_every =
            args.get_usize("delay-every", ovl.inject.delay_every as usize)? as u64;
        ovl.breaker.failure_threshold = args
            .get_usize("breaker-threshold", ovl.breaker.failure_threshold as usize)?
            as u32;
        cfg.overload = Some(ovl);
    }
    cfg.slo = soak::TransportSloGates {
        rpc_p99_us: args
            .get("slo-rpc-p99-us")
            .map(|_| args.get_usize("slo-rpc-p99-us", 0))
            .transpose()?
            .map(|v| v as u64),
        max_deadline_exceeded: args
            .get("slo-max-deadline-exceeded")
            .map(|_| args.get_usize("slo-max-deadline-exceeded", 0))
            .transpose()?
            .map(|v| v as u64),
        max_frame_errors: args
            .get("slo-max-frame-errors")
            .map(|_| args.get_usize("slo-max-frame-errors", 0))
            .transpose()?
            .map(|v| v as u64),
        max_shed_rate: args
            .get("slo-max-shed-rate")
            .map(|_| args.get_f64("slo-max-shed-rate", 0.0))
            .transpose()?,
        queue_wait_p99_us: args
            .get("slo-queue-wait-p99-us")
            .map(|_| args.get_usize("slo-queue-wait-p99-us", 0))
            .transpose()?
            .map(|v| v as u64),
        max_breaker_opened: args
            .get("slo-max-breaker-opened")
            .map(|_| args.get_usize("slo-max-breaker-opened", 0))
            .transpose()?
            .map(|v| v as u64),
    };
    cfg.keep_artifacts = args.switch("keep");
    let bench_out = args.get("bench-out").unwrap_or("BENCH_transport_soak.json");

    let report = soak::run_transport(&cfg).map_err(|e| match e {
        soak::SoakError::Config(m) => CliError::new(format!("soak: {m}")),
        soak::SoakError::Io(io) => CliError::new(format!("soak: {io}")),
    })?;

    let t = &report.tallies;
    let r = &report.recovery;
    let p = &report.proxy;
    writeln!(
        out,
        "soak --transport: seed {} — {} requests from {} clients over {} replicas, {:.2}s wall",
        report.seed,
        t.requests_planned,
        cfg.clients,
        cfg.replicas,
        report.wall.as_secs_f64()
    )?;
    writeln!(
        out,
        "  served {} of {} blocks, value_sig {:016x}",
        t.blocks_served, t.blocks_requested, t.value_sig
    )?;
    writeln!(
        out,
        "  wire faults: {} conns through proxies — {} truncates, {} corrupts, {} drops, {} stalls, {} resets",
        p.conns, p.truncates, p.corrupts, p.drops, p.stalls, p.resets
    )?;
    writeln!(
        out,
        "  recovery: {} retries, {} hedges, {} frame errors, {} deadline misses",
        r.retries, r.hedges, r.frame_errors, r.deadline_exceeded
    )?;
    if let Some(o) = &report.overload {
        writeln!(
            out,
            "  overload: {} shed ({} surfaced at clients), {} admitted / {} completed, breaker {} opened / {} half-open / {} closed, drain {}",
            o.server_shed,
            o.client_overloaded,
            o.server_admitted,
            o.server_completed,
            o.breaker_opened,
            o.breaker_half_opened,
            o.breaker_closed,
            if o.drain_complete { "complete" } else { "INCOMPLETE" }
        )?;
    }
    for g in &report.gates {
        writeln!(
            out,
            "  gate {:<24} threshold {:>12} actual {:>12}  {}",
            g.gate,
            format!("{}", g.threshold),
            g.actual.map_or_else(|| "n/a".to_string(), |v| format!("{v}")),
            if g.pass { "PASS" } else { "FAIL" }
        )?;
    }
    fs::write(bench_out, report.to_json(&cfg))
        .map_err(|e| CliError::new(format!("writing {bench_out}: {e}")))?;
    writeln!(out, "  report: {bench_out}")?;
    if let Some(tcap) = telem {
        tcap.finish(out)?;
    }

    if !report.zero_data_loss() {
        return Err(CliError::corruption(format!(
            "soak --transport: DATA LOSS — {} block(s) lost, {} value mismatch(es)",
            t.lost_blocks, t.value_mismatches
        )));
    }
    if !report.overload_sound() {
        // A dropped admitted request or a shed that never surfaced as
        // a structured error is silent loss — same severity as data
        // loss in the exit contract.
        return Err(CliError::corruption(
            "soak --transport: overload accounting violated — dropped admitted request or \
             unsurfaced shed"
                .to_string(),
        ));
    }
    if !report.all_gates_pass() {
        let failed: Vec<&str> = report
            .gates
            .iter()
            .filter(|g| !g.pass)
            .map(|g| g.gate)
            .collect();
        return Err(CliError::corruption(format!(
            "soak --transport: SLO gate(s) violated: {}",
            failed.join(", ")
        )));
    }
    writeln!(out, "soak --transport: PASS — zero loss over the wire, all gates hold")?;
    Ok(())
}

/// Maps a [`eri_server::ServerError`] onto the CLI exit-code contract:
/// corruption in a recognized store is exit 2, everything else (missing
/// file, bad mount, out-of-range request) is the usage/I-O exit 1.
fn server_err(e: eri_server::ServerError) -> CliError {
    if e.is_corruption() {
        CliError::corruption(format!("server: {e}"))
    } else {
        CliError::new(format!("server: {e}"))
    }
}

/// Parses `--blocks 0,3,7-9` into explicit ids.
fn parse_block_list(spec: &str) -> Result<Vec<usize>, CliError> {
    let mut ids = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        match part.split_once('-') {
            Some((a, b)) => {
                let (a, b) = (
                    a.trim().parse::<usize>(),
                    b.trim().parse::<usize>(),
                );
                match (a, b) {
                    (Ok(a), Ok(b)) if a <= b => ids.extend(a..=b),
                    _ => {
                        return Err(CliError::new(format!(
                            "--blocks: `{part}` is not a block id range"
                        )))
                    }
                }
            }
            None => ids.push(part.trim().parse::<usize>().map_err(|_| {
                CliError::new(format!("--blocks: `{part}` is not a block id"))
            })?),
        }
    }
    Ok(ids)
}

/// Shared server tunables for `serve` / `bench-server`.
fn server_config(args: &Args) -> Result<eri_server::ServerConfig, CliError> {
    let mut cfg = eri_server::ServerConfig::default();
    cfg.shards_per_store = args.get_usize("shards", cfg.shards_per_store)?.max(1);
    cfg.cache_bytes = args.get_usize("cache-mb", cfg.cache_bytes >> 20)? << 20;
    cfg.cache_shards = args.get_usize("cache-shards", cfg.cache_shards)?.max(1);
    Ok(cfg)
}

/// `pastri serve` — mount one or more stores behind the sharded cache
/// server and serve a batched read in-process: the CLI face of
/// [`eri_server::ServerHandle`]. With `--out`, the served blocks are
/// written as raw little-endian f64 in request order. With `--listen
/// <tcp:HOST:PORT | unix:PATH>`, no local read happens: the mounted
/// server is exposed over the PTRF wire protocol for `pastri fetch`
/// (DESIGN §13) until interrupted, or for `--serve-conns N`
/// connections when bounded serving is wanted (tests, one-shot jobs).
pub fn serve(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    args.positional(0, "store")?;
    let cfg = server_config(&args)?;

    let srv = eri_server::ServerHandle::open(&args.positional, &cfg).map_err(server_err)?;

    if let Some(spec) = args.get("listen") {
        let ep = eri_server::Endpoint::parse(spec)
            .map_err(|e| CliError::new(format!("--listen: {e}")))?;
        let tsrv = eri_server::TransportServer::bind(&ep, std::sync::Arc::new(srv))
            .map_err(|e| CliError::new(format!("binding {ep}: {e}")))?;
        // A listening server is scrapeable (`pastri top`, TelemetryRequest
        // frames), so the recorder runs even without `--telemetry` —
        // otherwise every scrape would come back empty.
        let scrape_only = telem.is_none();
        if scrape_only {
            telemetry::reset();
            telemetry::set_enabled(true);
        }
        writeln!(out, "serve: listening on {}", tsrv.local_endpoint())?;
        out.flush()?;
        let max_conns = args.get_usize("serve-conns", 0)?;
        let served = tsrv
            .run(if max_conns == 0 { None } else { Some(max_conns as u64) })
            .map_err(|e| CliError::new(format!("serving on {}: {e}", tsrv.local_endpoint())))?;
        writeln!(out, "serve: done after {served} connection(s)")?;
        if scrape_only {
            telemetry::set_enabled(false);
        }
        if let Some(tcap) = telem {
            tcap.finish(out)?;
        }
        return Ok(());
    }

    let ids = match args.get("blocks") {
        Some(spec) => parse_block_list(spec)?,
        None => (0..srv.num_blocks()).collect(),
    };

    let started = std::time::Instant::now();
    let blocks = srv.read_blocks(&ids).map_err(server_err)?;
    let wall = started.elapsed().as_secs_f64();

    if let Some(path) = args.get("out") {
        let mut bytes = Vec::new();
        for b in &blocks {
            for v in b.iter() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        fs::write(path, &bytes).map_err(|e| CliError::new(format!("writing {path}: {e}")))?;
        writeln!(out, "serve: wrote {} bytes to {path}", bytes.len())?;
    }

    let served: usize = blocks.iter().map(|b| b.len() * 8).sum();
    let s = srv.cache_stats();
    let r = srv.read_stats();
    writeln!(
        out,
        "serve: {} block(s) from {} store(s) across {} shard(s) in {:.3}s",
        blocks.len(),
        srv.num_stores(),
        srv.num_shards(),
        wall
    )?;
    writeln!(
        out,
        "  {} decompressed bytes, cache {}/{} hits ({} resident bytes), {} repaired on read",
        served, s.hits, s.lookups, s.bytes, r.blocks_repaired
    )?;
    if let Some(tcap) = telem {
        tcap.finish(out)?;
    }
    Ok(())
}

/// Maps a [`eri_server::ClientError`] onto the CLI exit-code contract:
/// damaged bytes (corrupt frames beyond the retry budget, corrupt
/// blocks) are exit 2; refused connections, blown deadlines, and
/// protocol/usage trouble are exit 1.
fn client_err(e: eri_server::ClientError) -> CliError {
    if e.is_corruption() {
        CliError::corruption(format!("fetch: {e}"))
    } else {
        CliError::new(format!("fetch: {e}"))
    }
}

/// `pastri fetch` — read blocks from a `pastri serve --listen` endpoint
/// over the PTRF wire protocol, with deadlines, bounded seeded-jitter
/// retry, and hedged failover across `--replica` endpoints (DESIGN
/// §13). Exit contract: 0 all blocks served, 1 unreachable/deadline,
/// 2 corruption (wire frames or stored blocks) that outlived the retry
/// budget.
pub fn fetch(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    let primary = args.positional(0, "endpoint")?;

    let mut replicas = vec![eri_server::Endpoint::parse(primary)
        .map_err(|e| CliError::new(format!("<endpoint>: {e}")))?];
    for spec in args.get_all("replica") {
        replicas.push(
            eri_server::Endpoint::parse(spec)
                .map_err(|e| CliError::new(format!("--replica: {e}")))?,
        );
    }

    let mut cfg = eri_server::ClientConfig {
        deadline: std::time::Duration::from_millis(
            args.get_usize("deadline-ms", 5000)?.max(1) as u64,
        ),
        attempt_timeout: std::time::Duration::from_millis(
            args.get_usize("attempt-ms", 1000)?.max(1) as u64,
        ),
        ..Default::default()
    };
    cfg.retry.max_retries = args.get_usize("retries", cfg.retry.max_retries as usize)? as u32;
    let mut seed = 0u64;
    if let Some(raw) = args.get("seed") {
        seed = raw.parse().map_err(|_| {
            CliError::new(format!("--seed: `{raw}` is not an integer"))
        })?;
        cfg.retry.jitter_seed = Some(seed);
    }
    // The whole fetch is one trace, seeded by --seed: every request
    // carries the same trace id to a v3 server, which adopts it into
    // its own spans — `pastri trace --merge` joins the two exports on
    // that id. Pure function of the seed, so reruns trace identically.
    telemetry::set_trace_seed(seed);
    let _fetch_trace = telemetry::push_trace(telemetry::new_trace());

    let mut client = eri_server::RemoteClient::connect(&replicas, cfg).map_err(client_err)?;
    let ids: Vec<u64> = match args.get("blocks") {
        Some(spec) => parse_block_list(spec)?.into_iter().map(|i| i as u64).collect(),
        None => (0..client.num_blocks()).collect(),
    };

    let started = std::time::Instant::now();
    let blocks = {
        // The client-side anchor span for the trace: it carries the
        // same trace id the server adopts, so a merged timeline shows
        // the fetch bracketing every server-side span it caused.
        let _span = telemetry::span("client.fetch");
        client.read_blocks_strict(&ids).map_err(client_err)?
    };
    let wall = started.elapsed().as_secs_f64();

    if let Some(path) = args.get("out") {
        let mut bytes = Vec::new();
        for b in &blocks {
            for v in b {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        fs::write(path, &bytes).map_err(|e| CliError::new(format!("writing {path}: {e}")))?;
        writeln!(out, "fetch: wrote {} bytes to {path}", bytes.len())?;
    }

    let served: usize = blocks.iter().map(|b| b.len() * 8).sum();
    let cs = client.stats();
    writeln!(
        out,
        "fetch: {} block(s) ({} bytes) from {} replica(s) in {:.3}s",
        blocks.len(),
        served,
        replicas.len(),
        wall
    )?;
    writeln!(
        out,
        "  recovery: {} retries, {} hedges, {} frame errors, {} deadline misses",
        cs.retries, cs.hedges, cs.frame_errors, cs.deadline_exceeded
    )?;
    if args.switch("stats") {
        let ws = client.server_stats().map_err(client_err)?;
        writeln!(
            out,
            "  server: {} requests, {} blocks, {} store reads, {} transient retries, \
             {} repaired, cache {}/{} hits",
            ws.requests,
            ws.blocks,
            ws.store_reads,
            ws.transient_retries,
            ws.blocks_repaired,
            ws.cache_hits,
            ws.cache_hits + ws.cache_misses
        )?;
        // Overload counters (v2 servers; a v1 peer reports zeros) —
        // shed-at-server vs failed-at-client in one place.
        writeln!(
            out,
            "  server overload: {} admitted, {} shed, {} refused draining",
            ws.admitted, ws.shed, ws.refused_draining
        )?;
        let cs = client.stats();
        writeln!(
            out,
            "  client: {} overloaded refusals, breaker {} opened / {} half-open / {} closed",
            cs.overloaded, cs.breaker_opened, cs.breaker_half_opened, cs.breaker_closed
        )?;
        for (ep, st) in client.breaker_states() {
            let state = match st {
                None => "disabled".to_string(),
                Some(s) => format!("{s:?}").to_lowercase(),
            };
            writeln!(out, "  breaker {ep}: {state}")?;
        }
        // v3 servers also expose the full snapshot: latency percentiles
        // the pre-digested WireStats can't carry, plus journal health.
        match client.server_telemetry() {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let snap = telemetry::export::from_json_lines(&text)
                    .map_err(|e| CliError::new(format!("fetch: telemetry scrape: {e}")))?;
                let pct = |q| {
                    snap.histograms
                        .iter()
                        .find(|h| h.name == "server.read_us")
                        .and_then(|h| h.percentile_us(q))
                        .unwrap_or(0)
                };
                let drops: u64 = snap.events_dropped.iter().map(|c| c.value).sum();
                writeln!(
                    out,
                    "  server telemetry: read p50 {} us, p99 {} us, {} journal event(s), \
                     {} journal drop(s)",
                    pct(0.50),
                    pct(0.99),
                    snap.events.len(),
                    drops
                )?;
            }
            // A v1/v2 peer has no snapshot frame; the WireStats block
            // above already said everything it can.
            Err(eri_server::ClientError::Protocol(_)) => {}
            Err(e) => return Err(client_err(e)),
        }
    }
    if let Some(tcap) = telem {
        tcap.finish(out)?;
    }
    Ok(())
}

/// Deterministic ERI-magnitude block for `bench-server --gen-blocks`
/// fixtures (same envelope the integration fixtures use).
fn bench_block(geom: BlockGeometry, seed: usize) -> Vec<f64> {
    let mut block = Vec::with_capacity(geom.block_size());
    for sb in 0..geom.num_subblocks {
        let s = ((sb + seed) as f64 * 0.61).cos();
        for i in 0..geom.subblock_size {
            block.push(s * ((i as f64 + seed as f64) * 0.37).sin() * 1e-6);
        }
    }
    block
}

/// `pastri bench-server` — seeded Zipf-ish traffic replay against the
/// cache server, emitting BENCH_server.json. With `--gen-blocks N` the
/// store is synthesized first (a seeded fixture), so CI can run the
/// whole benchmark from nothing.
pub fn bench_server(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let telem = telemetry_capture(&args)?;
    let store = args.positional(0, "store")?;
    let cfg = server_config(&args)?;

    let mut replay = eri_server::replay::ReplayConfig::default();
    replay.seed = args.get_usize("seed", replay.seed as usize)? as u64;
    replay.clients = args.get_usize("clients", replay.clients)?.max(1);
    replay.requests_per_client = args.get_usize("requests", replay.requests_per_client)?.max(1);
    replay.max_batch = args.get_usize("max-batch", replay.max_batch)?.max(1);
    replay.skew = args.get_f64("skew", replay.skew)?;
    let bench_out = args.get("bench-out").unwrap_or("BENCH_server.json");

    let gen_blocks = args.get_usize("gen-blocks", 0)?;
    if gen_blocks > 0 {
        let geom = BlockGeometry::new(
            args.get_usize("subblocks", 4)?,
            args.get_usize("subblock-size", 32)?,
        );
        let eb = args.get_f64("eb", 1e-10)?;
        if let Some(parent) = std::path::Path::new(store).parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)
                    .map_err(|e| CliError::new(format!("creating {}: {e}", parent.display())))?;
            }
        }
        let mut w = eri_store::StoreWriter::create(std::path::Path::new(store), geom, eb)
            .map_err(|e| CliError::new(format!("generating {store}: {e}")))?;
        for b in 0..gen_blocks {
            w.append_block(&bench_block(geom, replay.seed as usize + b))
                .map_err(|e| CliError::new(format!("generating {store}: {e}")))?;
        }
        w.finish()
            .map_err(|e| CliError::new(format!("generating {store}: {e}")))?;
        writeln!(out, "bench-server: generated {gen_blocks}-block store at {store}")?;
    }

    let srv = eri_server::ServerHandle::open(&[store], &cfg).map_err(server_err)?;
    let report = eri_server::replay::run(&srv, &replay);

    let t = &report.tallies;
    let s = &report.cache;
    writeln!(
        out,
        "bench-server: seed {} — {} requests from {} clients over {} blocks, {:.2}s wall",
        replay.seed, t.requests, replay.clients, report.dataset_blocks, report.wall_s
    )?;
    writeln!(
        out,
        "  served {} blocks ({} bytes) at {:.1} MB/s, value_sig {:016x}",
        t.blocks_served, t.bytes_served, report.mb_per_s, t.value_sig
    )?;
    writeln!(
        out,
        "  cache: hit rate {:.3} ({}/{} lookups), high water {} of {} bytes",
        s.hit_rate().unwrap_or(0.0),
        s.hits,
        s.lookups,
        s.high_water_bytes,
        s.capacity_bytes
    )?;
    writeln!(
        out,
        "  latency: read p50 {} µs, p99 {} µs; miss p99 {} µs",
        report.read_p50_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        report.read_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        report.miss_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
    )?;
    writeln!(
        out,
        "  reuse model: {:.2}s regen, {:.2}s uncached, {:.2}s at measured hit rate",
        report.reuse.original_s, report.reuse.uncached_s, report.reuse.cached_s
    )?;
    fs::write(bench_out, report.to_json())
        .map_err(|e| CliError::new(format!("writing {bench_out}: {e}")))?;
    writeln!(out, "  report: {bench_out}")?;
    if let Some(tcap) = telem {
        tcap.finish(out)?;
    }

    if !report.pass() {
        return Err(CliError::corruption(format!(
            "bench-server: {} batch(es) failed to serve",
            t.batches_failed
        )));
    }
    writeln!(out, "bench-server: PASS — every batch served")?;
    Ok(())
}

/// Derived dashboard numbers for one `pastri top` tick.
struct TopMetrics {
    requests_total: u64,
    requests_per_s: f64,
    blocks_per_s: f64,
    cache_hit_rate: f64,
    read_p50_us: u64,
    read_p99_us: u64,
    in_flight: i64,
    shed_total: u64,
    shed_per_s: f64,
    draining: bool,
    scrapes: u64,
    journal_events: usize,
    journal_drops: u64,
}

fn snap_gauge(snap: &telemetry::Snapshot, name: &str) -> i64 {
    snap.gauges.iter().find(|g| g.name == name).map_or(0, |g| g.value)
}

fn snap_pct(snap: &telemetry::Snapshot, name: &str, q: f64) -> u64 {
    snap.histograms
        .iter()
        .find(|h| h.name == name)
        .and_then(|h| h.percentile_us(q))
        .unwrap_or(0)
}

/// Computes one tick's numbers. With a previous scrape, rates are
/// deltas over `dt` seconds; on the first (`--once`) scrape they fall
/// back to cumulative totals over the server's own span horizon (the
/// latest span end it has recorded), so a single scrape of a busy
/// server still reports meaningful throughput instead of zeros.
fn top_metrics(
    prev: Option<&telemetry::Snapshot>,
    cur: &telemetry::Snapshot,
    dt: f64,
) -> TopMetrics {
    let horizon =
        cur.spans.iter().map(|s| s.start_ns + s.dur_ns).max().unwrap_or(0) as f64 / 1e9;
    let rate = |name: &str| -> f64 {
        match prev {
            Some(p) => {
                cur.counter(name).saturating_sub(p.counter(name)) as f64 / dt.max(1e-9)
            }
            None if horizon > 0.0 => cur.counter(name) as f64 / horizon,
            None => 0.0,
        }
    };
    let hits = cur.counter("cache.hits");
    let lookups = hits + cur.counter("cache.misses");
    TopMetrics {
        requests_total: cur.counter("server.requests"),
        requests_per_s: rate("server.requests"),
        blocks_per_s: rate("server.blocks"),
        cache_hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        read_p50_us: snap_pct(cur, "server.read_us", 0.50),
        read_p99_us: snap_pct(cur, "server.read_us", 0.99),
        in_flight: snap_gauge(cur, "server.in_flight"),
        shed_total: cur.counter("server.shed") + cur.counter("server.refused_draining"),
        shed_per_s: rate("server.shed"),
        draining: snap_gauge(cur, "server.draining") != 0,
        scrapes: cur.counter("server.scrapes"),
        journal_events: cur.events.len(),
        journal_drops: cur.events_dropped.iter().map(|c| c.value).sum(),
    }
}

/// One machine-readable JSON object line for `top --json`.
fn top_json(endpoint: &str, m: &TopMetrics) -> String {
    format!(
        "{{\"endpoint\":\"{}\",\"requests_total\":{},\"requests_per_s\":{:.3},\
         \"blocks_per_s\":{:.3},\"cache_hit_rate\":{:.4},\"read_p50_us\":{},\
         \"read_p99_us\":{},\"in_flight\":{},\"shed_total\":{},\"shed_per_s\":{:.3},\
         \"draining\":{},\"scrapes\":{},\"journal_events\":{},\"journal_drops\":{}}}",
        endpoint.replace('\\', "\\\\").replace('"', "\\\""),
        m.requests_total,
        m.requests_per_s,
        m.blocks_per_s,
        m.cache_hit_rate,
        m.read_p50_us,
        m.read_p99_us,
        m.in_flight,
        m.shed_total,
        m.shed_per_s,
        m.draining,
        m.scrapes,
        m.journal_events,
        m.journal_drops,
    )
}

/// The human dashboard block for one tick (plain text, fixed shape —
/// one redraw per tick, no terminal control sequences).
fn top_text(endpoint: &str, tick: usize, m: &TopMetrics) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "pastri top — {endpoint} (tick {tick})");
    let _ = writeln!(
        s,
        "  requests   {:>10} total   {:>9.1}/s    blocks {:>9.1}/s",
        m.requests_total, m.requests_per_s, m.blocks_per_s
    );
    let _ = writeln!(s, "  cache      {:>9.1}% hit rate", m.cache_hit_rate * 100.0);
    let _ = writeln!(
        s,
        "  read       p50 {:>8} us   p99 {:>8} us",
        m.read_p50_us, m.read_p99_us
    );
    let _ = writeln!(
        s,
        "  admission  {} in flight   {} shed ({:.1}/s)   {}",
        m.in_flight,
        m.shed_total,
        m.shed_per_s,
        if m.draining { "DRAINING" } else { "serving" }
    );
    let _ = writeln!(
        s,
        "  journal    {} event(s) in ring, {} drop(s)   scrapes {}",
        m.journal_events, m.journal_drops, m.scrapes
    );
    s
}

/// `pastri top <endpoint>` — live dashboard over TelemetrySnapshot
/// scrapes: polls a v3 `serve --listen` endpoint, computes deltas and
/// rates between consecutive snapshots, and prints one plain-text
/// block per tick. `--once` takes a single scrape (rates over the
/// server's span horizon); `--json` emits one JSON object per tick for
/// scripts and tests. The scrape rides admission at priority ≥ 1
/// server-side, so `top` keeps answering while the server sheds load.
pub fn top(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let endpoint = args.positional(0, "endpoint")?;
    let ep = eri_server::Endpoint::parse(endpoint)
        .map_err(|e| CliError::new(format!("<endpoint>: {e}")))?;
    let interval = std::time::Duration::from_millis(
        args.get_usize("interval-ms", 1000)?.max(10) as u64,
    );
    let once = args.switch("once");
    let json = args.switch("json");
    let count = args.get_usize("count", 0)?; // 0 = until interrupted
    let cfg = eri_server::ClientConfig {
        deadline: std::time::Duration::from_millis(
            args.get_usize("deadline-ms", 2000)?.max(1) as u64,
        ),
        // A monitor must keep probing an ailing server, never gate
        // itself out of observing the incident.
        breaker: None,
        ..Default::default()
    };
    let mut client = eri_server::RemoteClient::connect(&[ep], cfg).map_err(client_err)?;
    if client.negotiated_version() < 3 {
        return Err(CliError::new(format!(
            "top: server speaks protocol v{} (telemetry scraping needs v3)",
            client.negotiated_version()
        )));
    }
    let scrape = |client: &mut eri_server::RemoteClient| -> Result<telemetry::Snapshot, CliError> {
        let bytes = client.server_telemetry().map_err(client_err)?;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        telemetry::export::from_json_lines(&text)
            .map_err(|e| CliError::new(format!("top: telemetry scrape: {e}")))
    };
    let mut prev: Option<(std::time::Instant, telemetry::Snapshot)> = None;
    let mut tick = 0usize;
    loop {
        let now = std::time::Instant::now();
        let snap = scrape(&mut client)?;
        if once || prev.is_some() {
            tick += 1;
            let (dt, prev_snap) = match &prev {
                Some((t, p)) => (now.duration_since(*t).as_secs_f64(), Some(p)),
                None => (interval.as_secs_f64(), None),
            };
            let m = top_metrics(prev_snap, &snap, dt);
            if json {
                writeln!(out, "{}", top_json(endpoint, &m))?;
            } else {
                write!(out, "{}", top_text(endpoint, tick, &m))?;
            }
            out.flush()?;
        }
        if once || (count > 0 && tick >= count) {
            return Ok(());
        }
        prev = Some((now, snap));
        std::thread::sleep(interval);
    }
}

/// `pastri trace --merge <a.jsonl> <b.jsonl>... [--out merged.json]` —
/// joins telemetry JSON-lines exports from different processes (a
/// `fetch --telemetry json` capture and the serving side's scrape or
/// capture) into one Chrome trace. Each input gets its own pid lane;
/// spans stamped with the same wire-propagated trace id line up across
/// lanes, which is the whole point: one timeline for one request's
/// journey through retries, sheds, and the server's cache and store.
pub fn trace_cmd(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    // `--merge a.jsonl b.jsonl`: the parser binds the first path to the
    // flag and leaves the rest positional — gather both.
    let mut inputs: Vec<String> = args.get_all("merge").iter().map(|s| (*s).to_string()).collect();
    inputs.extend(args.positional.iter().cloned());
    if inputs.is_empty() {
        return Err(CliError::new(
            "usage: pastri trace --merge <client.jsonl> <server.jsonl> [--out merged.json]",
        ));
    }
    let mut snaps = Vec::new();
    for path in &inputs {
        let text = fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("reading {path}: {e}")))?;
        snaps.push(
            telemetry::export::from_json_lines(&text)
                .map_err(|e| CliError::new(format!("{path}: {e}")))?,
        );
    }
    let with_pids: Vec<(&telemetry::Snapshot, u64)> =
        snaps.iter().zip(1u64..).map(|(s, pid)| (s, pid)).collect();
    let merged = telemetry::export::chrome_merged(&with_pids);
    // Join accounting: a trace id seen in more than one input is a
    // request correlated across processes — the merge's reason to exist.
    use std::collections::{HashMap, HashSet};
    let mut seen: HashMap<u64, HashSet<usize>> = HashMap::new();
    for (i, s) in snaps.iter().enumerate() {
        for sp in &s.spans {
            if sp.trace != 0 {
                seen.entry(sp.trace).or_default().insert(i);
            }
        }
        for ev in &s.events {
            if ev.trace != 0 {
                seen.entry(ev.trace).or_default().insert(i);
            }
        }
    }
    let joined = seen.values().filter(|v| v.len() > 1).count();
    match args.get("out") {
        Some(path) => {
            fs::write(path, &merged)
                .map_err(|e| CliError::new(format!("writing {path}: {e}")))?;
            writeln!(
                out,
                "trace: merged {} export(s) into {path}: {} trace id(s), {} joined across \
                 processes",
                inputs.len(),
                seen.len(),
                joined
            )?;
        }
        None => out.write_all(merged.as_bytes())?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pastri-cli-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir
    }

    fn sv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn span_drop_warning_fires_only_when_records_were_dropped() {
        let mut snap = telemetry::Snapshot::default();
        assert_eq!(span_drop_warning(&snap), None, "clean capture: no warning");

        snap.spans_dropped = 1234;
        let warning = span_drop_warning(&snap).expect("drops must warn");
        assert!(warning.contains("1234"), "{warning}");
        assert!(
            warning.contains(&telemetry::span_capacity().to_string()),
            "warning names the cap: {warning}"
        );
        assert!(
            warning.contains("counters and histograms remain complete"),
            "warning scopes the loss to the span timeline: {warning}"
        );
    }

    #[test]
    fn gen_compress_decompress_assess_cycle() {
        let dir = tmpdir();
        let raw = dir.join("data.f64").to_string_lossy().into_owned();
        let comp = dir.join("data.pastri").to_string_lossy().into_owned();
        let back = dir.join("back.f64").to_string_lossy().into_owned();
        let mut out = Vec::new();

        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "5", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[&raw, &comp, "--config", "(dd|dd)", "--eb", "1e-10"]),
            &mut out,
        )
        .unwrap();
        decompress(&sv(&[&comp, &back]), &mut out).unwrap();
        assess(&sv(&[&raw, &back]), &mut out).unwrap();
        inspect(&sv(&[&comp]), &mut out).unwrap();

        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ratio"), "{text}");
        assert!(text.contains("max abs err"), "{text}");
        assert!(text.contains("valid PaSTRI container"), "{text}");

        // The round trip respects the bound.
        let orig = read_f64_file(&raw).unwrap();
        let dec = read_f64_file(&back).unwrap();
        for (a, b) in orig.iter().zip(&dec) {
            assert!((a - b).abs() <= 1e-10);
        }
    }

    #[test]
    fn streamed_compress_roundtrips() {
        let dir = tmpdir();
        let raw = dir.join("s.f64").to_string_lossy().into_owned();
        let comp = dir.join("s.pstrs").to_string_lossy().into_owned();
        let back = dir.join("s-back.f64").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "9", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[
                &raw, &comp, "--config", "dddd", "--stream", "--segment-blocks", "4",
            ]),
            &mut out,
        )
        .unwrap();
        decompress(&sv(&[&comp, &back]), &mut out).unwrap();
        let orig = read_f64_file(&raw).unwrap();
        let dec = read_f64_file(&back).unwrap();
        assert_eq!(orig.len(), dec.len());
        for (a, b) in orig.iter().zip(&dec) {
            assert!((a - b).abs() <= 1e-10);
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("streamed"), "{text}");
    }

    #[test]
    fn threads_flag_output_is_byte_identical() {
        let dir = tmpdir();
        let raw = dir.join("t.f64").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "9", "--model"]),
            &mut out,
        )
        .unwrap();
        // Container and stream outputs must not depend on --threads.
        for stream in [false, true] {
            let mut baseline: Option<Vec<u8>> = None;
            for threads in ["1", "2", "8"] {
                let comp = dir
                    .join(format!("t-{stream}-{threads}.out"))
                    .to_string_lossy()
                    .into_owned();
                let mut argv = vec![
                    raw.clone(),
                    comp.clone(),
                    "--config".into(),
                    "dddd".into(),
                    "--threads".into(),
                    threads.into(),
                ];
                if stream {
                    argv.extend(["--stream".into(), "--segment-blocks".into(), "2".into()]);
                }
                compress(&argv, &mut out).unwrap();
                let bytes = fs::read(&comp).unwrap();
                match &baseline {
                    None => baseline = Some(bytes),
                    Some(b) => assert_eq!(&bytes, b, "stream={stream} threads={threads}"),
                }
            }
        }
    }

    /// LEB128 varint at `pos`; returns (value, offset past it).
    fn read_varint_at(bytes: &[u8], mut pos: usize) -> (usize, usize) {
        let mut v = 0usize;
        let mut shift = 0;
        loop {
            let b = bytes[pos];
            pos += 1;
            v |= ((b & 0x7f) as usize) << shift;
            if b & 0x80 == 0 {
                return (v, pos);
            }
            shift += 7;
        }
    }

    #[test]
    fn verify_and_salvage_damaged_stream() {
        let dir = tmpdir();
        let raw = dir.join("v.f64").to_string_lossy().into_owned();
        let comp = dir.join("v.pstrs").to_string_lossy().into_owned();
        let fixed = dir.join("v-fixed.pstrs").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "8", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[
                &raw, &comp, "--config", "dddd", "--stream", "--segment-blocks", "2",
            ]),
            &mut out,
        )
        .unwrap();

        // Clean stream verifies with exit 0.
        verify(&sv(&[&comp]), &mut Vec::new()).unwrap();

        // Flip one bit deep inside the first segment's container (walk
        // the stream framing: "PSTRS" + version byte, then varint len).
        let clean = fs::read(&comp).unwrap();
        let (seg_len, seg_start) = read_varint_at(&clean, 6);
        let mut bytes = clean.clone();
        bytes[seg_start + seg_len / 2] ^= 0x10;
        fs::write(&comp, &bytes).unwrap();

        // Damaged stream: verify fails with a damage report and the
        // documented corruption exit code — even though the damage is
        // repairable, the bytes on disk are not what was written.
        let mut report = Vec::new();
        let err = verify(&sv(&[&comp]), &mut report).unwrap_err();
        assert!(err.message.contains("damaged"), "{}", err.message);
        assert_eq!(err.code, 2, "verify damage is exit code 2");
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("segment"), "{text}");
        assert!(text.contains("repairable"), "{text}");

        // Salvage heals the damaged segment from parity: nothing was
        // lost, so the exit code is 0, and the output is byte-identical
        // to the stream as originally written.
        let mut out = Vec::new();
        salvage(&sv(&[&comp, &fixed]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("repaired 1"), "{text}");
        assert_eq!(fs::read(&fixed).unwrap(), clean, "salvage heals to original bytes");
        verify(&sv(&[&fixed]), &mut Vec::new()).unwrap();

        // Salvaging the already-clean output repairs/drops nothing.
        let refixed = dir.join("v-refixed.pstrs").to_string_lossy().into_owned();
        salvage(&sv(&[&fixed, &refixed]), &mut Vec::new()).unwrap();

        // Truncation loses real data: salvage reports it with exit 2 but
        // still writes an output that verifies clean.
        let torn = dir.join("v-torn.pstrs").to_string_lossy().into_owned();
        let cut = dir.join("v-cut.pstrs").to_string_lossy().into_owned();
        fs::write(&torn, &clean[..clean.len() - 12]).unwrap();
        let mut out = Vec::new();
        let err = salvage(&sv(&[&torn, &cut]), &mut out).unwrap_err();
        assert_eq!(err.code, 2, "lossy salvage is exit code 2");
        verify(&sv(&[&cut]), &mut Vec::new()).unwrap();
    }

    #[test]
    fn exit_codes_follow_the_documented_contract() {
        let dir = tmpdir();
        // Missing file: I/O error, code 1.
        let missing = dir.join("nope.pstrs").to_string_lossy().into_owned();
        let err = verify(&sv(&[&missing]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 1);
        // Unknown magic: usage/format error, code 1 (not corruption —
        // the file was never claimed to be a PaSTRI artifact).
        let junk = dir.join("junk2.bin").to_string_lossy().into_owned();
        fs::write(&junk, b"something else entirely").unwrap();
        let err = verify(&sv(&[&junk]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 1);
        // Damage in a recognized container: code 2.
        let raw = dir.join("ec.f64").to_string_lossy().into_owned();
        let comp = dir.join("ec.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "4", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        let mut bytes = fs::read(&comp).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0x01;
        fs::write(&comp, &bytes).unwrap();
        let err = verify(&sv(&[&comp]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn stream_compress_resumes_after_interruption() {
        let dir = tmpdir();
        let raw = dir.join("r.f64").to_string_lossy().into_owned();
        let full = dir.join("r-full.pstrs").to_string_lossy().into_owned();
        let part = dir.join("r-part.pstrs").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "24", "--model"]),
            &mut out,
        )
        .unwrap();
        let stream_flags = [
            "--config",
            "dddd",
            "--stream",
            "--segment-blocks",
            "2",
            "--checkpoint-every",
            "2",
        ];
        // Reference: one uninterrupted run.
        let mut argv = sv(&[&raw, &full]);
        argv.extend(sv(&stream_flags));
        compress(&argv, &mut out).unwrap();

        // Interrupted run: feed a prefix through the durable writer and
        // "crash" (drop without finish), leaving artifact + journal.
        {
            let config = qchem::basis::BfConfig::parse("dddd").unwrap();
            let compressor = Compressor::new(BlockGeometry::from_dims(config.dims()), 1e-10);
            let mut w = pastri::durable_stream::DurableFileWriter::create(
                std::path::Path::new(&part),
                compressor,
                2,
                2,
            )
            .unwrap();
            let values = read_f64_file(&raw).unwrap();
            w.write_values(&values[..values.len() / 2]).unwrap();
            assert!(w.checkpoint().values > 0, "some batch must have committed");
        }
        // Resume through the CLI: byte-identical to the clean run.
        let mut resumed_out = Vec::new();
        let mut argv = sv(&[&raw, &part]);
        argv.extend(sv(&stream_flags));
        argv.push("--resume".into());
        compress(&argv, &mut resumed_out).unwrap();
        assert_eq!(fs::read(&part).unwrap(), fs::read(&full).unwrap());
        let text = String::from_utf8(resumed_out).unwrap();
        assert!(text.contains("resumed at value"), "{text}");
        // The journal is gone: the artifact is marked complete.
        assert!(!durable::journal_path(std::path::Path::new(&part)).exists());
        verify(&sv(&[&part]), &mut Vec::new()).unwrap();
    }

    #[test]
    fn verify_dispatches_on_container_magic() {
        let dir = tmpdir();
        let raw = dir.join("c.f64").to_string_lossy().into_owned();
        let comp = dir.join("c.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "4", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        verify(&sv(&[&comp]), &mut Vec::new()).unwrap();

        // Damage near the end lands in the parity section: the data is
        // intact, but verify must still flag the file as damaged.
        let mut bytes = fs::read(&comp).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0x01;
        fs::write(&comp, &bytes).unwrap();
        let mut report = Vec::new();
        let err = verify(&sv(&[&comp]), &mut report).unwrap_err();
        assert!(err.message.contains("damaged"), "{}", err.message);
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("block"), "{text}");

        // Damage a block payload proper: verify must name the block and
        // classify it repairable.
        let clean = {
            bytes[last] ^= 0x01;
            bytes.clone()
        };
        let info = pastri::inspect(&clean).unwrap();
        let parity_start = info.container_bytes - info.parity_bytes as usize;
        bytes[parity_start - 4] ^= 0x01; // tail of the last block's frame
        fs::write(&comp, &bytes).unwrap();
        let mut report = Vec::new();
        let err = verify(&sv(&[&comp]), &mut report).unwrap_err();
        assert_eq!(err.code, 2);
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("repairable from parity"), "{text}");
    }

    #[test]
    fn scrub_heals_container_in_place() {
        let dir = tmpdir();
        let raw = dir.join("sc.f64").to_string_lossy().into_owned();
        let comp = dir.join("sc.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "6", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        let clean = fs::read(&comp).unwrap();

        // Clean file: scrub is a no-op with exit 0.
        let mut report = Vec::new();
        scrub(&sv(&[&comp]), &mut report).unwrap();
        assert!(String::from_utf8(report).unwrap().contains("clean"));

        // Flip a byte in a block payload.
        let info = pastri::inspect(&clean).unwrap();
        let parity_start = info.container_bytes - info.parity_bytes as usize;
        let mut bytes = clean.clone();
        bytes[parity_start - 4] ^= 0x40;
        fs::write(&comp, &bytes).unwrap();

        // Without --repair: detect-only, exit 2, file untouched.
        let err = scrub(&sv(&[&comp]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--repair"), "{}", err.message);
        assert_eq!(fs::read(&comp).unwrap(), bytes, "detect-only must not modify");

        // With --repair: healed in place, byte-identical, exit 0.
        let mut report = Vec::new();
        scrub(&sv(&[&comp, "--repair"]), &mut report).unwrap();
        assert!(String::from_utf8(report).unwrap().contains("repaired in place"));
        assert_eq!(fs::read(&comp).unwrap(), clean, "repair restores original bytes");
        verify(&sv(&[&comp]), &mut Vec::new()).unwrap();
    }

    #[test]
    fn scrub_quarantines_unrepairable_container() {
        let dir = tmpdir();
        let raw = dir.join("sq.f64").to_string_lossy().into_owned();
        let comp = dir.join("sq.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "6", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        let clean = fs::read(&comp).unwrap();

        // Damage three block payloads in the same parity group: one more
        // than the two-shard budget covers. (Offsets point at each
        // block's framing; +8 is safely inside the payload proper.)
        let decoded = pastri::decompress_lossy(&clean).unwrap();
        let mut bytes = clean.clone();
        for o in decoded.outcomes.iter().take(3) {
            bytes[o.offset as usize + 8] ^= 0x40;
        }
        fs::write(&comp, &bytes).unwrap();

        let mut report = Vec::new();
        let err = scrub(&sv(&[&comp, "--repair"]), &mut report).unwrap_err();
        assert_eq!(err.code, 2, "unrepairable damage is exit 2");
        assert!(err.message.contains("beyond the parity budget"), "{}", err.message);
        // The damaged original is quarantined before any rewrite.
        let q = format!("{comp}.quarantine");
        assert_eq!(fs::read(&q).unwrap(), bytes, "quarantine preserves the damage");
    }

    #[test]
    fn scrub_heals_stream_and_store_in_place() {
        let dir = tmpdir();
        let raw = dir.join("ss.f64").to_string_lossy().into_owned();
        let comp = dir.join("ss.pstrs").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "8", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[
                &raw, &comp, "--config", "dddd", "--stream", "--segment-blocks", "2",
            ]),
            &mut out,
        )
        .unwrap();
        let clean = fs::read(&comp).unwrap();
        scrub(&sv(&[&comp]), &mut Vec::new()).unwrap();

        // Flip deep inside the first segment, then heal in place.
        let (seg_len, seg_start) = read_varint_at(&clean, 6);
        let mut bytes = clean.clone();
        bytes[seg_start + seg_len / 2] ^= 0x20;
        fs::write(&comp, &bytes).unwrap();
        let err = scrub(&sv(&[&comp]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
        let mut report = Vec::new();
        scrub(&sv(&[&comp, "--repair"]), &mut report).unwrap();
        assert!(String::from_utf8(report).unwrap().contains("repaired in place"));
        assert_eq!(fs::read(&comp).unwrap(), clean);
        verify(&sv(&[&comp]), &mut Vec::new()).unwrap();

        // Same cycle for an ERI store: flip inside the first block's
        // parity shards (located by walking the container prefix).
        let store_path = dir.join("ss.eristore");
        let geom = pastri::BlockGeometry::new(4, 9);
        let mut w = eri_store::StoreWriter::create(&store_path, geom, 1e-10).unwrap();
        let values: Vec<f64> = (0..geom.block_size() * 5)
            .map(|i| ((i % 53) as f64 * 0.23).sin() * 2e-6)
            .collect();
        w.append_blocks(&values).unwrap();
        w.finish().unwrap();
        let store = store_path.to_string_lossy().into_owned();
        let clean = fs::read(&store_path).unwrap();
        scrub(&sv(&[&store]), &mut Vec::new()).unwrap();

        const STORE_HEADER: usize = 52;
        let (_, first_len) = pastri::inspect_prefix(&clean[STORE_HEADER..]).unwrap();
        let mut bytes = clean.clone();
        bytes[STORE_HEADER + first_len - 9] ^= 0x04;
        fs::write(&store_path, &bytes).unwrap();
        let err = scrub(&sv(&[&store]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
        let mut report = Vec::new();
        scrub(&sv(&[&store, "--repair"]), &mut report).unwrap();
        assert!(String::from_utf8(report).unwrap().contains("repaired in place"));
        assert_eq!(fs::read(&store_path).unwrap(), clean);
        verify(&sv(&[&store]), &mut Vec::new()).unwrap();
    }

    #[test]
    fn verify_rejects_unknown_magic() {
        let dir = tmpdir();
        let path = dir.join("junk.bin").to_string_lossy().into_owned();
        fs::write(&path, b"not a pastri artifact").unwrap();
        let err = verify(&sv(&[&path]), &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("unknown magic"), "{}", err.message);
    }

    #[test]
    fn missing_config_is_friendly() {
        let dir = tmpdir();
        let raw = dir.join("x.f64").to_string_lossy().into_owned();
        fs::write(&raw, [0u8; 16]).unwrap();
        let err = compress(&sv(&[&raw, "out.pastri"]), &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("--config"));
    }

    #[test]
    fn bad_f64_file_rejected() {
        let dir = tmpdir();
        let raw = dir.join("bad.f64").to_string_lossy().into_owned();
        fs::write(&raw, [1u8; 13]).unwrap();
        let err = read_f64_file(&raw).unwrap_err();
        assert!(err.message.contains("multiple of 8"));
    }

    /// Serializes tests that enable the process-global telemetry
    /// recorder, so captures don't bleed into each other.
    static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn telemetry_flags_capture_and_report() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = tmpdir();
        let raw = dir.join("tel.f64").to_string_lossy().into_owned();
        let comp = dir.join("tel.pastri").to_string_lossy().into_owned();
        let back = dir.join("tel-back.f64").to_string_lossy().into_owned();
        let jsonl = dir.join("tel.jsonl").to_string_lossy().into_owned();
        let trace = dir.join("tel.trace.json").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "6", "--model"]),
            &mut out,
        )
        .unwrap();

        // Summary to stdout: the span tree names the compressor stages.
        let mut sum_out = Vec::new();
        compress(
            &sv(&[&raw, &comp, "--config", "dddd", "--telemetry", "summary"]),
            &mut sum_out,
        )
        .unwrap();
        let text = String::from_utf8(sum_out).unwrap();
        assert!(text.contains("compress.container"), "{text}");
        assert!(text.contains("compress.block"), "{text}");
        assert!(!telemetry::is_enabled(), "capture must disable the recorder");

        // JSON lines to a file, then `pastri report` re-renders them.
        compress(
            &sv(&[
                &raw, &comp, "--config", "dddd", "--telemetry", "json",
                "--telemetry-out", &jsonl,
            ]),
            &mut Vec::new(),
        )
        .unwrap();
        let mut rep_out = Vec::new();
        report(&sv(&[&jsonl]), &mut rep_out).unwrap();
        let text = String::from_utf8(rep_out).unwrap();
        assert!(text.contains("compress.container"), "{text}");

        // Chrome trace from decompress: structurally valid trace-event JSON.
        decompress(
            &sv(&[&comp, &back, "--telemetry", "chrome", "--telemetry-out", &trace]),
            &mut Vec::new(),
        )
        .unwrap();
        let trace_text = fs::read_to_string(&trace).unwrap();
        assert!(trace_text.trim_start().starts_with('['), "{trace_text}");
        assert!(trace_text.contains("decompress.container"), "{trace_text}");

        // Scrub accepts the flag too (clean file: empty-ish capture is fine).
        let mut scrub_out = Vec::new();
        scrub(&sv(&[&comp, "--telemetry", "summary"]), &mut scrub_out).unwrap();

        // Unknown format is a usage error.
        let err = compress(
            &sv(&[&raw, &comp, "--config", "dddd", "--telemetry", "xml"]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.message.contains("telemetry"), "{}", err.message);
        assert!(!telemetry::is_enabled());
    }

    #[test]
    fn inspect_prints_storage_breakdown() {
        let dir = tmpdir();
        let raw = dir.join("ib.f64").to_string_lossy().into_owned();
        let comp = dir.join("ib.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "6", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        let mut ins_out = Vec::new();
        inspect(&sv(&[&comp]), &mut ins_out).unwrap();
        let text = String::from_utf8(ins_out).unwrap();
        assert!(text.contains("storage:"), "{text}");
        assert!(text.contains("ecq"), "{text}");
        assert!(text.contains("bits ("), "{text}");
        assert!(text.contains('%'), "{text}");
        // The printed raw bits must match the wire-walk accounting.
        let stats = pastri::container_bit_stats(&fs::read(&comp).unwrap()).unwrap();
        assert!(text.contains(&format!("ecq {} bits", stats.ecq_bits)), "{text}");
    }

    #[test]
    fn metric_and_tree_flags() {
        let args = Args::parse(&sv(&["--metric", "aar", "--tree", "3"])).unwrap();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.metric, ScalingMetric::Aar);
        assert_eq!(opts.tree, EncodingTree::Tree3);
        let args = Args::parse(&sv(&["--metric", "nope"])).unwrap();
        assert!(parse_options(&args).is_err());
    }
}
