//! Subcommand implementations.

use std::fs;
use std::io::Write;

use pastri::{BlockGeometry, Compressor, CompressorOptions, EncodingTree, ScalingMetric};
use qchem::basis::BfConfig;
use qchem::dataset::{DatasetSpec, EriDataset};
use qchem::molecule::Molecule;

use crate::args::Args;
use crate::CliError;

/// Reads a raw little-endian f64 file.
fn read_f64_file(path: &str) -> Result<Vec<f64>, CliError> {
    let bytes = fs::read(path).map_err(|e| CliError::new(format!("reading {path}: {e}")))?;
    if bytes.len() % 8 != 0 {
        return Err(CliError::new(format!(
            "{path}: length {} is not a multiple of 8 (expected raw f64)",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Writes a raw little-endian f64 file atomically (temp + fsync +
/// rename): a crash mid-write never leaves a half-written artifact.
fn write_f64_file(path: &str, values: &[f64]) -> Result<(), CliError> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    durable::atomic_write(std::path::Path::new(path), &bytes)
        .map_err(|e| CliError::new(format!("writing {path}: {e}")))
}

fn parse_config(args: &Args) -> Result<BfConfig, CliError> {
    let raw = args
        .get("config")
        .ok_or_else(|| CliError::new("--config is required (e.g. --config '(dd|dd)')"))?;
    BfConfig::parse(raw)
        .ok_or_else(|| CliError::new(format!("--config: `{raw}` is not a BF configuration")))
}

fn parse_options(args: &Args) -> Result<CompressorOptions, CliError> {
    let metric = match args.get("metric").unwrap_or("ER").to_ascii_uppercase().as_str() {
        "FR" => ScalingMetric::Fr,
        "ER" => ScalingMetric::Er,
        "AR" => ScalingMetric::Ar,
        "AAR" => ScalingMetric::Aar,
        "IS" => ScalingMetric::Is,
        other => return Err(CliError::new(format!("--metric: unknown metric `{other}`"))),
    };
    let tree = match args.get("tree").unwrap_or("5") {
        "1" => EncodingTree::Tree1,
        "2" => EncodingTree::Tree2,
        "3" => EncodingTree::Tree3,
        "4" => EncodingTree::Tree4,
        "5" => EncodingTree::Tree5,
        "fixed" => EncodingTree::FixedLength,
        other => return Err(CliError::new(format!("--tree: unknown tree `{other}`"))),
    };
    Ok(CompressorOptions {
        metric,
        tree,
        ..Default::default()
    })
}

/// `pastri compress <in.f64> <out.pastri> --config ... [--eb ...]
/// [--threads N] [--stream [--segment-blocks B] [--checkpoint-every N]
/// [--resume]]`.
pub fn compress(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "in.f64")?;
    let output = args.positional(1, "out.pastri")?;
    let config = parse_config(&args)?;
    let eb = args.get_f64("eb", 1e-10)?;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(CliError::new("--eb must be finite and > 0"));
    }
    // 0 = auto (RAYON_NUM_THREADS, then available parallelism). Output is
    // byte-identical at every thread count.
    let threads = args.get_usize("threads", 0)?;
    let compressor = Compressor::with_options(
        BlockGeometry::from_dims(config.dims()),
        eb,
        parse_options(&args)?,
    );
    if args.switch("stream") {
        // Bounded-memory, crash-safe path: read/compress/write segment
        // by segment through a durable writer that fsyncs checkpointed
        // batches and seals each in a `<out>.journal` record. `--resume`
        // picks an interrupted run back up at its last checkpoint.
        let segment_blocks = args.get_usize("segment-blocks", 64)?.max(1);
        let checkpoint_every = args.get_usize("checkpoint-every", 16)?.max(1);
        let resume = args.switch("resume");
        let run = || -> Result<(u64, u64), CliError> {
            let out_path = std::path::Path::new(output);
            let mut writer = if resume {
                pastri::durable_stream::DurableFileWriter::resume(
                    out_path,
                    compressor,
                    segment_blocks,
                    checkpoint_every,
                )
            } else {
                pastri::durable_stream::DurableFileWriter::create(
                    out_path,
                    compressor,
                    segment_blocks,
                    checkpoint_every,
                )
            }
            .map_err(|e| CliError::new(format!("{output}: {e}")))?;
            // Values already durable from the interrupted run: skip them
            // in the input so the finished stream is byte-identical to
            // an uninterrupted one.
            let skipped = writer.checkpoint().values;
            let mut infile =
                fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
            if skipped > 0 {
                use std::io::Seek;
                infile
                    .seek(std::io::SeekFrom::Start(skipped * 8))
                    .map_err(|e| CliError::new(format!("{input}: {e}")))?;
            }
            let mut reader = std::io::BufReader::new(infile);
            let mut buf = vec![0u8; config.block_size() * 8];
            let mut total_in = skipped * 8;
            loop {
                let n = read_chunk(&mut reader, &mut buf)?;
                if n == 0 {
                    break;
                }
                if n % 8 != 0 {
                    return Err(CliError::new(format!(
                        "{input}: length is not a multiple of 8 (raw f64 expected)"
                    )));
                }
                let values: Vec<f64> = buf[..n]
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                total_in += n as u64;
                writer.write_values(&values)?;
            }
            writer.finish()?;
            Ok((total_in, skipped))
        };
        // `--threads N` pins the batch-compression crew; 0 = auto.
        let (total_in, skipped) = if threads > 0 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| CliError::new(format!("thread pool: {e}")))?;
            pool.install(run)?
        } else {
            run()?
        };
        let out_len = fs::metadata(output)?.len();
        let resumed = if skipped > 0 {
            format!(", resumed at value {skipped}")
        } else {
            String::new()
        };
        writeln!(
            out,
            "{input} -> {output} (streamed, durable{resumed}): {total_in} -> {out_len} bytes (ratio {:.2}x, EB {eb:.1e})",
            total_in as f64 / out_len as f64
        )?;
        return Ok(());
    }
    let data = read_f64_file(input)?;
    let (bytes, stats) = if threads > 0 {
        // Pin the in-memory fan-out's crew size for this compression.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| CliError::new(format!("thread pool: {e}")))?;
        pool.install(|| compressor.compress_with_stats(&data))
    } else {
        compressor.compress_with_stats(&data)
    };
    durable::atomic_write(std::path::Path::new(output), &bytes)
        .map_err(|e| CliError::new(format!("writing {output}: {e}")))?;
    writeln!(
        out,
        "{} -> {}: {} -> {} bytes (ratio {:.2}x, {:.2} bits/value, EB {:.1e})",
        input,
        output,
        data.len() * 8,
        bytes.len(),
        stats.compression_ratio(),
        stats.bitrate(),
        eb
    )?;
    Ok(())
}

/// Fills `buf` as far as possible; returns bytes read (0 at EOF).
fn read_chunk(r: &mut impl std::io::Read, buf: &mut [u8]) -> Result<usize, CliError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r
            .read(&mut buf[filled..])
            .map_err(|e| CliError::new(format!("read error: {e}")))?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// `pastri decompress <in.pastri> <out.f64>`.
pub fn decompress(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "in.pastri")?;
    let output = args.positional(1, "out.f64")?;
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    // Auto-detect the streamed ("PSTRS") vs single-container ("PSTR")
    // format by magic.
    let values = if bytes.starts_with(b"PSTRS") {
        pastri::stream::StreamReader::new(bytes.as_slice())
            .and_then(pastri::stream::StreamReader::read_to_vec)
            .map_err(|e| CliError::new(format!("{input}: {e}")))?
    } else {
        pastri::decompress(&bytes).map_err(|e| CliError::new(format!("{input}: {e}")))?
    };
    write_f64_file(output, &values)?;
    writeln!(
        out,
        "{} -> {}: {} values ({} bytes)",
        input,
        output,
        values.len(),
        values.len() * 8
    )?;
    Ok(())
}

/// `pastri inspect <in.pastri>`: header metadata + per-kind block census
/// via the cheap O(blocks) inspection API — no value is decoded.
pub fn inspect(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "in.pastri")?;
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    let info = pastri::inspect(&bytes).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    writeln!(
        out,
        "{input}: valid PaSTRI container, {} bytes, {} values ({:.2}x vs raw)",
        info.container_bytes,
        info.original_len,
        info.compression_ratio()
    )?;
    writeln!(
        out,
        "  error bound {:.1e}, geometry {}x{} ({} points/block), {} blocks, tree {}",
        info.error_bound,
        info.geometry.num_subblocks,
        info.geometry.subblock_size,
        info.geometry.block_size(),
        info.num_blocks,
        info.tree.name()
    )?;
    let kinds = ["all-zero", "pattern-only", "dense", "sparse", "verbatim"];
    let census: Vec<String> = kinds
        .iter()
        .zip(info.kind_counts.iter())
        .filter(|(_, &c)| c > 0)
        .map(|(k, c)| format!("{k} {c}"))
        .collect();
    writeln!(out, "  blocks: {}", census.join(", "))?;
    Ok(())
}

/// `pastri verify <file>`: scan any PaSTRI artifact — a single container
/// (`PSTR`), a stream (`PSTRS`), or an eri-store (`ERISTOR1/2`) — and
/// print a per-block/segment damage report. Exit codes are the scripting
/// contract: 0 clean, 2 when damage is found in a recognized artifact,
/// 1 for I/O trouble or an unrecognized format.
pub fn verify(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "file")?;
    let mut magic = [0u8; 8];
    {
        use std::io::Read;
        let mut f = fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
        let n = f.read(&mut magic).map_err(|e| CliError::new(format!("{input}: {e}")))?;
        magic[n..].fill(0);
    }
    if magic.starts_with(b"ERISTOR") {
        verify_store(input, out)
    } else if magic.starts_with(b"PSTRS") {
        verify_stream(input, out)
    } else if magic.starts_with(b"PSTR") {
        verify_container(input, out)
    } else {
        Err(CliError::new(format!(
            "{input}: not a PaSTRI container, stream, or store (unknown magic)"
        )))
    }
}

fn damage_verdict(input: &str, damaged: usize, total: usize, unit: &str) -> Result<(), CliError> {
    if damaged == 0 {
        Ok(())
    } else {
        Err(CliError::corruption(format!(
            "{input}: {damaged} of {total} {unit}(s) damaged"
        )))
    }
}

fn verify_container(input: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let bytes = fs::read(input).map_err(|e| CliError::new(format!("reading {input}: {e}")))?;
    let decoded = pastri::decompress_lossy(&bytes)
        .map_err(|e| CliError::corruption(format!("{input}: unrecoverable header damage: {e}")))?;
    let total = decoded.outcomes.len();
    writeln!(
        out,
        "{input}: PaSTRI container, {} blocks, {} damaged",
        total,
        decoded.damaged()
    )?;
    for o in &decoded.outcomes {
        if let Some(e) = &o.error {
            writeln!(out, "  block {} (offset {}): {e}", o.block, o.offset)?;
        }
    }
    damage_verdict(input, decoded.damaged(), total, "block")
}

fn verify_stream(input: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let file = fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let mut reader = pastri::stream::StreamReader::new(std::io::BufReader::new(file))
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    let mut damaged: Vec<String> = Vec::new();
    let mut total = 0usize;
    let mut tail_lost = false;
    loop {
        match reader.next_segment_or_skip() {
            Ok(Some(seg)) => {
                total += 1;
                if let Err(e) = &seg.values {
                    damaged.push(format!("  segment {}: {e}", seg.index));
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Framing damage: the rest of the stream is unreadable.
                damaged.push(format!("  segment {total}: framing lost ({e})"));
                tail_lost = true;
                break;
            }
        }
    }
    writeln!(
        out,
        "{input}: PaSTRI stream, {total} segment(s) scanned, {} damaged{}",
        damaged.len(),
        if tail_lost { ", tail unreadable" } else { "" }
    )?;
    for line in &damaged {
        writeln!(out, "{line}")?;
    }
    damage_verdict(input, damaged.len(), total.max(damaged.len()), "segment")
}

fn verify_store(input: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let mut store = eri_store::StoreReader::open(std::path::Path::new(input))
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    let report = store
        .verify()
        .map_err(|e| CliError::corruption(format!("{input}: {e}")))?;
    writeln!(
        out,
        "{input}: ERI store v{}, {} block(s) scanned, {} damaged",
        store.version(),
        report.blocks,
        report.damaged.len()
    )?;
    for d in &report.damaged {
        writeln!(out, "  block {} (offset {}): {}", d.block, d.offset, d.error)?;
    }
    damage_verdict(input, report.damaged.len(), report.blocks, "block")
}

/// `pastri salvage <in.pstrs> <out.pstrs>`: rewrite a damaged stream,
/// keeping every intact segment byte-for-byte and dropping the rest.
/// The output is committed atomically (temp + fsync + rename) and always
/// verifies clean; the exit code reports what salvage found in the
/// *input* — 0 if nothing had to be dropped, 2 if data was lost.
pub fn salvage(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "in.pstrs")?;
    let output = args.positional(1, "out.pstrs")?;
    let infile = fs::File::open(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let outfile = durable::AtomicFile::create(std::path::Path::new(output))
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    let mut sink = std::io::BufWriter::new(outfile);
    let report = pastri::stream::salvage(std::io::BufReader::new(infile), &mut sink)
        .map_err(|e| CliError::new(format!("salvaging {input}: {e}")))?;
    let outfile = sink
        .into_inner()
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    outfile
        .commit()
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    writeln!(
        out,
        "{input} -> {output}: kept {} segment(s), dropped {}{}",
        report.kept,
        report.dropped.len(),
        if report.tail_lost {
            " (framing damage: tail lost)"
        } else {
            ""
        }
    )?;
    for (index, err) in &report.dropped {
        writeln!(out, "  dropped segment {index}: {err}")?;
    }
    if report.dropped.is_empty() && !report.tail_lost {
        Ok(())
    } else {
        Err(CliError::corruption(format!(
            "{input}: salvage dropped {} segment(s){}",
            report.dropped.len(),
            if report.tail_lost { " and lost the tail" } else { "" }
        )))
    }
}

/// `pastri gen <out.f64> --molecule benzene --config (dd|dd) ...`.
pub fn generate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let output = args.positional(0, "out.f64")?;
    let config = parse_config(&args)?;
    let blocks = args.get_usize("blocks", 100)?;
    let seed = args.get_usize("seed", 0)? as u64;
    let ds = if args.switch("model") {
        EriDataset::generate_model(config, blocks, seed)
    } else {
        let mol_name = args.get("molecule").unwrap_or("benzene");
        let molecule = Molecule::by_name(mol_name)
            .ok_or_else(|| CliError::new(format!("--molecule: unknown molecule `{mol_name}`")))?;
        let copies = args.get_usize("cluster", 1)?;
        EriDataset::generate(&DatasetSpec {
            molecule: molecule.cluster(copies.max(1), 4.5),
            config,
            max_blocks: blocks,
            seed,
        })
    };
    write_f64_file(output, &ds.values)?;
    writeln!(
        out,
        "{output}: {} — {} blocks of {} values ({} bytes)",
        ds.label,
        ds.num_blocks(),
        config.block_size(),
        ds.byte_size()
    )?;
    Ok(())
}

/// `pastri assess <original.f64> <decompressed.f64>`.
pub fn assess(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let orig_path = args.positional(0, "original.f64")?;
    let dec_path = args.positional(1, "decompressed.f64")?;
    let orig = read_f64_file(orig_path)?;
    let dec = read_f64_file(dec_path)?;
    if orig.len() != dec.len() {
        return Err(CliError::new(format!(
            "length mismatch: {} has {} values, {} has {}",
            orig_path,
            orig.len(),
            dec_path,
            dec.len()
        )));
    }
    let a = zcheck::assess(&orig, &dec, 0);
    writeln!(
        out,
        "n = {}, max abs err = {:.3e}, MSE = {:.3e}, PSNR = {:.1} dB, value range = {:.3e}",
        a.n, a.max_abs_err, a.mse, a.psnr, a.value_range
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pastri-cli-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir
    }

    fn sv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn gen_compress_decompress_assess_cycle() {
        let dir = tmpdir();
        let raw = dir.join("data.f64").to_string_lossy().into_owned();
        let comp = dir.join("data.pastri").to_string_lossy().into_owned();
        let back = dir.join("back.f64").to_string_lossy().into_owned();
        let mut out = Vec::new();

        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "5", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[&raw, &comp, "--config", "(dd|dd)", "--eb", "1e-10"]),
            &mut out,
        )
        .unwrap();
        decompress(&sv(&[&comp, &back]), &mut out).unwrap();
        assess(&sv(&[&raw, &back]), &mut out).unwrap();
        inspect(&sv(&[&comp]), &mut out).unwrap();

        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ratio"), "{text}");
        assert!(text.contains("max abs err"), "{text}");
        assert!(text.contains("valid PaSTRI container"), "{text}");

        // The round trip respects the bound.
        let orig = read_f64_file(&raw).unwrap();
        let dec = read_f64_file(&back).unwrap();
        for (a, b) in orig.iter().zip(&dec) {
            assert!((a - b).abs() <= 1e-10);
        }
    }

    #[test]
    fn streamed_compress_roundtrips() {
        let dir = tmpdir();
        let raw = dir.join("s.f64").to_string_lossy().into_owned();
        let comp = dir.join("s.pstrs").to_string_lossy().into_owned();
        let back = dir.join("s-back.f64").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "9", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[
                &raw, &comp, "--config", "dddd", "--stream", "--segment-blocks", "4",
            ]),
            &mut out,
        )
        .unwrap();
        decompress(&sv(&[&comp, &back]), &mut out).unwrap();
        let orig = read_f64_file(&raw).unwrap();
        let dec = read_f64_file(&back).unwrap();
        assert_eq!(orig.len(), dec.len());
        for (a, b) in orig.iter().zip(&dec) {
            assert!((a - b).abs() <= 1e-10);
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("streamed"), "{text}");
    }

    #[test]
    fn threads_flag_output_is_byte_identical() {
        let dir = tmpdir();
        let raw = dir.join("t.f64").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "9", "--model"]),
            &mut out,
        )
        .unwrap();
        // Container and stream outputs must not depend on --threads.
        for stream in [false, true] {
            let mut baseline: Option<Vec<u8>> = None;
            for threads in ["1", "2", "8"] {
                let comp = dir
                    .join(format!("t-{stream}-{threads}.out"))
                    .to_string_lossy()
                    .into_owned();
                let mut argv = vec![
                    raw.clone(),
                    comp.clone(),
                    "--config".into(),
                    "dddd".into(),
                    "--threads".into(),
                    threads.into(),
                ];
                if stream {
                    argv.extend(["--stream".into(), "--segment-blocks".into(), "2".into()]);
                }
                compress(&argv, &mut out).unwrap();
                let bytes = fs::read(&comp).unwrap();
                match &baseline {
                    None => baseline = Some(bytes),
                    Some(b) => assert_eq!(&bytes, b, "stream={stream} threads={threads}"),
                }
            }
        }
    }

    #[test]
    fn verify_and_salvage_damaged_stream() {
        let dir = tmpdir();
        let raw = dir.join("v.f64").to_string_lossy().into_owned();
        let comp = dir.join("v.pstrs").to_string_lossy().into_owned();
        let fixed = dir.join("v-fixed.pstrs").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "8", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(
            &sv(&[
                &raw, &comp, "--config", "dddd", "--stream", "--segment-blocks", "2",
            ]),
            &mut out,
        )
        .unwrap();

        // Clean stream verifies with exit 0.
        verify(&sv(&[&comp]), &mut Vec::new()).unwrap();

        // Flip one bit deep inside a segment payload.
        let mut bytes = fs::read(&comp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&comp, &bytes).unwrap();

        // Damaged stream: verify fails with a damage report and the
        // documented corruption exit code.
        let mut report = Vec::new();
        let err = verify(&sv(&[&comp]), &mut report).unwrap_err();
        assert!(err.message.contains("damaged"), "{}", err.message);
        assert_eq!(err.code, 2, "verify damage is exit code 2");
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("segment"), "{text}");

        // Salvage drops the damaged segment (exit 2: data was lost) but
        // still writes an output that verifies clean.
        let mut out = Vec::new();
        let err = salvage(&sv(&[&comp, &fixed]), &mut out).unwrap_err();
        assert_eq!(err.code, 2, "lossy salvage is exit code 2");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("dropped 1"), "{text}");
        verify(&sv(&[&fixed]), &mut Vec::new()).unwrap();

        // Salvaging the already-clean output drops nothing: exit 0.
        let refixed = dir.join("v-refixed.pstrs").to_string_lossy().into_owned();
        salvage(&sv(&[&fixed, &refixed]), &mut Vec::new()).unwrap();
    }

    #[test]
    fn exit_codes_follow_the_documented_contract() {
        let dir = tmpdir();
        // Missing file: I/O error, code 1.
        let missing = dir.join("nope.pstrs").to_string_lossy().into_owned();
        let err = verify(&sv(&[&missing]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 1);
        // Unknown magic: usage/format error, code 1 (not corruption —
        // the file was never claimed to be a PaSTRI artifact).
        let junk = dir.join("junk2.bin").to_string_lossy().into_owned();
        fs::write(&junk, b"something else entirely").unwrap();
        let err = verify(&sv(&[&junk]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 1);
        // Damage in a recognized container: code 2.
        let raw = dir.join("ec.f64").to_string_lossy().into_owned();
        let comp = dir.join("ec.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "4", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        let mut bytes = fs::read(&comp).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0x01;
        fs::write(&comp, &bytes).unwrap();
        let err = verify(&sv(&[&comp]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn stream_compress_resumes_after_interruption() {
        let dir = tmpdir();
        let raw = dir.join("r.f64").to_string_lossy().into_owned();
        let full = dir.join("r-full.pstrs").to_string_lossy().into_owned();
        let part = dir.join("r-part.pstrs").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "24", "--model"]),
            &mut out,
        )
        .unwrap();
        let stream_flags = [
            "--config",
            "dddd",
            "--stream",
            "--segment-blocks",
            "2",
            "--checkpoint-every",
            "2",
        ];
        // Reference: one uninterrupted run.
        let mut argv = sv(&[&raw, &full]);
        argv.extend(sv(&stream_flags));
        compress(&argv, &mut out).unwrap();

        // Interrupted run: feed a prefix through the durable writer and
        // "crash" (drop without finish), leaving artifact + journal.
        {
            let config = qchem::basis::BfConfig::parse("dddd").unwrap();
            let compressor = Compressor::new(BlockGeometry::from_dims(config.dims()), 1e-10);
            let mut w = pastri::durable_stream::DurableFileWriter::create(
                std::path::Path::new(&part),
                compressor,
                2,
                2,
            )
            .unwrap();
            let values = read_f64_file(&raw).unwrap();
            w.write_values(&values[..values.len() / 2]).unwrap();
            assert!(w.checkpoint().values > 0, "some batch must have committed");
        }
        // Resume through the CLI: byte-identical to the clean run.
        let mut resumed_out = Vec::new();
        let mut argv = sv(&[&raw, &part]);
        argv.extend(sv(&stream_flags));
        argv.push("--resume".into());
        compress(&argv, &mut resumed_out).unwrap();
        assert_eq!(fs::read(&part).unwrap(), fs::read(&full).unwrap());
        let text = String::from_utf8(resumed_out).unwrap();
        assert!(text.contains("resumed at value"), "{text}");
        // The journal is gone: the artifact is marked complete.
        assert!(!durable::journal_path(std::path::Path::new(&part)).exists());
        verify(&sv(&[&part]), &mut Vec::new()).unwrap();
    }

    #[test]
    fn verify_dispatches_on_container_magic() {
        let dir = tmpdir();
        let raw = dir.join("c.f64").to_string_lossy().into_owned();
        let comp = dir.join("c.pastri").to_string_lossy().into_owned();
        let mut out = Vec::new();
        generate(
            &sv(&[&raw, "--config", "dddd", "--blocks", "4", "--model"]),
            &mut out,
        )
        .unwrap();
        compress(&sv(&[&raw, &comp, "--config", "dddd"]), &mut out).unwrap();
        verify(&sv(&[&comp]), &mut Vec::new()).unwrap();

        // Damage a block payload: verify must name the block.
        let mut bytes = fs::read(&comp).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0x01;
        fs::write(&comp, &bytes).unwrap();
        let mut report = Vec::new();
        let err = verify(&sv(&[&comp]), &mut report).unwrap_err();
        assert!(err.message.contains("damaged"), "{}", err.message);
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("block"), "{text}");
    }

    #[test]
    fn verify_rejects_unknown_magic() {
        let dir = tmpdir();
        let path = dir.join("junk.bin").to_string_lossy().into_owned();
        fs::write(&path, b"not a pastri artifact").unwrap();
        let err = verify(&sv(&[&path]), &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("unknown magic"), "{}", err.message);
    }

    #[test]
    fn missing_config_is_friendly() {
        let dir = tmpdir();
        let raw = dir.join("x.f64").to_string_lossy().into_owned();
        fs::write(&raw, [0u8; 16]).unwrap();
        let err = compress(&sv(&[&raw, "out.pastri"]), &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("--config"));
    }

    #[test]
    fn bad_f64_file_rejected() {
        let dir = tmpdir();
        let raw = dir.join("bad.f64").to_string_lossy().into_owned();
        fs::write(&raw, [1u8; 13]).unwrap();
        let err = read_f64_file(&raw).unwrap_err();
        assert!(err.message.contains("multiple of 8"));
    }

    #[test]
    fn metric_and_tree_flags() {
        let args = Args::parse(&sv(&["--metric", "aar", "--tree", "3"])).unwrap();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.metric, ScalingMetric::Aar);
        assert_eq!(opts.tree, EncodingTree::Tree3);
        let args = Args::parse(&sv(&["--metric", "nope"])).unwrap();
        assert!(parse_options(&args).is_err());
    }
}
