//! Table-driven check of the CLI exit-code contract.
//!
//! Scripts gate on these codes (see `pastri_cli::usage()`):
//!
//! * `0` — success / artifact clean
//! * `1` — I/O or usage error (missing file, bad flag, unknown format)
//! * `2` — corruption found in a recognized PaSTRI artifact, a soak
//!   run that lost data / violated an SLO gate, or a cache-server
//!   read that hit a block beyond the parity budget
//!
//! Every subcommand with a meaningful clean / I/O-error / corruption
//! split is exercised through the public `pastri_cli::run` entry point,
//! exactly as the binary drives it.

use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pastri-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sv(words: &[&str]) -> Vec<String> {
    words.iter().map(|s| (*s).to_string()).collect()
}

/// Run the CLI and reduce the result to the process exit code.
fn exit_code(argv: &[String]) -> i32 {
    match pastri_cli::run(argv, &mut Vec::new()) {
        Ok(()) => 0,
        Err(e) => e.code,
    }
}

fn p(path: &Path, name: &str) -> String {
    path.join(name).to_string_lossy().into_owned()
}

/// Builds a small seeded ERI store for the `serve` / `bench-server`
/// rows (same patterned-block fixture the integration tests use).
fn build_server_store(path: &str, n: usize) {
    let geom = pastri::BlockGeometry::new(4, 16);
    let mut w = eri_store::StoreWriter::create(Path::new(path), geom, 1e-10).unwrap();
    for b in 0..n {
        let mut block = Vec::with_capacity(geom.block_size());
        for sb in 0..geom.num_subblocks {
            let s = ((sb + b) as f64 * 0.61).cos();
            for i in 0..geom.subblock_size {
                block.push(s * ((i + b) as f64 * 0.37).sin() * 1e-6);
            }
        }
        w.append_block(&block).unwrap();
    }
    w.finish().unwrap();
}

/// Shreds stored block `i`'s whole container span — beyond the parity
/// budget by construction, so reads must fail as corruption (exit 2).
fn shred_store_block(path: &str, i: usize) {
    let mut bytes = fs::read(path).unwrap();
    assert_eq!(&bytes[..8], b"ERISTOR2");
    let index_offset = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
    let entry = index_offset + i * eri_store::INDEX_ENTRY_V2 as usize;
    let off = u64::from_le_bytes(bytes[entry..entry + 8].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
    assert!(off >= eri_store::HEADER_LEN_V2 as usize && off + len <= bytes.len());
    for p in (off + 8..off + len).step_by(7) {
        bytes[p] ^= 0x55;
    }
    fs::write(path, bytes).unwrap();
}

/// LEB128 varint at `pos`; returns (value, offset past it).
fn read_varint_at(bytes: &[u8], mut pos: usize) -> (usize, usize) {
    let mut v = 0usize;
    let mut shift = 0;
    loop {
        let b = bytes[pos];
        pos += 1;
        v |= ((b & 0x7f) as usize) << shift;
        if b & 0x80 == 0 {
            return (v, pos);
        }
        shift += 7;
    }
}

#[test]
fn exit_codes_follow_the_documented_contract() {
    let dir = tmpdir("exit-codes");
    let raw = p(&dir, "data.f64");
    let container = p(&dir, "clean.pastri");
    let stream = p(&dir, "clean.pstrs");
    let missing = p(&dir, "no-such-file");

    // Fixtures: a model dataset, a clean container, a clean stream.
    assert_eq!(
        exit_code(&sv(&[
            "gen", &raw, "--config", "dddd", "--blocks", "8", "--model"
        ])),
        0
    );
    assert_eq!(
        exit_code(&sv(&["compress", &raw, &container, "--config", "dddd"])),
        0
    );
    assert_eq!(
        exit_code(&sv(&[
            "compress",
            &raw,
            &stream,
            "--config",
            "dddd",
            "--stream",
            "--segment-blocks",
            "2",
        ])),
        0
    );

    // Corrupt container: flip a byte inside the first block's payload
    // (located via the lossy decoder's per-block offsets) so both the
    // strict decoder and verify see a checksum mismatch.
    let damaged_container = p(&dir, "damaged.pastri");
    let container_bytes = fs::read(&container).unwrap();
    let decoded = pastri::decompress_lossy(&container_bytes).unwrap();
    let mut bytes = container_bytes.clone();
    bytes[decoded.outcomes[0].offset as usize + 8] ^= 0x40;
    fs::write(&damaged_container, &bytes).unwrap();

    // Corrupt stream: flip deep inside the first segment's container
    // (walk the framing: "PSTRS" + version byte, then varint length),
    // plus a truncated copy whose tail salvage must drop.
    let damaged_stream = p(&dir, "damaged.pstrs");
    let stream_bytes = fs::read(&stream).unwrap();
    let (seg_len, seg_start) = read_varint_at(&stream_bytes, 6);
    let mut bytes = stream_bytes.clone();
    bytes[seg_start + seg_len / 2] ^= 0x10;
    fs::write(&damaged_stream, &bytes).unwrap();
    let truncated_stream = p(&dir, "truncated.pstrs");
    fs::write(&truncated_stream, &stream_bytes[..stream_bytes.len() - 12]).unwrap();

    // Not-a-PaSTRI-artifact input (unknown magic) and a raw file whose
    // length is not a multiple of 8 (invalid f64 input).
    let junk = p(&dir, "junk.bin");
    fs::write(&junk, b"something else entirely").unwrap();
    let odd_raw = p(&dir, "odd.f64");
    fs::write(&odd_raw, [0u8; 9]).unwrap();

    // Soak fixtures: output locations, plus a path whose parent is a
    // regular file so the store directory cannot be created (I/O error).
    let soak_dir = p(&dir, "soak");
    let soak_bench = p(&dir, "BENCH_soak.json");
    let blocker = p(&dir, "blocker");
    fs::write(&blocker, b"a file, not a directory").unwrap();
    let soak_bad_dir = format!("{blocker}/sub");
    let soak_args = [
        "--seed", "3", "--ops", "12", "--stores", "2", "--scale", "6",
    ];

    let out_f64 = p(&dir, "out.f64");
    let out_pstrs = p(&dir, "out.pstrs");

    // Cache-server fixtures: a clean store, a copy with one block
    // shredded beyond the parity budget, and report/output paths.
    let clean_store = p(&dir, "clean.eristore");
    let shredded_store = p(&dir, "shredded.eristore");
    build_server_store(&clean_store, 12);
    build_server_store(&shredded_store, 12);
    shred_store_block(&shredded_store, 3);
    let server_bench = p(&dir, "BENCH_server.json");
    let gen_store = p(&dir, "generated.eristore");

    struct Case {
        label: &'static str,
        argv: Vec<String>,
        want: i32,
    }
    let soak_case = |extra: &[&str]| {
        let mut v = sv(&["soak", &soak_dir]);
        v.extend(sv(&soak_args));
        v.extend(sv(&["--bench-out", &soak_bench]));
        v.extend(sv(extra));
        v
    };
    let cases = vec![
        // compress: clean / missing input / invalid raw input.
        Case {
            label: "compress clean",
            argv: sv(&["compress", &raw, &p(&dir, "c2.pastri"), "--config", "dddd"]),
            want: 0,
        },
        Case {
            label: "compress missing input",
            argv: sv(&["compress", &missing, &p(&dir, "c3.pastri"), "--config", "dddd"]),
            want: 1,
        },
        Case {
            label: "compress odd-length raw",
            argv: sv(&["compress", &odd_raw, &p(&dir, "c4.pastri"), "--config", "dddd"]),
            want: 1,
        },
        // decompress: clean / missing / damage in a recognized artifact.
        Case {
            label: "decompress clean",
            argv: sv(&["decompress", &container, &out_f64]),
            want: 0,
        },
        Case {
            label: "decompress missing input",
            argv: sv(&["decompress", &missing, &out_f64]),
            want: 1,
        },
        Case {
            label: "decompress damaged container",
            argv: sv(&["decompress", &damaged_container, &out_f64]),
            want: 2,
        },
        // verify: clean / missing / unknown magic / damaged.
        Case {
            label: "verify clean container",
            argv: sv(&["verify", &container]),
            want: 0,
        },
        Case {
            label: "verify clean stream",
            argv: sv(&["verify", &stream]),
            want: 0,
        },
        Case {
            label: "verify missing file",
            argv: sv(&["verify", &missing]),
            want: 1,
        },
        Case {
            label: "verify unknown magic",
            argv: sv(&["verify", &junk]),
            want: 1,
        },
        Case {
            label: "verify damaged container",
            argv: sv(&["verify", &damaged_container]),
            want: 2,
        },
        Case {
            label: "verify damaged stream",
            argv: sv(&["verify", &damaged_stream]),
            want: 2,
        },
        // salvage: clean / missing / lossy (dropped tail).
        Case {
            label: "salvage clean stream",
            argv: sv(&["salvage", &stream, &out_pstrs]),
            want: 0,
        },
        Case {
            label: "salvage missing input",
            argv: sv(&["salvage", &missing, &out_pstrs]),
            want: 1,
        },
        Case {
            label: "salvage truncated stream",
            argv: sv(&["salvage", &truncated_stream, &p(&dir, "cut.pstrs")]),
            want: 2,
        },
        // scrub: clean / missing / damage without --repair.
        Case {
            label: "scrub clean container",
            argv: sv(&["scrub", &container]),
            want: 0,
        },
        Case {
            label: "scrub missing file",
            argv: sv(&["scrub", &missing]),
            want: 1,
        },
        Case {
            label: "scrub damaged stream detect-only",
            argv: sv(&["scrub", &damaged_stream]),
            want: 2,
        },
        // soak: clean storm / un-creatable store dir / impossible gate.
        Case {
            label: "soak clean storm",
            argv: soak_case(&[]),
            want: 0,
        },
        Case {
            label: "soak dir is under a file",
            argv: {
                let mut v = sv(&["soak", &soak_bad_dir]);
                v.extend(sv(&soak_args));
                v.extend(sv(&["--bench-out", &soak_bench]));
                v
            },
            want: 1,
        },
        Case {
            label: "soak impossible SLO gate",
            argv: soak_case(&["--slo-read-p99-us", "0"]),
            want: 2,
        },
        // serve: clean / missing store / out-of-range request /
        // beyond-parity-budget block in a mounted shard.
        Case {
            label: "serve clean store",
            argv: sv(&["serve", &clean_store, "--blocks", "0-11"]),
            want: 0,
        },
        Case {
            label: "serve missing store",
            argv: sv(&["serve", &missing]),
            want: 1,
        },
        Case {
            label: "serve out-of-range block",
            argv: sv(&["serve", &clean_store, "--blocks", "99"]),
            want: 1,
        },
        Case {
            label: "serve shredded block",
            argv: sv(&["serve", &shredded_store]),
            want: 2,
        },
        // bench-server: clean replay (generating its own store) /
        // missing store / replay that hits the shredded block.
        Case {
            label: "bench-server clean",
            argv: sv(&[
                "bench-server", &gen_store, "--gen-blocks", "10", "--clients", "2",
                "--requests", "16", "--bench-out", &server_bench,
            ]),
            want: 0,
        },
        Case {
            label: "bench-server missing store",
            argv: sv(&["bench-server", &missing, "--bench-out", &server_bench]),
            want: 1,
        },
        Case {
            label: "bench-server shredded store",
            argv: sv(&[
                "bench-server", &shredded_store, "--clients", "2", "--requests", "64",
                "--skew", "1.0", "--bench-out", &server_bench,
            ]),
            want: 2,
        },
        // usage errors.
        Case {
            label: "unknown subcommand",
            argv: sv(&["frobnicate"]),
            want: 1,
        },
        Case {
            label: "verify with no path",
            argv: sv(&["verify"]),
            want: 1,
        },
    ];

    let mut failures = Vec::new();
    for case in &cases {
        let got = exit_code(&case.argv);
        if got != case.want {
            failures.push(format!(
                "{}: expected exit {}, got {} (argv: {:?})",
                case.label, case.want, got, case.argv
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "exit-code contract violations:\n{}",
        failures.join("\n")
    );
}

/// Remote-serving rows of the exit-code contract: `serve --listen` and
/// `fetch` (DESIGN §13). Servers run the real CLI entry point on
/// background threads, bounded by `--serve-conns` so they exit 0 once
/// the table has consumed their connections.
#[test]
fn transport_exit_codes_follow_the_documented_contract() {
    let dir = tmpdir("transport-exit-codes");
    let store = p(&dir, "wire.eristore");
    build_server_store(&store, 12);
    let fetched = p(&dir, "fetched.f64");

    // `serve --listen` clean exit 0: serves exactly one connection.
    let sock = p(&dir, "clean.sock");
    let serve_argv = sv(&[
        "serve", &store, "--listen", &format!("unix:{sock}"), "--serve-conns", "1",
    ]);
    let server = std::thread::spawn(move || exit_code(&serve_argv));
    wait_for_path(&sock);

    // `fetch` clean exit 0 (one connection, all blocks, written out).
    let fetch_clean = exit_code(&sv(&[
        "fetch", &format!("unix:{sock}"), "--out", &fetched, "--stats",
    ]));
    assert_eq!(fetch_clean, 0, "fetch against a live server is exit 0");
    assert_eq!(
        fs::read(&fetched).unwrap().len(),
        12 * 4 * 16 * 8,
        "every block fetched"
    );
    assert_eq!(server.join().unwrap(), 0, "bounded serve --listen is exit 0");

    // Connection refused: nobody serves this path. Exit 1, not a hang.
    let refused = exit_code(&sv(&[
        "fetch", &format!("unix:{}", p(&dir, "nobody.sock")),
        "--retries", "1", "--deadline-ms", "500",
    ]));
    assert_eq!(refused, 1, "unreachable endpoint is exit 1");

    // Deadline exceeded: a listener that never speaks. The whole-call
    // deadline must cut it off with exit 1.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let mute_addr = mute.local_addr().unwrap();
    let deadline = exit_code(&sv(&[
        "fetch", &format!("tcp:{mute_addr}"),
        "--deadline-ms", "400", "--attempt-ms", "100", "--retries", "100",
    ]));
    assert_eq!(deadline, 1, "a blown deadline is exit 1");
    drop(mute);

    // Corrupt frames beyond the retry budget: every connection through
    // the fault proxy flips a bit past the Hello frame, so each attempt
    // dies on a CRC mismatch. --retries 2 → exactly 3 connections, then
    // exit 2 (the bytes were damaged, not merely unavailable).
    // (Library-layer server here: the table needs its ephemeral TCP
    // port before `run` returns, which the CLI only prints at exit.)
    let store2 = store.clone();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let cfg = eri_server::ServerConfig::default();
        let handle = eri_server::ServerHandle::open(&[&store2], &cfg).unwrap();
        let srv = eri_server::TransportServer::bind(
            &eri_server::Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
            std::sync::Arc::new(handle),
        )
        .unwrap();
        let eri_server::Endpoint::Tcp(addr) = srv.local_endpoint() else { unreachable!() };
        addr_tx.send(addr).unwrap();
        srv.run(Some(3)).unwrap()
    });
    let upstream = addr_rx.recv().unwrap();
    let proxy = faults::FaultyProxy::start(
        &upstream,
        0xC11,
        faults::ProxyFaultConfig {
            faulty_every: 1,
            classes: vec![faults::WireFault::Corrupt],
            max_faults: u32::MAX,
            offset_base: 60,
            offset_window: 800,
            ..faults::ProxyFaultConfig::default()
        },
    )
    .unwrap();
    let corrupt = exit_code(&sv(&[
        "fetch", &format!("tcp:{}", proxy.addr()),
        "--retries", "2", "--deadline-ms", "10000", "--blocks", "0-3",
    ]));
    assert_eq!(corrupt, 2, "corrupt frames past the retry budget are exit 2");
    assert_eq!(server.join().unwrap(), 3, "all three attempts reached the server");
    let tallies = proxy.stop();
    assert!(tallies.corrupts >= 3, "{tallies:?}");

    // Shed past the retry budget: a server whose injector refuses every
    // read with a structured `Overloaded` frame. The service was
    // *unavailable*, not corrupt — exit 1, distinct from the frame-CRC
    // exit 2 above. One connection serves every attempt: an Overloaded
    // reply keeps the stream in sync, so the client must not reconnect.
    let store3 = store.clone();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let cfg = eri_server::ServerConfig::default();
        let handle = eri_server::ServerHandle::open(&[&store3], &cfg).unwrap();
        let opts = eri_server::transport::ServeOptions {
            inject: Some(std::sync::Arc::new(|_key: u64, _attempt: u32| {
                eri_server::InjectedLoad {
                    shed: true,
                    retry_after: std::time::Duration::from_millis(1),
                    delay: std::time::Duration::ZERO,
                }
            })
                as std::sync::Arc<dyn eri_server::OverloadInject>),
            ..Default::default()
        };
        let srv = eri_server::TransportServer::bind_with(
            &eri_server::Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
            std::sync::Arc::new(handle),
            opts,
        )
        .unwrap();
        let eri_server::Endpoint::Tcp(addr) = srv.local_endpoint() else { unreachable!() };
        addr_tx.send(addr).unwrap();
        let conns = srv.run(Some(1)).unwrap();
        (conns, srv.admission().stats())
    });
    let shed_addr = addr_rx.recv().unwrap();
    let shed = exit_code(&sv(&[
        "fetch", &format!("tcp:{shed_addr}"),
        "--retries", "2", "--deadline-ms", "10000", "--blocks", "0-3",
    ]));
    assert_eq!(shed, 1, "sheds past the retry budget are exit 1 (availability)");
    let (conns, astats) = server.join().unwrap();
    assert_eq!(conns, 1, "overloaded replies keep the connection alive");
    assert_eq!(astats.shed, 3, "every attempt shed loudly (retries 2 = 3 attempts)");

    // Drain refusal: a draining server refuses new requests with a
    // structured `Draining` status — again availability, exit 1.
    let store4 = store.clone();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let cfg = eri_server::ServerConfig::default();
        let handle = eri_server::ServerHandle::open(&[&store4], &cfg).unwrap();
        let srv = eri_server::TransportServer::bind(
            &eri_server::Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
            std::sync::Arc::new(handle),
        )
        .unwrap();
        let eri_server::Endpoint::Tcp(addr) = srv.local_endpoint() else { unreachable!() };
        // Begin draining before any client arrives: connections are
        // still accepted (finishing admitted work elsewhere) but every
        // new read is refused.
        srv.stop_handle().begin_drain();
        addr_tx.send(addr).unwrap();
        let conns = srv.run(Some(1)).unwrap();
        (conns, srv.admission().stats())
    });
    let drain_addr = addr_rx.recv().unwrap();
    let drained = exit_code(&sv(&[
        "fetch", &format!("tcp:{drain_addr}"),
        "--retries", "1", "--deadline-ms", "10000", "--blocks", "0-3",
    ]));
    assert_eq!(drained, 1, "drain refusals are exit 1 (availability)");
    let (_, astats) = server.join().unwrap();
    assert_eq!(astats.refused_draining, 2, "both attempts refused with Draining");
    assert_eq!(astats.admitted, 0, "nothing admitted while draining");
}

/// Polls (briefly) until a serve thread has bound its unix socket.
fn wait_for_path(path: &str) {
    for _ in 0..200 {
        if Path::new(path).exists() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server never bound {path}");
}

/// Repeated quarantines of the same artifact must never clobber earlier
/// evidence: the CLI picks `<file>.quarantine`, then `.quarantine.1`,
/// `.quarantine.2`, … (satellite for `durable::fresh_quarantine_path`).
#[test]
fn repeated_scrub_quarantines_do_not_clobber() {
    let dir = tmpdir("quarantine");
    let raw = p(&dir, "q.f64");
    let comp = p(&dir, "q.pastri");
    let mut out = Vec::new();
    pastri_cli::run(
        &sv(&["gen", &raw, "--config", "dddd", "--blocks", "6", "--model"]),
        &mut out,
    )
    .unwrap();
    pastri_cli::run(&sv(&["compress", &raw, &comp, "--config", "dddd"]), &mut out).unwrap();
    let clean = fs::read(&comp).unwrap();

    // Damage three blocks in one parity group — beyond the two-shard
    // repair budget, so `scrub --repair` must quarantine the original.
    let damage = |clean: &[u8], mask: u8| {
        let decoded = pastri::decompress_lossy(clean).unwrap();
        let mut bytes = clean.to_vec();
        for o in decoded.outcomes.iter().take(3) {
            bytes[o.offset as usize + 8] ^= mask;
        }
        bytes
    };

    let first = damage(&clean, 0x40);
    fs::write(&comp, &first).unwrap();
    let err = pastri_cli::run(&sv(&["scrub", &comp, "--repair"]), &mut Vec::new()).unwrap_err();
    assert_eq!(err.code, 2);
    let q0 = format!("{comp}.quarantine");
    assert_eq!(fs::read(&q0).unwrap(), first, "first quarantine holds the damage");

    // Damage again with a different mask: the second quarantine must go
    // to a numbered suffix, leaving the first capture intact.
    let second = damage(&fs::read(&comp).unwrap(), 0x20);
    fs::write(&comp, &second).unwrap();
    let err = pastri_cli::run(&sv(&["scrub", &comp, "--repair"]), &mut Vec::new()).unwrap_err();
    assert_eq!(err.code, 2);
    let q1 = format!("{comp}.quarantine.1");
    assert_eq!(fs::read(&q0).unwrap(), first, "first capture must survive");
    assert_eq!(fs::read(&q1).unwrap(), second, "second capture gets a numbered suffix");
}
