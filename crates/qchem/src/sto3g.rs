//! STO-3G minimal basis set data (Hehre, Stewart & Pople, JCP 1969) for
//! the elements the test systems need: H, He, C, N, O.
//!
//! Contraction coefficients apply to *normalized* primitives; contracted
//! shells are renormalized here so every basis function has unit
//! self-overlap (checked in tests).

use crate::basis::Shell;
use crate::molecule::{Atom, Molecule};
use crate::oneint::overlap;

/// STO-3G s-shell contraction for hydrogen.
const H_S: ([f64; 3], [f64; 3]) = (
    [3.425_250_91, 0.623_913_73, 0.168_855_40],
    [0.154_328_97, 0.535_328_14, 0.444_634_54],
);
/// Helium 1s.
const HE_S: ([f64; 3], [f64; 3]) = (
    [6.362_421_39, 1.158_923_00, 0.313_649_79],
    [0.154_328_97, 0.535_328_14, 0.444_634_54],
);
/// First-row core (1s) exponents.
const C_CORE: [f64; 3] = [71.616_837_0, 13.045_096_0, 3.530_512_2];
const N_CORE: [f64; 3] = [99.106_169_0, 18.052_312_0, 4.885_660_2];
const O_CORE: [f64; 3] = [130.709_320_0, 23.808_861_0, 6.443_608_3];
/// First-row valence (2sp) exponents.
const C_SP: [f64; 3] = [2.941_249_4, 0.683_483_1, 0.222_289_9];
const N_SP: [f64; 3] = [3.780_455_9, 0.878_496_6, 0.285_714_4];
const O_SP: [f64; 3] = [5.033_151_3, 1.169_596_1, 0.380_389_0];
/// Shared first-row contraction coefficients.
const CORE_COEF: [f64; 3] = [0.154_328_97, 0.535_328_14, 0.444_634_54];
const S_VAL_COEF: [f64; 3] = [-0.099_967_23, 0.399_512_83, 0.700_115_47];
const P_VAL_COEF: [f64; 3] = [0.155_916_27, 0.607_683_72, 0.391_957_39];

/// Renormalizes a contracted shell so its first basis function has unit
/// self-overlap (all components of an s/p shell share the same norm).
fn normalized(mut shell: Shell) -> Shell {
    let s = overlap(&shell, &shell)[(0, 0)];
    let scale = 1.0 / s.sqrt();
    for c in &mut shell.coefs {
        *c *= scale;
    }
    shell
}

/// STO-3G shells for one atom. Returns `None` for unsupported elements.
#[must_use]
pub fn shells_for_atom(atom: &Atom) -> Option<Vec<Shell>> {
    let mk = |l: u32, exps: &[f64], coefs: &[f64]| {
        normalized(Shell {
            center: atom.pos,
            l,
            exps: exps.to_vec(),
            coefs: coefs.to_vec(),
        })
    };
    Some(match atom.z {
        1 => vec![mk(0, &H_S.0, &H_S.1)],
        2 => vec![mk(0, &HE_S.0, &HE_S.1)],
        6 => vec![
            mk(0, &C_CORE, &CORE_COEF),
            mk(0, &C_SP, &S_VAL_COEF),
            mk(1, &C_SP, &P_VAL_COEF),
        ],
        7 => vec![
            mk(0, &N_CORE, &CORE_COEF),
            mk(0, &N_SP, &S_VAL_COEF),
            mk(1, &N_SP, &P_VAL_COEF),
        ],
        8 => vec![
            mk(0, &O_CORE, &CORE_COEF),
            mk(0, &O_SP, &S_VAL_COEF),
            mk(1, &O_SP, &P_VAL_COEF),
        ],
        _ => return None,
    })
}

/// STO-3G shells for a whole molecule.
///
/// # Panics
/// Panics on elements outside {H, He, C, N, O}.
#[must_use]
pub fn shells_for_molecule(molecule: &Molecule) -> Vec<Shell> {
    molecule
        .atoms
        .iter()
        .flat_map(|a| {
            shells_for_atom(a)
                .unwrap_or_else(|| panic!("no STO-3G data for Z = {}", a.z))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracted_shells_are_normalized() {
        for z in [1u32, 2, 6, 7, 8] {
            let atom = Atom {
                z,
                pos: [0.1, -0.2, 0.3],
            };
            for shell in shells_for_atom(&atom).unwrap() {
                let s = overlap(&shell, &shell);
                for i in 0..shell.size() {
                    assert!(
                        (s[(i, i)] - 1.0).abs() < 1e-10,
                        "Z={z} l={} comp {i}: {}",
                        shell.l,
                        s[(i, i)]
                    );
                }
            }
        }
    }

    #[test]
    fn shell_counts_per_element() {
        let h = Atom { z: 1, pos: [0.0; 3] };
        let o = Atom { z: 8, pos: [0.0; 3] };
        assert_eq!(shells_for_atom(&h).unwrap().len(), 1);
        assert_eq!(shells_for_atom(&o).unwrap().len(), 3); // 1s, 2s, 2p
        // Basis function counts: H -> 1, O -> 1+1+3 = 5.
        let nbf: usize = shells_for_atom(&o).unwrap().iter().map(Shell::size).sum();
        assert_eq!(nbf, 5);
    }

    #[test]
    fn unsupported_element_is_none() {
        let fe = Atom { z: 26, pos: [0.0; 3] };
        assert!(shells_for_atom(&fe).is_none());
    }

    #[test]
    fn core_valence_orthogonality_is_partial() {
        // 1s and 2s on the same centre overlap but are far from identical
        // (sanity against coefficient transcription errors).
        let o = Atom { z: 8, pos: [0.0; 3] };
        let shells = shells_for_atom(&o).unwrap();
        let s = overlap(&shells[0], &shells[1])[(0, 0)];
        assert!(s.abs() < 0.6, "1s/2s overlap {s}");
        assert!(s.abs() > 0.05, "1s/2s overlap suspiciously small: {s}");
    }
}
