//! Hermite Coulomb integrals and full ERI shell-quartet blocks
//! (McMurchie–Davidson scheme).
//!
//! The two-electron repulsion integral over primitive Cartesian Gaussians
//! reduces to
//!
//! ```text
//! (ab|cd) = 2π^{5/2} / (pq √(p+q))
//!           Σ_{tuv} E_t E_u E_v  Σ_{τνφ} (-1)^{τ+ν+φ} E_τ E_ν E_φ
//!           R_{t+τ, u+ν, v+φ}(α, P − Q)
//! ```
//!
//! with bra/ket pair exponents `p = a + b`, `q = c + d`, reduced exponent
//! `α = pq/(p+q)`, and Hermite Coulomb integrals `R^n_{tuv}` built from the
//! Boys function by the standard recurrences. This module evaluates whole
//! shell-quartet *blocks* — the 4-D tensors of Fig. 2 of the paper — laid
//! out exactly as PaSTRI consumes them: index `((i·N2 + j)·N3 + k)·N4 + l`.

use crate::angular::{components, primitive_norm, CartComp};
#[cfg(test)]
use crate::angular::shell_size;
use crate::basis::Shell;
use crate::boys;
use crate::hermite::ETable;

/// Hermite Coulomb integral table `R_{tuv} = R^0_{tuv}` for one primitive
/// quartet, valid for `t + u + v ≤ l_total`.
#[derive(Debug)]
pub struct RTable {
    data: Vec<f64>,
    dim: usize, // l_total + 1
}

impl RTable {
    /// Builds `R^0_{tuv}` for reduced exponent `alpha` and centre
    /// displacement `pq = P − Q`, up to total Hermite order `l_total`.
    #[must_use]
    pub fn build(l_total: usize, alpha: f64, pq: [f64; 3]) -> Self {
        let dim = l_total + 1;
        let t2 = alpha * (pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2]);
        let fs = boys::boys_vec(l_total, t2);

        // r[n][t][u][v], flattened; only n + t + u + v ≤ l_total is touched.
        let stride_v = dim;
        let stride_u = dim * stride_v;
        let stride_t = dim * stride_u;
        let idx = |n: usize, t: usize, u: usize, v: usize| n * stride_t + t * stride_u + u * stride_v + v;
        let mut r = vec![0.0f64; dim * stride_t];

        let mut pow = 1.0;
        for n in 0..=l_total {
            r[idx(n, 0, 0, 0)] = pow * fs[n];
            pow *= -2.0 * alpha;
        }
        // Build up total Hermite order; each step consumes order n+1 data.
        for total in 1..=l_total {
            for t in 0..=total {
                for u in 0..=(total - t) {
                    let v = total - t - u;
                    for n in 0..=(l_total - total) {
                        let val = if t > 0 {
                            let mut x = pq[0] * r[idx(n + 1, t - 1, u, v)];
                            if t > 1 {
                                x += (t - 1) as f64 * r[idx(n + 1, t - 2, u, v)];
                            }
                            x
                        } else if u > 0 {
                            let mut x = pq[1] * r[idx(n + 1, t, u - 1, v)];
                            if u > 1 {
                                x += (u - 1) as f64 * r[idx(n + 1, t, u - 2, v)];
                            }
                            x
                        } else {
                            let mut x = pq[2] * r[idx(n + 1, t, u, v - 1)];
                            if v > 1 {
                                x += (v - 1) as f64 * r[idx(n + 1, t, u, v - 2)];
                            }
                            x
                        };
                        r[idx(n, t, u, v)] = val;
                    }
                }
            }
        }
        // Keep only the n = 0 slab.
        let mut data = vec![0.0f64; stride_t];
        data.copy_from_slice(&r[..stride_t]);
        Self { data, dim }
    }

    /// `R^0_{tuv}`.
    #[inline]
    #[must_use]
    pub fn get(&self, t: usize, u: usize, v: usize) -> f64 {
        self.data[(t * self.dim + u) * self.dim + v]
    }
}

/// Precomputed pair data for one (shell, shell) bra or ket pair: Hermite
/// expansion tables and Gaussian-product constants for every primitive
/// combination.
///
/// ERI evaluation over a dataset touches each *pair* once per quartet it
/// participates in; since a pair appears in O(n_shells²) quartets,
/// hoisting the `E_t^{ij}` tables out of the quartet loop (the standard
/// "shell-pair data" optimization of integral codes) removes the dominant
/// redundant work.
#[derive(Debug, Clone)]
pub struct ShellPair {
    /// Angular momenta of the two shells.
    pub la: usize,
    pub lb: usize,
    /// Cartesian components, cached.
    comps_a: Vec<CartComp>,
    comps_b: Vec<CartComp>,
    /// Per primitive combination: `(p, P, E-tables, coef_a·coef_b, a, b)`.
    prims: Vec<PairPrimitive>,
}

#[derive(Debug, Clone)]
struct PairPrimitive {
    p: f64,
    center: [f64; 3],
    e: [ETable; 3],
    coef: f64,
    a: f64,
    b: f64,
}

impl ShellPair {
    /// Builds the pair tables for shells `sa`, `sb`.
    #[must_use]
    pub fn build(sa: &Shell, sb: &Shell) -> Self {
        let (la, lb) = (sa.l as usize, sb.l as usize);
        let mut prims = Vec::with_capacity(sa.exps.len() * sb.exps.len());
        for (pa, &a) in sa.exps.iter().enumerate() {
            for (pb, &b) in sb.exps.iter().enumerate() {
                let p = a + b;
                let center: [f64; 3] =
                    std::array::from_fn(|d| (a * sa.center[d] + b * sb.center[d]) / p);
                let e: [ETable; 3] = std::array::from_fn(|d| {
                    ETable::build(la, lb, a, b, sa.center[d], sb.center[d])
                });
                prims.push(PairPrimitive {
                    p,
                    center,
                    e,
                    coef: sa.coefs[pa] * sb.coefs[pb],
                    a,
                    b,
                });
            }
        }
        Self {
            la,
            lb,
            comps_a: components(sa.l),
            comps_b: components(sb.l),
            prims,
        }
    }
}

/// Computes the full contracted ERI block for a shell quartet.
///
/// Returns a vector of length `N1·N2·N3·N4` where `Nk = shell_size(l_k)`,
/// laid out with the bra indices slowest — so the `N1·N2` sub-blocks of
/// size `N3·N4` are exactly the sub-blocks PaSTRI scales against each other.
#[must_use]
pub fn eri_block(sa: &Shell, sb: &Shell, sc: &Shell, sd: &Shell) -> Vec<f64> {
    eri_block_from_pairs(&ShellPair::build(sa, sb), &ShellPair::build(sc, sd))
}

/// Like [`eri_block`], but with the pair tables precomputed — use this
/// when evaluating many quartets sharing bra/ket pairs.
#[must_use]
pub fn eri_block_from_pairs(bra: &ShellPair, ket: &ShellPair) -> Vec<f64> {
    let (na, nb, nc, nd) = (
        bra.comps_a.len(),
        bra.comps_b.len(),
        ket.comps_a.len(),
        ket.comps_b.len(),
    );
    let mut block = vec![0.0f64; na * nb * nc * nd];
    let l_total = bra.la + bra.lb + ket.la + ket.lb;

    for bp in &bra.prims {
        for kp in &ket.prims {
            let (p, q) = (bp.p, kp.p);
            let alpha = p * q / (p + q);
            let pq = [
                bp.center[0] - kp.center[0],
                bp.center[1] - kp.center[1],
                bp.center[2] - kp.center[2],
            ];
            let r = RTable::build(l_total, alpha, pq);
            let prefactor =
                2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt()) * bp.coef * kp.coef;
            accumulate_primitive(
                &mut block,
                prefactor,
                &bra.comps_a,
                &bra.comps_b,
                &ket.comps_a,
                &ket.comps_b,
                &bp.e,
                &kp.e,
                &r,
                bp.a,
                bp.b,
                kp.a,
                kp.b,
            );
        }
    }
    block
}

/// Inner assembly loop for one primitive quartet.
#[allow(clippy::too_many_arguments)]
fn accumulate_primitive(
    block: &mut [f64],
    prefactor: f64,
    comps_a: &[CartComp],
    comps_b: &[CartComp],
    comps_c: &[CartComp],
    comps_d: &[CartComp],
    e_ab: &[ETable; 3],
    e_cd: &[ETable; 3],
    r: &RTable,
    a: f64,
    b: f64,
    c: f64,
    d: f64,
) {
    let (nb, nc, nd) = (comps_b.len(), comps_c.len(), comps_d.len());
    for (ia, ca) in comps_a.iter().enumerate() {
        let norm_a = primitive_norm(a, *ca);
        for (ib, cb) in comps_b.iter().enumerate() {
            let norm_b = primitive_norm(b, *cb);
            let (ix, jx) = (ca.i as usize, cb.i as usize);
            let (iy, jy) = (ca.j as usize, cb.j as usize);
            let (iz, jz) = (ca.k as usize, cb.k as usize);
            for (ic, cc) in comps_c.iter().enumerate() {
                let norm_c = primitive_norm(c, *cc);
                for (id, cd) in comps_d.iter().enumerate() {
                    let norm_d = primitive_norm(d, *cd);
                    let (kx, lx) = (cc.i as usize, cd.i as usize);
                    let (ky, ly) = (cc.j as usize, cd.j as usize);
                    let (kz, lz) = (cc.k as usize, cd.k as usize);

                    let mut sum = 0.0f64;
                    for t in 0..=(ix + jx) {
                        let etx = e_ab[0].get(ix, jx, t);
                        if etx == 0.0 {
                            continue;
                        }
                        for u in 0..=(iy + jy) {
                            let euy = e_ab[1].get(iy, jy, u);
                            if euy == 0.0 {
                                continue;
                            }
                            for v in 0..=(iz + jz) {
                                let evz = e_ab[2].get(iz, jz, v);
                                if evz == 0.0 {
                                    continue;
                                }
                                let e_bra = etx * euy * evz;
                                let mut ket = 0.0f64;
                                for tau in 0..=(kx + lx) {
                                    let etau = e_cd[0].get(kx, lx, tau);
                                    if etau == 0.0 {
                                        continue;
                                    }
                                    for nu in 0..=(ky + ly) {
                                        let enu = e_cd[1].get(ky, ly, nu);
                                        if enu == 0.0 {
                                            continue;
                                        }
                                        for phi in 0..=(kz + lz) {
                                            let ephi = e_cd[2].get(kz, lz, phi);
                                            if ephi == 0.0 {
                                                continue;
                                            }
                                            let sign = if (tau + nu + phi) % 2 == 0 {
                                                1.0
                                            } else {
                                                -1.0
                                            };
                                            ket += sign
                                                * etau
                                                * enu
                                                * ephi
                                                * r.get(t + tau, u + nu, v + phi);
                                        }
                                    }
                                }
                                sum += e_bra * ket;
                            }
                        }
                    }
                    let idx = ((ia * nb + ib) * nc + ic) * nd + id;
                    block[idx] += prefactor * norm_a * norm_b * norm_c * norm_d * sum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::Shell;

    fn s_shell(center: [f64; 3], exp: f64) -> Shell {
        Shell {
            center,
            l: 0,
            exps: vec![exp],
            coefs: vec![1.0],
        }
    }

    /// (ss|ss) on four identical centres has the closed form
    /// `2 π^{5/2} / (pq√(p+q)) · N⁴` with all E factors 1 and F_0(0)=1.
    #[test]
    fn ssss_same_center_closed_form() {
        let a = 0.8;
        let s = s_shell([0.0; 3], a);
        let block = eri_block(&s, &s, &s, &s);
        assert_eq!(block.len(), 1);
        let p = 2.0 * a;
        let q = 2.0 * a;
        let norm = (2.0 * a / std::f64::consts::PI).powf(0.75);
        let expect = 2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt())
            * norm.powi(4);
        assert!(
            (block[0] - expect).abs() < 1e-12 * expect,
            "got {} want {}",
            block[0],
            expect
        );
    }

    /// Known value: for unit-exponent s Gaussians on one centre the
    /// normalized ERI is √(2/π)·2… — instead of trusting a constant, check
    /// against the F_0 closed form at separation R:
    /// (ss|ss)(R) = prefactor · N⁴ · F_0(α R²).
    #[test]
    fn ssss_separated_matches_boys_form() {
        let a = 1.1;
        let b = 0.6;
        let s1 = s_shell([0.0; 3], a);
        let s2 = s_shell([0.0, 0.0, 2.5], b);
        // (s1 s1 | s2 s2): bra on origin, ket at z = 2.5.
        let block = eri_block(&s1, &s1, &s2, &s2);
        let p = 2.0 * a;
        let q = 2.0 * b;
        let alpha = p * q / (p + q);
        let r2 = 2.5f64 * 2.5;
        let f0 = crate::boys::boys_vec(0, alpha * r2)[0];
        let na = (2.0 * a / std::f64::consts::PI).powf(0.75);
        let nb2 = (2.0 * b / std::f64::consts::PI).powf(0.75);
        let expect = 2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt())
            * na.powi(2)
            * nb2.powi(2)
            * f0;
        assert!(
            (block[0] - expect).abs() < 1e-12 * expect.abs(),
            "got {} want {}",
            block[0],
            expect
        );
    }

    #[test]
    fn block_layout_dimensions() {
        let d1 = Shell {
            center: [0.0; 3],
            l: 2,
            exps: vec![0.9],
            coefs: vec![1.0],
        };
        let p1 = Shell {
            center: [1.0, 0.0, 0.0],
            l: 1,
            exps: vec![0.5],
            coefs: vec![1.0],
        };
        let block = eri_block(&d1, &p1, &p1, &d1);
        assert_eq!(block.len(), 6 * 3 * 3 * 6);
    }

    /// ERIs are symmetric under bra/ket swap: (ab|cd) = (cd|ab).
    #[test]
    fn bra_ket_symmetry() {
        let sa = Shell {
            center: [0.1, -0.2, 0.3],
            l: 1,
            exps: vec![0.7],
            coefs: vec![1.0],
        };
        let sb = Shell {
            center: [1.1, 0.4, -0.5],
            l: 2,
            exps: vec![0.45],
            coefs: vec![1.0],
        };
        let ab = eri_block(&sa, &sa, &sb, &sb); // (aa|bb)
        let ba = eri_block(&sb, &sb, &sa, &sa); // (bb|aa)
        let (na, nb) = (shell_size(1), shell_size(2));
        for i in 0..na {
            for j in 0..na {
                for k in 0..nb {
                    for l in 0..nb {
                        let v1 = ab[((i * na + j) * nb + k) * nb + l];
                        let v2 = ba[((k * nb + l) * na + i) * na + j];
                        assert!(
                            (v1 - v2).abs() <= 1e-12 * v1.abs().max(1e-12),
                            "({i}{j}|{k}{l}): {v1} vs {v2}"
                        );
                    }
                }
            }
        }
    }

    /// Permutational symmetry within a pair: (ab|cd) = (ba|cd) when the two
    /// bra shells are the same shell object (same centre & exponent).
    #[test]
    fn intra_pair_symmetry_same_shell() {
        let sa = Shell {
            center: [0.0, 0.0, 0.0],
            l: 1,
            exps: vec![0.9],
            coefs: vec![1.0],
        };
        let sc = Shell {
            center: [0.0, 0.0, 3.0],
            l: 1,
            exps: vec![0.6],
            coefs: vec![1.0],
        };
        let block = eri_block(&sa, &sa, &sc, &sc);
        let n = 3;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    for l in 0..n {
                        let v1 = block[((i * n + j) * n + k) * n + l];
                        let v2 = block[((j * n + i) * n + k) * n + l];
                        assert!((v1 - v2).abs() <= 1e-13 * v1.abs().max(1e-13));
                        let v3 = block[((i * n + j) * n + l) * n + k];
                        assert!((v1 - v3).abs() <= 1e-13 * v1.abs().max(1e-13));
                    }
                }
            }
        }
    }

    /// Pair-precomputed evaluation must agree with the direct path to the
    /// last bit (same operations, hoisted).
    #[test]
    fn pair_path_matches_direct_path() {
        let sa = Shell {
            center: [0.1, 0.2, -0.3],
            l: 2,
            exps: vec![0.9, 2.1],
            coefs: vec![0.6, 0.5],
        };
        let sb = Shell {
            center: [1.3, -0.4, 0.2],
            l: 1,
            exps: vec![0.7],
            coefs: vec![1.0],
        };
        let sc = Shell {
            center: [0.0, 2.0, 1.0],
            l: 2,
            exps: vec![1.4],
            coefs: vec![1.0],
        };
        let direct = eri_block(&sa, &sb, &sb, &sc);
        let bra = ShellPair::build(&sa, &sb);
        let ket = ShellPair::build(&sb, &sc);
        let paired = eri_block_from_pairs(&bra, &ket);
        assert_eq!(direct.len(), paired.len());
        for (a, b) in direct.iter().zip(&paired) {
            assert_eq!(a.to_bits(), b.to_bits(), "pair path diverged");
        }
    }

    /// Far-field factorization — the physical property PaSTRI exploits:
    /// for well-separated bra and ket pairs, sub-blocks are near scalar
    /// multiples of each other (Eq. (2)/(3) of the paper).
    #[test]
    fn far_field_subblocks_are_scaled_copies() {
        let da = Shell {
            center: [0.0, 0.0, 0.0],
            l: 2,
            exps: vec![1.2],
            coefs: vec![1.0],
        };
        let db = Shell {
            center: [0.8, 0.3, -0.2],
            l: 2,
            exps: vec![0.9],
            coefs: vec![1.0],
        };
        let dc = Shell {
            center: [0.1, 0.2, 14.0],
            l: 2,
            exps: vec![1.1],
            coefs: vec![1.0],
        };
        let dd = Shell {
            center: [-0.4, 0.6, 14.5],
            l: 2,
            exps: vec![0.8],
            coefs: vec![1.0],
        };
        let block = eri_block(&da, &db, &dc, &dd);
        let n = shell_size(2);
        let sb_size = n * n;
        // Reference sub-block: the one with the largest extremum.
        let num_sb = n * n;
        let mut best = 0usize;
        let mut best_ext = 0.0f64;
        for s in 0..num_sb {
            let ext = block[s * sb_size..(s + 1) * sb_size]
                .iter()
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            if ext > best_ext {
                best_ext = ext;
                best = s;
            }
        }
        let pat = &block[best * sb_size..(best + 1) * sb_size];
        let pat_ext_idx = (0..sb_size)
            .max_by(|&x, &y| pat[x].abs().partial_cmp(&pat[y].abs()).unwrap())
            .unwrap();
        // Every other sub-block must match a scaled pattern to ~1e-3 of the
        // block extremum (far field is approximate, not exact).
        for s in 0..num_sb {
            let sb = &block[s * sb_size..(s + 1) * sb_size];
            let scale = sb[pat_ext_idx] / pat[pat_ext_idx];
            for i in 0..sb_size {
                let dev = (sb[i] - scale * pat[i]).abs();
                assert!(
                    dev < 5e-3 * best_ext,
                    "sub-block {s} point {i}: dev {dev:e} vs ext {best_ext:e}"
                );
            }
        }
    }
}
