//! McMurchie–Davidson Hermite expansion coefficients.
//!
//! A product of two 1-D Cartesian Gaussians of angular factors `x_A^i` and
//! `x_B^j` expands in Hermite Gaussians `Λ_t` centred at the Gaussian
//! product centre `P`:
//!
//! ```text
//! x_A^i x_B^j e^{-a x_A²} e^{-b x_B²} = e^{-q X_AB²} Σ_t E_t^{ij} Λ_t(x_P; p)
//! ```
//!
//! with `p = a + b`, `q = ab/p`, `X_AB = A - B`. The `E_t^{ij}` obey the
//! standard transfer recurrences (building up `i`, then `j`):
//!
//! ```text
//! E_t^{i+1,j} = E_{t-1}^{ij}/(2p) + X_PA · E_t^{ij} + (t+1) E_{t+1}^{ij}
//! E_t^{i,j+1} = E_{t-1}^{ij}/(2p) + X_PB · E_t^{ij} + (t+1) E_{t+1}^{ij}
//! E_0^{00}    = e^{-q X_AB²},   E_t^{ij} = 0 unless 0 ≤ t ≤ i+j.
//! ```

/// Hermite expansion table for one Cartesian dimension of a shell pair.
///
/// Indexed as `E[i][j][t]` with `i ≤ i_max`, `j ≤ j_max`, `t ≤ i + j`.
#[derive(Debug, Clone)]
pub struct ETable {
    data: Vec<f64>,
    j_max: usize,
    t_stride: usize,
}

impl ETable {
    /// Builds the full `E_t^{ij}` table for exponents `a`, `b` and centre
    /// coordinates `ax`, `bx` in this dimension.
    #[must_use]
    pub fn build(i_max: usize, j_max: usize, a: f64, b: f64, ax: f64, bx: f64) -> Self {
        let p = a + b;
        let q = a * b / p;
        let px = (a * ax + b * bx) / p;
        let xab = ax - bx;
        let xpa = px - ax;
        let xpb = px - bx;
        let t_stride = i_max + j_max + 1;
        let mut table = Self {
            data: vec![0.0; (i_max + 1) * (j_max + 1) * t_stride],
            j_max,
            t_stride,
        };
        table.set(0, 0, 0, (-q * xab * xab).exp());
        // Build up i with j = 0.
        for i in 0..i_max {
            for t in 0..=(i + 1) {
                let mut v = xpa * table.get(i, 0, t);
                if t > 0 {
                    v += table.get(i, 0, t - 1) / (2.0 * p);
                }
                if t < i {
                    v += (t + 1) as f64 * table.get(i, 0, t + 1);
                }
                table.set(i + 1, 0, t, v);
            }
        }
        // Build up j for every i.
        for i in 0..=i_max {
            for j in 0..j_max {
                for t in 0..=(i + j + 1) {
                    let mut v = xpb * table.get(i, j, t);
                    if t > 0 {
                        v += table.get(i, j, t - 1) / (2.0 * p);
                    }
                    if t < i + j {
                        v += (t + 1) as f64 * table.get(i, j, t + 1);
                    }
                    table.set(i, j + 1, t, v);
                }
            }
        }
        table
    }

    /// `E_t^{ij}`; zero outside the valid `t` range.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize, t: usize) -> f64 {
        if t >= self.t_stride {
            return 0.0;
        }
        self.data[(i * (self.j_max + 1) + j) * self.t_stride + t]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, t: usize, v: f64) {
        self.data[(i * (self.j_max + 1) + j) * self.t_stride + t] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e000_is_gaussian_prefactor() {
        let (a, b, ax, bx) = (0.9, 1.3, 0.0, 1.5);
        let e = ETable::build(2, 2, a, b, ax, bx);
        let q = a * b / (a + b);
        let expect = (-q * (ax - bx) * (ax - bx)).exp();
        assert!((e.get(0, 0, 0) - expect).abs() < 1e-15);
    }

    #[test]
    fn same_center_odd_t_vanishes_for_s_p() {
        // With A == B, E_t^{ij} reduces to Hermite coefficients of x^{i+j};
        // E_0^{01} = X_PB = 0 on the same centre.
        let e = ETable::build(1, 1, 0.8, 0.8, 2.0, 2.0);
        assert!((e.get(0, 0, 0) - 1.0).abs() < 1e-15);
        assert!(e.get(0, 1, 0).abs() < 1e-15);
        assert!(e.get(1, 0, 0).abs() < 1e-15);
        // E_1^{10} = 1/(2p)
        let p = 1.6;
        assert!((e.get(1, 0, 1) - 1.0 / (2.0 * p)).abs() < 1e-15);
    }

    /// The sum rule Σ_t E_t^{ij} · (t == 0 terms of Λ) recovers the overlap:
    /// ∫ x_A^i x_B^j e^{-a x_A²-b x_B²} dx = E_0^{ij} √(π/p).
    /// Check it against numerical quadrature.
    #[test]
    fn e0_gives_overlap_integral() {
        let (a, b, ax, bx) = (0.7, 0.45, -0.3, 0.9);
        let p = a + b;
        let imax = 3usize;
        let jmax = 3usize;
        let e = ETable::build(imax, jmax, a, b, ax, bx);
        for i in 0..=imax {
            for j in 0..=jmax {
                // numerical integral
                let n = 400_000;
                let (lo, hi) = (-12.0f64, 12.0f64);
                let h = (hi - lo) / n as f64;
                let mut s = 0.0;
                for k in 0..=n {
                    let x = lo + k as f64 * h;
                    let w = if k == 0 || k == n {
                        0.5
                    } else {
                        1.0
                    };
                    s += w
                        * (x - ax).powi(i as i32)
                        * (x - bx).powi(j as i32)
                        * (-a * (x - ax).powi(2) - b * (x - bx).powi(2)).exp();
                }
                s *= h;
                let analytic = e.get(i, j, 0) * (std::f64::consts::PI / p).sqrt();
                assert!(
                    (s - analytic).abs() < 1e-9 * s.abs().max(1e-6),
                    "overlap ({i},{j}): quad {s} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_t_is_zero() {
        let e = ETable::build(1, 1, 0.5, 0.5, 0.0, 1.0);
        assert_eq!(e.get(1, 1, 3), 0.0); // t > i+j within stride? stride=3, t=3 out
    }
}
