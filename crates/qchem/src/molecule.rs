//! Benchmark molecules.
//!
//! The paper evaluates on tri-alanine, benzene, and glutamine (Fig. 8).
//! We carry the same three systems with approximate 3-D geometries:
//! benzene is generated exactly (D6h hexagon), the two peptide-like
//! molecules use chemically plausible coordinates (standard bond lengths,
//! zigzag backbones). For compression behaviour only the *distribution of
//! inter-centre distances* matters — it controls how many shell quartets
//! are far-field (strongly patterned) versus near-field (weakly
//! patterned) — and these geometries reproduce that distribution.

/// Bohr per Ångström.
pub const ANGSTROM: f64 = 1.889_726_124_626_18;

/// One atom: nuclear charge and position in Bohr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    pub z: u32,
    pub pos: [f64; 3],
}

/// A molecular geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    pub name: &'static str,
    pub atoms: Vec<Atom>,
}

impl Molecule {
    /// Number of heavy (non-H) atoms — these carry the d/f shells.
    #[must_use]
    pub fn heavy_atom_count(&self) -> usize {
        self.atoms.iter().filter(|a| a.z > 1).count()
    }

    /// Benzene, C6H6: planar hexagon, r(C) = 1.397 Å, r(H) = 2.481 Å.
    #[must_use]
    pub fn benzene() -> Self {
        let mut atoms = Vec::with_capacity(12);
        for i in 0..6 {
            let th = std::f64::consts::PI / 3.0 * i as f64;
            atoms.push(Atom {
                z: 6,
                pos: [
                    1.397 * ANGSTROM * th.cos(),
                    1.397 * ANGSTROM * th.sin(),
                    0.0,
                ],
            });
        }
        for i in 0..6 {
            let th = std::f64::consts::PI / 3.0 * i as f64;
            atoms.push(Atom {
                z: 1,
                pos: [
                    2.481 * ANGSTROM * th.cos(),
                    2.481 * ANGSTROM * th.sin(),
                    0.0,
                ],
            });
        }
        Self {
            name: "benzene",
            atoms,
        }
    }

    /// Glutamine, C5H10N2O3 (10 heavy atoms): approximate extended
    /// side-chain conformation.
    #[must_use]
    pub fn glutamine() -> Self {
        // Heavy-atom skeleton (Å): backbone N-CA-C(=O)(-OH), side chain
        // CB-CG-CD(=OE1)(-NE2).
        let heavy: [(u32, [f64; 3]); 10] = [
            (7, [0.000, 0.000, 0.000]),   // N
            (6, [1.458, 0.000, 0.000]),   // CA
            (6, [2.009, 1.420, 0.000]),   // C
            (8, [1.251, 2.390, 0.120]),   // O
            (8, [3.330, 1.570, -0.140]),  // OXT
            (6, [2.030, -0.760, 1.220]),  // CB
            (6, [3.550, -0.870, 1.260]),  // CG
            (6, [4.120, -1.640, 2.440]),  // CD
            (8, [3.420, -2.180, 3.290]),  // OE1
            (7, [5.450, -1.720, 2.540]),  // NE2
        ];
        let hydrogens: [[f64; 3]; 10] = [
            [-0.480, 0.880, -0.100],
            [-0.480, -0.820, 0.300],
            [1.800, -0.500, -0.920],
            [1.660, -0.300, 2.140],
            [1.700, -1.790, 1.180],
            [3.930, -1.350, 0.350],
            [3.960, 0.140, 1.300],
            [6.010, -1.280, 1.830],
            [5.880, -2.230, 3.300],
            [3.840, 2.400, -0.120], // carboxyl H
        ];
        let mut atoms: Vec<Atom> = heavy
            .iter()
            .map(|&(z, p)| Atom {
                z,
                pos: [p[0] * ANGSTROM, p[1] * ANGSTROM, p[2] * ANGSTROM],
            })
            .collect();
        atoms.extend(hydrogens.iter().map(|&p| Atom {
            z: 1,
            pos: [p[0] * ANGSTROM, p[1] * ANGSTROM, p[2] * ANGSTROM],
        }));
        Self {
            name: "glutamine",
            atoms,
        }
    }

    /// Tri-alanine (Ala-Ala-Ala), C9H17N3O4 (16 heavy atoms): extended
    /// β-strand-like backbone so residue-residue separations span 0–9 Å.
    #[must_use]
    pub fn tri_alanine() -> Self {
        let mut atoms = Vec::new();
        // Each residue: N, CA, C, O, CB. Backbone advances ~3.6 Å/residue.
        for r in 0..3 {
            let x0 = 3.62 * r as f64;
            let flip = if r % 2 == 0 { 1.0 } else { -1.0 };
            let heavy: [(u32, [f64; 3]); 5] = [
                (7, [x0, 0.25 * flip, 0.00]),          // N
                (6, [x0 + 1.20, -0.45 * flip, 0.10]),  // CA
                (6, [x0 + 2.45, 0.40 * flip, 0.00]),   // C
                (8, [x0 + 2.50, 1.62 * flip, -0.15]),  // O
                (6, [x0 + 1.25, -1.35 * flip, 1.33]),  // CB
            ];
            for &(z, p) in &heavy {
                atoms.push(Atom {
                    z,
                    pos: [p[0] * ANGSTROM, p[1] * ANGSTROM, p[2] * ANGSTROM],
                });
            }
            // Amide/alpha hydrogens (2 per residue) + 3 methyl H.
            let hs: [[f64; 3]; 5] = [
                [x0 - 0.45, 1.05 * flip, 0.25],
                [x0 + 1.15, -1.05 * flip, -0.80],
                [x0 + 0.45, -2.05 * flip, 1.40],
                [x0 + 2.20, -1.85 * flip, 1.40],
                [x0 + 1.10, -0.75 * flip, 2.25],
            ];
            for &p in &hs {
                atoms.push(Atom {
                    z: 1,
                    pos: [p[0] * ANGSTROM, p[1] * ANGSTROM, p[2] * ANGSTROM],
                });
            }
        }
        // C-terminal carboxyl oxygen + its H, N-terminal extra H.
        atoms.push(Atom {
            z: 8,
            pos: [
                (2.0 * 3.62 + 3.45) * ANGSTROM,
                -0.35 * ANGSTROM,
                0.30 * ANGSTROM,
            ],
        });
        atoms.push(Atom {
            z: 1,
            pos: [
                (2.0 * 3.62 + 4.15) * ANGSTROM,
                0.25 * ANGSTROM,
                0.30 * ANGSTROM,
            ],
        });
        atoms.push(Atom {
            z: 1,
            pos: [-0.65 * ANGSTROM, -0.55 * ANGSTROM, 0.15 * ANGSTROM],
        });
        Self {
            name: "tri-alanine",
            atoms,
        }
    }

    /// Tiles `copies` images of this molecule along a shifted diagonal at
    /// `spacing` Ångström, producing a molecular cluster.
    ///
    /// Production quantum-chemistry datasets (the paper's multi-GB GAMESS
    /// files) come from systems much larger than one small molecule; their
    /// shell-quartet population is dominated by *inter-fragment* quartets
    /// at van-der-Waals distances and beyond — exactly the far-field
    /// regime PaSTRI's pattern scaling exploits. A cluster reproduces that
    /// population from the same monomer geometry.
    #[must_use]
    pub fn cluster(&self, copies: usize, spacing: f64) -> Molecule {
        assert!(copies >= 1);
        let mut atoms = Vec::with_capacity(self.atoms.len() * copies);
        for c in 0..copies {
            // Slightly staggered stacking so images are not collinear.
            let dx = spacing * ANGSTROM * c as f64;
            let dy = 0.35 * spacing * ANGSTROM * (c % 2) as f64;
            let dz = 0.8 * spacing * ANGSTROM * c as f64;
            for a in &self.atoms {
                atoms.push(Atom {
                    z: a.z,
                    pos: [a.pos[0] + dx, a.pos[1] + dy, a.pos[2] + dz],
                });
            }
        }
        Molecule {
            name: self.name,
            atoms,
        }
    }

    /// Looks up a benchmark molecule by name (`"benzene"`, `"glutamine"`,
    /// `"alanine"`/`"tri-alanine"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "benzene" => Some(Self::benzene()),
            "glutamine" => Some(Self::glutamine()),
            "alanine" | "tri-alanine" | "trialanine" => Some(Self::tri_alanine()),
            _ => None,
        }
    }

    /// All three benchmark molecules, in the paper's order.
    #[must_use]
    pub fn benchmark_set() -> Vec<Self> {
        vec![Self::tri_alanine(), Self::benzene(), Self::glutamine()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benzene_composition() {
        let m = Molecule::benzene();
        assert_eq!(m.atoms.len(), 12);
        assert_eq!(m.heavy_atom_count(), 6);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 6).count(), 6);
    }

    #[test]
    fn glutamine_composition() {
        // C5H10N2O3
        let m = Molecule::glutamine();
        assert_eq!(m.atoms.len(), 20);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 6).count(), 5);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 7).count(), 2);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 8).count(), 3);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 1).count(), 10);
    }

    #[test]
    fn tri_alanine_composition() {
        // C9H17N3O4
        let m = Molecule::tri_alanine();
        assert_eq!(m.atoms.iter().filter(|a| a.z == 6).count(), 9);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 7).count(), 3);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 8).count(), 4);
        assert_eq!(m.atoms.iter().filter(|a| a.z == 1).count(), 17);
        assert_eq!(m.heavy_atom_count(), 16);
    }

    #[test]
    fn benzene_cc_bond_length() {
        let m = Molecule::benzene();
        let d: f64 = (0..3)
            .map(|k| (m.atoms[0].pos[k] - m.atoms[1].pos[k]).powi(2))
            .sum::<f64>()
            .sqrt();
        // Adjacent ring carbons: 1.397 Å.
        assert!((d / ANGSTROM - 1.397).abs() < 1e-6);
    }

    #[test]
    fn no_atom_collisions() {
        for m in Molecule::benchmark_set() {
            for i in 0..m.atoms.len() {
                for j in (i + 1)..m.atoms.len() {
                    let d: f64 = (0..3)
                        .map(|k| (m.atoms[i].pos[k] - m.atoms[j].pos[k]).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    assert!(
                        d > 0.7 * ANGSTROM,
                        "{}: atoms {i},{j} only {} Bohr apart",
                        m.name,
                        d
                    );
                }
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(Molecule::by_name("benzene").is_some());
        assert!(Molecule::by_name("Tri-Alanine").is_some());
        assert!(Molecule::by_name("water").is_none());
    }

    #[test]
    fn distance_distribution_has_near_and_far_pairs() {
        // The compression story needs both near-field (< 3 Å) and
        // far-field (> 6 Å) heavy-atom pairs.
        let m = Molecule::tri_alanine();
        let heavy: Vec<_> = m.atoms.iter().filter(|a| a.z > 1).collect();
        let mut near = 0;
        let mut far = 0;
        for i in 0..heavy.len() {
            for j in (i + 1)..heavy.len() {
                let d: f64 = (0..3)
                    .map(|k| (heavy[i].pos[k] - heavy[j].pos[k]).powi(2))
                    .sum::<f64>()
                    .sqrt()
                    / ANGSTROM;
                if d < 3.0 {
                    near += 1;
                }
                if d > 6.0 {
                    far += 1;
                }
            }
        }
        assert!(near > 5, "near pairs: {near}");
        assert!(far > 5, "far pairs: {far}");
    }
}
