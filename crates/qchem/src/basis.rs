//! Shells and basis-function configurations.
//!
//! PaSTRI's block geometry is fixed by the *BF configuration* — the
//! angular-momentum class of the shell quartet, e.g. `(dd|dd)` or `(fd|ff)`.
//! The user supplies this up front (Sec. III-B of the paper: "the user
//! should provide the information about which BF configuration is being
//! used"); from it the block dimensions `N1..N4`, number of sub-blocks
//! `N1·N2`, and sub-block size `N3·N4` all follow.

use crate::angular::{shell_letter, shell_size, AngMom};
use crate::molecule::Molecule;

/// A contracted Cartesian Gaussian shell: a set of `(l+1)(l+2)/2` basis
/// functions sharing a centre, angular momentum, and radial part.
#[derive(Debug, Clone, PartialEq)]
pub struct Shell {
    /// Centre in Bohr.
    pub center: [f64; 3],
    /// Total angular momentum.
    pub l: AngMom,
    /// Primitive exponents.
    pub exps: Vec<f64>,
    /// Contraction coefficients (same length as `exps`).
    pub coefs: Vec<f64>,
}

impl Shell {
    /// Number of Cartesian basis functions in this shell.
    #[must_use]
    pub fn size(&self) -> usize {
        shell_size(self.l)
    }
}

/// A basis-function configuration `(l1 l2 | l3 l4)` describing one ERI
/// block class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BfConfig {
    pub l: [AngMom; 4],
}

impl BfConfig {
    /// `(dd|dd)`: 6×6×6×6 blocks, 36 sub-blocks of 36.
    #[must_use]
    pub fn dd_dd() -> Self {
        Self { l: [2, 2, 2, 2] }
    }

    /// `(ff|ff)`: 10×10×10×10 blocks, 100 sub-blocks of 100.
    #[must_use]
    pub fn ff_ff() -> Self {
        Self { l: [3, 3, 3, 3] }
    }

    /// `(fd|ff)`: the worked example from Sec. IV of the paper —
    /// 10·6·10·10 = 6000 points, 60 sub-blocks of 100.
    #[must_use]
    pub fn fd_ff() -> Self {
        Self { l: [3, 2, 3, 3] }
    }

    /// `(df|fd)` hybrid used in the paper's experiments.
    #[must_use]
    pub fn df_fd() -> Self {
        Self { l: [2, 3, 3, 2] }
    }

    /// Parses `"(dd|dd)"`, `"dddd"`, `"(fd|ff)"`, etc.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let letters: Vec<char> = s
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .collect();
        if letters.len() != 4 {
            return None;
        }
        let mut l = [0u32; 4];
        for (dst, &c) in l.iter_mut().zip(letters.iter()) {
            *dst = crate::angular::letter_to_l(c)?;
        }
        Some(Self { l })
    }

    /// Block dimensions `[N1, N2, N3, N4]`.
    #[must_use]
    pub fn dims(&self) -> [usize; 4] {
        [
            shell_size(self.l[0]),
            shell_size(self.l[1]),
            shell_size(self.l[2]),
            shell_size(self.l[3]),
        ]
    }

    /// Total points per block, `N1·N2·N3·N4`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.dims().iter().product()
    }

    /// Number of sub-blocks per block, `N1·N2` (Algorithm 1, line 3).
    #[must_use]
    pub fn num_subblocks(&self) -> usize {
        let d = self.dims();
        d[0] * d[1]
    }

    /// Points per sub-block, `N3·N4` (Algorithm 1, line 4).
    #[must_use]
    pub fn subblock_size(&self) -> usize {
        let d = self.dims();
        d[2] * d[3]
    }

    /// Canonical label like `(dd|dd)`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "({}{}|{}{})",
            shell_letter(self.l[0]),
            shell_letter(self.l[1]),
            shell_letter(self.l[2]),
            shell_letter(self.l[3])
        )
    }
}

/// Builds the shell list of a given angular momentum for a molecule:
/// every heavy (non-hydrogen) atom carries one shell of angular momentum
/// `l` per exponent in `exps`.
///
/// This mirrors how polarization shells (d on C/N/O, f in larger bases)
/// enter real calculations: per-atom, with element-dependent exponents.
#[must_use]
pub fn shells_for(molecule: &Molecule, l: AngMom, exps_per_atom: &[f64]) -> Vec<Shell> {
    let mut shells = Vec::new();
    for atom in &molecule.atoms {
        if atom.z == 1 {
            continue; // hydrogens carry no d/f polarization shells
        }
        // Scale exponents mildly with nuclear charge so C/N/O differ,
        // as they do in real basis sets.
        let zscale = 1.0 + 0.08 * (f64::from(atom.z) - 6.0);
        for &e in exps_per_atom {
            shells.push(Shell {
                center: atom.pos,
                l,
                exps: vec![e * zscale],
                coefs: vec![1.0],
            });
        }
    }
    shells
}

/// Default polarization exponents used by the dataset generator: a
/// double-polarization pair (tight + standard) in the cc-pVTZ 2d1f
/// tradition. Tight polarization functions keep charge clouds compact,
/// which is what makes cross-centre shell quartets far-field — the
/// property PaSTRI's pattern scaling feeds on.
pub const DEFAULT_EXPONENTS: [f64; 2] = [1.2, 3.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dd_dd_geometry() {
        let c = BfConfig::dd_dd();
        assert_eq!(c.dims(), [6, 6, 6, 6]);
        assert_eq!(c.block_size(), 1296);
        assert_eq!(c.num_subblocks(), 36);
        assert_eq!(c.subblock_size(), 36);
        assert_eq!(c.label(), "(dd|dd)");
    }

    #[test]
    fn fd_ff_matches_paper_example() {
        // Sec. IV: (fd|ff) block = 10·6·10·10 = 6000 points,
        // 60 sub-blocks of 100 points each.
        let c = BfConfig::fd_ff();
        assert_eq!(c.block_size(), 6000);
        assert_eq!(c.num_subblocks(), 60);
        assert_eq!(c.subblock_size(), 100);
    }

    #[test]
    fn parse_variants() {
        assert_eq!(BfConfig::parse("(dd|dd)"), Some(BfConfig::dd_dd()));
        assert_eq!(BfConfig::parse("ffff"), Some(BfConfig::ff_ff()));
        assert_eq!(BfConfig::parse("(fd|ff)"), Some(BfConfig::fd_ff()));
        assert_eq!(BfConfig::parse("(dd|d)"), None);
        assert_eq!(BfConfig::parse("(qq|qq)"), None);
    }

    #[test]
    fn shells_skip_hydrogens() {
        let benzene = Molecule::benzene();
        let shells = shells_for(&benzene, 2, &DEFAULT_EXPONENTS);
        // 6 carbons × 2 exponents.
        assert_eq!(shells.len(), 12);
        for s in &shells {
            assert_eq!(s.l, 2);
            assert_eq!(s.size(), 6);
        }
    }
}
