//! Minimal dense linear algebra for the SCF driver: a row-major matrix
//! type, products, and a cyclic Jacobi eigensolver for real symmetric
//! matrices (all the SCF needs: `S^{-1/2}` and Fock diagonalization).
//!
//! Basis-set dimensions here are tiny (≤ a few dozen), so simplicity and
//! correctness beat asymptotics.

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Matrix product `self · other`.
    #[must_use]
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Largest absolute off-diagonal element (square matrices).
    #[must_use]
    pub fn max_offdiagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// Frobenius norm of `self − other`.
    #[must_use]
    pub fn distance(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Eigendecomposition of a real symmetric matrix: `a = V · diag(λ) · Vᵀ`.
///
/// Cyclic Jacobi with convergence on the off-diagonal norm; eigenpairs
/// are returned sorted ascending by eigenvalue.
///
/// # Panics
/// Panics if `a` is not square.
#[must_use]
pub fn eigh(a: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(a.rows, a.cols, "eigh needs a square matrix");
    let n = a.rows;
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..200 {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let (app, aqq) = (m[(p, p)], m[(q, q)]);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/cols p and q.
                for k in 0..n {
                    let (mkp, mkq) = (m[(k, p)], m[(k, q)]);
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[(p, k)], m[(q, k)]);
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let (vkp, vkq) = (v[(k, p)], v[(k, q)]);
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    (eigenvalues, vectors)
}

/// `S^{-1/2}` of a symmetric positive-definite matrix (the symmetric
/// orthogonalizer of SCF).
///
/// # Panics
/// Panics if any eigenvalue is ≤ 1e-12 (linearly dependent basis).
#[must_use]
pub fn inverse_sqrt(s: &Matrix) -> Matrix {
    let (vals, vecs) = eigh(s);
    let n = s.rows;
    let mut d = Matrix::zeros(n, n);
    for (i, &l) in vals.iter().enumerate() {
        assert!(l > 1e-12, "matrix not positive definite (eigenvalue {l})");
        d[(i, i)] = 1.0 / l.sqrt();
    }
    vecs.mul(&d).mul(&vecs.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_mul() {
        let i3 = Matrix::identity(3);
        let a = Matrix::from_rows(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 10.]);
        assert_eq!(i3.mul(&a), a);
        assert_eq!(a.mul(&i3), a);
    }

    #[test]
    fn eigh_diagonal() {
        let a = Matrix::from_rows(3, 3, &[3., 0., 0., 0., 1., 0., 0., 0., 2.]);
        let (vals, _) = eigh(&a);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigh_known_2x2() {
        // [[2,1],[1,2]] -> eigenvalues 1, 3 with (1,∓1)/√2 vectors.
        let a = Matrix::from_rows(2, 2, &[2., 1., 1., 2.]);
        let (vals, vecs) = eigh(&a);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Check A v = λ v for both.
        for k in 0..2 {
            for i in 0..2 {
                let av: f64 = (0..2).map(|j| a[(i, j)] * vecs[(j, k)]).sum();
                assert!((av - vals[k] * vecs[(i, k)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eigh_reconstructs_matrix() {
        // Random-ish symmetric 6x6.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        let mut x = 1u64;
        for i in 0..n {
            for j in i..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((x >> 33) as f64 / 2f64.powi(31)) - 0.5;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let (vals, vecs) = eigh(&a);
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = vals[i];
        }
        let rebuilt = vecs.mul(&d).mul(&vecs.transpose());
        assert!(rebuilt.distance(&a) < 1e-10, "distance {}", rebuilt.distance(&a));
        // Orthogonality.
        let vtv = vecs.transpose().mul(&vecs);
        assert!(vtv.distance(&Matrix::identity(n)) < 1e-10);
    }

    #[test]
    fn inverse_sqrt_property() {
        let s = Matrix::from_rows(2, 2, &[1.0, 0.45, 0.45, 1.0]);
        let x = inverse_sqrt(&s);
        // Xᵀ S X = I (the orthogonalization property).
        let t = x.transpose().mul(&s).mul(&x);
        assert!(t.distance(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn inverse_sqrt_rejects_singular() {
        let s = Matrix::from_rows(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        let _ = inverse_sqrt(&s);
    }
}
