//! Second-order Møller–Plesset perturbation theory (MP2).
//!
//! The paper's introduction names post-Hartree–Fock methods as direct
//! beneficiaries of compressed ERIs ("post-Hartree-Fock methods need to
//! assemble molecular integrals from ERIs. Compressing and storing the
//! latter can lead to considerable speedup"). MP2 is the canonical such
//! method: it consumes the *same* AO-basis ERI tensor the SCF used,
//! transformed to the molecular-orbital basis, so a compressed ERI store
//! feeds it without recomputation.
//!
//! Closed-shell MP2 correlation energy:
//!
//! ```text
//! E(2) = Σ_{i,j ∈ occ} Σ_{a,b ∈ virt}  (ia|jb) · [2(ia|jb) − (ib|ja)]
//!                                      ──────────────────────────────
//!                                        ε_i + ε_j − ε_a − ε_b
//! ```
//!
//! The AO→MO transformation is done as four quarter-transformations
//! (O(N⁵) instead of the naive O(N⁸)).

use crate::linalg::Matrix;
use crate::scf::ScfResult;

/// Transforms the AO-basis ERI tensor `(μν|λσ)` (chemists' order, `n⁴`
/// values, μ slowest) into the MO basis with coefficients `c`
/// (AO rows × MO columns).
#[must_use]
pub fn ao_to_mo(eri_ao: &[f64], c: &Matrix) -> Vec<f64> {
    let n = c.rows;
    assert_eq!(eri_ao.len(), n * n * n * n, "ERI tensor size mismatch");
    assert_eq!(c.rows, c.cols);
    let idx = |a: usize, b: usize, cc: usize, d: usize| ((a * n + b) * n + cc) * n + d;

    // Quarter transformation over each index in turn.
    let mut t1 = vec![0.0f64; n * n * n * n];
    for p in 0..n {
        for nu in 0..n {
            for lam in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for mu in 0..n {
                        acc += c[(mu, p)] * eri_ao[idx(mu, nu, lam, sig)];
                    }
                    t1[idx(p, nu, lam, sig)] = acc;
                }
            }
        }
    }
    let mut t2 = vec![0.0f64; n * n * n * n];
    for p in 0..n {
        for q in 0..n {
            for lam in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for nu in 0..n {
                        acc += c[(nu, q)] * t1[idx(p, nu, lam, sig)];
                    }
                    t2[idx(p, q, lam, sig)] = acc;
                }
            }
        }
    }
    let mut t3 = vec![0.0f64; n * n * n * n];
    for p in 0..n {
        for q in 0..n {
            for r in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for lam in 0..n {
                        acc += c[(lam, r)] * t2[idx(p, q, lam, sig)];
                    }
                    t3[idx(p, q, r, sig)] = acc;
                }
            }
        }
    }
    let mut mo = vec![0.0f64; n * n * n * n];
    for p in 0..n {
        for q in 0..n {
            for r in 0..n {
                for sg in 0..n {
                    let mut acc = 0.0;
                    for sig in 0..n {
                        acc += c[(sig, sg)] * t3[idx(p, q, r, sig)];
                    }
                    mo[idx(p, q, r, sg)] = acc;
                }
            }
        }
    }
    mo
}

/// Closed-shell MP2 correlation energy from a converged RHF result and
/// the AO-basis ERI tensor (the same tensor the SCF consumed — e.g.
/// decompressed from a PaSTRI store).
///
/// # Panics
/// Panics if the SCF did not converge or dimensions disagree.
#[must_use]
pub fn mp2_correlation(scf: &ScfResult, eri_ao: &[f64]) -> f64 {
    assert!(scf.converged, "MP2 on an unconverged SCF is meaningless");
    let n = scf.coefficients.rows;
    let n_occ = scf.n_occupied;
    let mo = ao_to_mo(eri_ao, &scf.coefficients);
    let idx = |a: usize, b: usize, c: usize, d: usize| ((a * n + b) * n + c) * n + d;
    let eps = &scf.orbital_energies;

    let mut e2 = 0.0;
    for i in 0..n_occ {
        for j in 0..n_occ {
            for a in n_occ..n {
                for b in n_occ..n {
                    let iajb = mo[idx(i, a, j, b)];
                    let ibja = mo[idx(i, b, j, a)];
                    let denom = eps[i] + eps[j] - eps[a] - eps[b];
                    e2 += iajb * (2.0 * iajb - ibja) / denom;
                }
            }
        }
    }
    e2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{run_rhf, systems, HfSystem, InMemoryEri, ScfOptions};

    fn rhf_with_tensor(mol: &crate::molecule::Molecule) -> (ScfResult, Vec<f64>) {
        let sys = HfSystem::sto3g(mol);
        let tensor = sys.eri_tensor();
        let scf = run_rhf(&sys, &InMemoryEri(tensor.clone()), ScfOptions::default());
        assert!(scf.converged);
        (scf, tensor)
    }

    #[test]
    fn mo_transform_preserves_symmetry() {
        let (scf, tensor) = rhf_with_tensor(&systems::h2());
        let mo = ao_to_mo(&tensor, &scf.coefficients);
        let n = scf.coefficients.rows;
        let g = |a: usize, b: usize, c: usize, d: usize| mo[((a * n + b) * n + c) * n + d];
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    for d in 0..n {
                        // (pq|rs) = (qp|rs) = (pq|sr) = (rs|pq) for real orbitals.
                        let v = g(a, b, c, d);
                        assert!((v - g(b, a, c, d)).abs() < 1e-10);
                        assert!((v - g(a, b, d, c)).abs() < 1e-10);
                        assert!((v - g(c, d, a, b)).abs() < 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn h2_mp2_correlation_in_literature_range() {
        // H2/STO-3G at R = 1.4 a0: E_corr(MP2) ≈ -0.013 hartree
        // (full CI correlation is -0.0206; MP2 recovers about 2/3).
        let (scf, tensor) = rhf_with_tensor(&systems::h2());
        let e2 = mp2_correlation(&scf, &tensor);
        assert!(e2 < 0.0, "correlation energy must be negative: {e2}");
        assert!(
            (-0.022..=-0.008).contains(&e2),
            "H2 MP2 correlation {e2} outside literature range"
        );
    }

    #[test]
    fn helium_mp2_correlation_in_literature_range() {
        // He/STO-3G has a single occupied and a... no virtuals (1 BF!) —
        // correlation is exactly zero with no virtual space.
        let (scf, tensor) = rhf_with_tensor(&systems::helium());
        let e2 = mp2_correlation(&scf, &tensor);
        assert_eq!(e2, 0.0, "no virtual orbitals -> no correlation");
    }

    #[test]
    fn water_mp2_correlation_in_literature_range() {
        // H2O/STO-3G MP2 correlation ≈ -0.035 to -0.04 hartree.
        let (scf, tensor) = rhf_with_tensor(&systems::water());
        let e2 = mp2_correlation(&scf, &tensor);
        assert!(
            (-0.06..=-0.02).contains(&e2),
            "water MP2 correlation {e2} outside literature range"
        );
    }

    #[test]
    fn mp2_total_energy_below_hf() {
        // The variational-flavoured sanity check: E(MP2) < E(HF).
        let (scf, tensor) = rhf_with_tensor(&systems::water());
        let e2 = mp2_correlation(&scf, &tensor);
        assert!(scf.energy + e2 < scf.energy);
    }
}
