//! Quantum-chemistry substrate: the GAMESS stand-in.
//!
//! The PaSTRI paper evaluates on two-electron repulsion integral (ERI)
//! datasets produced by the Fortran package GAMESS, which we do not have.
//! This crate replaces it with a from-scratch analytic Gaussian integral
//! engine so the compressed data has the *same latent structure* the paper
//! exploits — the far-field factorization of shell-quartet blocks
//! (Eq. (2)–(3) of the paper) arises here from the actual Coulomb physics,
//! not from a synthetic template.
//!
//! Contents:
//!
//! * [`angular`] — angular momenta, Cartesian component enumeration, shell
//!   sizes `(l+1)(l+2)/2`.
//! * [`boys`] — the Boys function `F_n(x)`, the special function at the core
//!   of Gaussian integral evaluation.
//! * [`hermite`] — McMurchie–Davidson Hermite expansion coefficients `E_t^{ij}`.
//! * [`md`] — Hermite Coulomb integrals `R^n_{tuv}` and full contracted
//!   shell-quartet ERI blocks.
//! * [`molecule`] — the three benchmark molecules (benzene, glutamine,
//!   tri-alanine) with approximate 3D geometries.
//! * [`basis`] — shell construction for a basis-function configuration such
//!   as `(dd|dd)` or `(ff|ff)`.
//! * [`dataset`] — the ERI dataset generator: enumerates shell quartets,
//!   evaluates blocks (analytically, or with a calibrated far-field model
//!   for large volumes), and lays them out as the 1-D stream PaSTRI
//!   compresses.
//!
//! # Quick example
//!
//! ```
//! use qchem::dataset::{DatasetSpec, EriDataset};
//! use qchem::basis::BfConfig;
//! use qchem::molecule::Molecule;
//!
//! let spec = DatasetSpec {
//!     molecule: Molecule::benzene(),
//!     config: BfConfig::dd_dd(),
//!     max_blocks: 16,
//!     seed: 7,
//! };
//! let ds = EriDataset::generate(&spec);
//! assert_eq!(ds.values.len(), 16 * 6 * 6 * 6 * 6);
//! ```

pub mod angular;
pub mod basis;
pub mod boys;
pub mod dataset;
pub mod hermite;
pub mod linalg;
pub mod md;
pub mod mp2;
pub mod molecule;
pub mod oneint;
pub mod scf;
pub mod sto3g;
pub mod uhf;

pub use basis::{BfConfig, Shell};
pub use dataset::{DatasetSpec, EriDataset};
pub use molecule::Molecule;
