//! Unrestricted Hartree–Fock (UHF) — open-shell systems and
//! symmetry-broken dissociation, the second method the paper's
//! introduction names among the beneficiaries of compressed ERIs.
//!
//! Spin-separated Pople–Nesbet equations: two densities `D_α`, `D_β` and
//! two Fock matrices
//!
//! ```text
//! F_σ = H + J(D_α + D_β) − K(D_σ),   σ ∈ {α, β}
//! ```
//!
//! solved in the same symmetric-orthogonalized basis as the RHF driver,
//! against the same [`EriSource`](crate::scf::EriSource) abstraction —
//! so UHF, too, runs off decompressed integral tensors unchanged.

use crate::linalg::{eigh, inverse_sqrt, Matrix};
use crate::scf::{EriSource, HfSystem, ScfOptions};

/// UHF outcome.
#[derive(Debug, Clone)]
pub struct UhfResult {
    /// Total energy (electronic + nuclear repulsion), hartree.
    pub energy: f64,
    /// Alpha / beta orbital energies, ascending.
    pub alpha_energies: Vec<f64>,
    pub beta_energies: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether convergence criteria were met.
    pub converged: bool,
}

/// UHF options: SCF knobs plus the initial-guess symmetry breaking.
#[derive(Debug, Clone, Copy)]
pub struct UhfOptions {
    pub scf: ScfOptions,
    /// HOMO–LUMO mixing angle (radians) applied to the *alpha* orbitals
    /// of the first iteration. Zero keeps the spin-symmetric solution;
    /// a small angle (~0.3) lets dissociating closed-shell systems relax
    /// to the broken-symmetry UHF state.
    pub guess_mix: f64,
}

impl Default for UhfOptions {
    fn default() -> Self {
        Self {
            scf: ScfOptions::default(),
            guess_mix: 0.0,
        }
    }
}

/// Runs UHF with `n_alpha` / `n_beta` electrons.
///
/// # Panics
/// Panics if the electron counts exceed the basis size.
#[must_use]
pub fn run_uhf(
    system: &HfSystem,
    n_alpha: usize,
    n_beta: usize,
    eri: &dyn EriSource,
    opts: UhfOptions,
) -> UhfResult {
    let n = system.nbf();
    assert!(n_alpha <= n && n_beta <= n, "more electrons than basis functions");
    let (s, h) = system.one_electron_matrices();
    let x = inverse_sqrt(&s);
    let e_nuc = system.nuclear_repulsion();

    let mut d_alpha = Matrix::zeros(n, n);
    let mut d_beta = Matrix::zeros(n, n);
    let mut e_elec = 0.0f64;
    let mut alpha_energies = Vec::new();
    let mut beta_energies = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.scf.max_iterations {
        iterations = iter + 1;
        let tensor = eri.tensor();
        assert_eq!(tensor.len(), n * n * n * n);
        let g = |a: usize, b: usize, c: usize, d: usize| tensor[((a * n + b) * n + c) * n + d];

        let total = add(&d_alpha, &d_beta);
        let mut f_alpha = h.clone();
        let mut f_beta = h.clone();
        for m in 0..n {
            for u in 0..n {
                let mut j = 0.0;
                let mut ka = 0.0;
                let mut kb = 0.0;
                for l in 0..n {
                    for sg in 0..n {
                        j += total[(l, sg)] * g(m, u, sg, l);
                        ka += d_alpha[(l, sg)] * g(m, l, sg, u);
                        kb += d_beta[(l, sg)] * g(m, l, sg, u);
                    }
                }
                f_alpha[(m, u)] += j - ka;
                f_beta[(m, u)] += j - kb;
            }
        }

        // Energy of the current densities.
        let mut e_new = 0.0;
        for m in 0..n {
            for u in 0..n {
                e_new += 0.5
                    * (total[(u, m)] * h[(m, u)]
                        + d_alpha[(u, m)] * f_alpha[(m, u)]
                        + d_beta[(u, m)] * f_beta[(m, u)]);
            }
        }

        // Diagonalize both spins.
        let (eps_a, mut c_a) = diagonalize(&f_alpha, &x);
        let (eps_b, c_b) = diagonalize(&f_beta, &x);

        // Symmetry-breaking guess mix on the first iteration.
        if iter == 0 && opts.guess_mix != 0.0 && n_alpha >= 1 && n_alpha < n {
            let (homo, lumo) = (n_alpha - 1, n_alpha);
            let (cos, sin) = (opts.guess_mix.cos(), opts.guess_mix.sin());
            for mu in 0..n {
                let (ch, cl) = (c_a[(mu, homo)], c_a[(mu, lumo)]);
                c_a[(mu, homo)] = cos * ch + sin * cl;
                c_a[(mu, lumo)] = -sin * ch + cos * cl;
            }
        }

        let da_new = density(&c_a, n_alpha);
        let db_new = density(&c_b, n_beta);

        let de = (e_new - e_elec).abs();
        let dd = da_new.distance(&d_alpha) + db_new.distance(&d_beta);
        e_elec = e_new;
        d_alpha = da_new;
        d_beta = db_new;
        alpha_energies = eps_a;
        beta_energies = eps_b;
        if iter > 1 && de < opts.scf.energy_tol && dd < opts.scf.density_tol {
            converged = true;
            break;
        }
    }

    UhfResult {
        energy: e_elec + e_nuc,
        alpha_energies,
        beta_energies,
        iterations,
        converged,
    }
}

fn add(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = a.clone();
    for i in 0..a.rows {
        for j in 0..a.cols {
            out[(i, j)] += b[(i, j)];
        }
    }
    out
}

fn diagonalize(f: &Matrix, x: &Matrix) -> (Vec<f64>, Matrix) {
    let f_prime = x.transpose().mul(f).mul(x);
    let (eps, c_prime) = eigh(&f_prime);
    (eps, x.mul(&c_prime))
}

fn density(c: &Matrix, n_occ: usize) -> Matrix {
    let n = c.rows;
    let mut d = Matrix::zeros(n, n);
    for m in 0..n {
        for u in 0..n {
            let mut acc = 0.0;
            for i in 0..n_occ {
                acc += c[(m, i)] * c[(u, i)];
            }
            d[(m, u)] = acc;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::{Atom, Molecule};
    use crate::scf::{run_rhf, systems, InMemoryEri, ScfOptions};

    fn uhf(mol: &Molecule, na: usize, nb: usize, mix: f64) -> UhfResult {
        let sys = crate::scf::HfSystem::sto3g(mol);
        let eri = InMemoryEri(sys.eri_tensor());
        run_uhf(
            &sys,
            na,
            nb,
            &eri,
            UhfOptions {
                guess_mix: mix,
                scf: ScfOptions {
                    max_iterations: 300,
                    ..Default::default()
                },
            },
        )
    }

    #[test]
    fn hydrogen_atom_energy() {
        // One electron: E(UHF) = <1s|h|1s> = -0.4666 hartree in STO-3G.
        let mol = Molecule {
            name: "H",
            atoms: vec![Atom { z: 1, pos: [0.0; 3] }],
        };
        let r = uhf(&mol, 1, 0, 0.0);
        assert!(r.converged);
        assert!(
            (r.energy - (-0.4666)).abs() < 1e-3,
            "H atom energy {}",
            r.energy
        );
    }

    #[test]
    fn singlet_uhf_matches_rhf_at_equilibrium() {
        // Without symmetry breaking, UHF on closed-shell H2 at the
        // equilibrium distance reproduces the RHF energy.
        let mol = systems::h2();
        let u = uhf(&mol, 1, 1, 0.0);
        let sys = crate::scf::HfSystem::sto3g(&mol);
        let r = run_rhf(&sys, &InMemoryEri(sys.eri_tensor()), ScfOptions::default());
        assert!(u.converged && r.converged);
        assert!(
            (u.energy - r.energy).abs() < 1e-8,
            "UHF {} vs RHF {}",
            u.energy,
            r.energy
        );
    }

    #[test]
    fn symmetry_breaking_at_dissociation() {
        // Stretched H2 (R = 4.0 a0): broken-symmetry UHF drops below RHF
        // and approaches two free hydrogen atoms (2 × -0.4666 = -0.933).
        let mol = Molecule {
            name: "H2-stretched",
            atoms: vec![
                Atom { z: 1, pos: [0.0; 3] },
                Atom { z: 1, pos: [0.0, 0.0, 4.0] },
            ],
        };
        let sys = crate::scf::HfSystem::sto3g(&mol);
        let rhf = run_rhf(&sys, &InMemoryEri(sys.eri_tensor()), ScfOptions::default());
        let broken = uhf(&mol, 1, 1, 0.35);
        assert!(rhf.converged && broken.converged);
        assert!(
            broken.energy < rhf.energy - 0.01,
            "UHF {} must break below RHF {}",
            broken.energy,
            rhf.energy
        );
        assert!(
            (broken.energy - (-0.933)).abs() < 0.05,
            "dissociation limit: {}",
            broken.energy
        );
    }

    #[test]
    fn triplet_h2_above_singlet() {
        // Triplet H2 (both electrons alpha) at equilibrium is unbound
        // relative to the singlet ground state.
        let mol = systems::h2();
        let singlet = uhf(&mol, 1, 1, 0.0);
        let triplet = uhf(&mol, 2, 0, 0.0);
        assert!(singlet.converged && triplet.converged);
        assert!(
            triplet.energy > singlet.energy + 0.2,
            "triplet {} vs singlet {}",
            triplet.energy,
            singlet.energy
        );
    }
}
