//! Closed-shell restricted Hartree–Fock — the application the paper's
//! introduction motivates.
//!
//! An SCF iteration needs the same two-electron integrals every cycle;
//! PaSTRI's whole purpose is to make "generate once, decompress per
//! iteration" cheaper than regeneration. The driver here is deliberately
//! integral-source-agnostic: it pulls the ERI tensor from an
//! [`EriSource`] each time it builds a Fock matrix, so exact in-memory
//! tensors and decompress-on-demand sources (see
//! `examples/scf_compressed_integrals.rs`) run through identical code.
//!
//! Algorithm: standard Roothaan SCF with symmetric orthogonalization
//! (Szabo & Ostlund §3.4.6).

use crate::basis::Shell;
use crate::linalg::{eigh, inverse_sqrt, Matrix};
use crate::md::eri_block;
use crate::molecule::{Atom, Molecule};
use crate::oneint::{kinetic, nuclear, overlap};
use crate::sto3g;

/// Where the SCF gets its two-electron integrals each iteration.
pub trait EriSource {
    /// The full `(μν|λσ)` tensor, `nbf⁴` values in chemists' order with
    /// μ slowest.
    fn tensor(&self) -> Vec<f64>;
}

/// Exact in-memory ERI tensor.
pub struct InMemoryEri(pub Vec<f64>);

impl EriSource for InMemoryEri {
    fn tensor(&self) -> Vec<f64> {
        self.0.clone()
    }
}

/// A molecule prepared for RHF: shells, atoms, electron count.
#[derive(Debug, Clone)]
pub struct HfSystem {
    pub shells: Vec<Shell>,
    pub atoms: Vec<Atom>,
    pub n_electrons: usize,
}

impl HfSystem {
    /// Neutral molecule in the STO-3G basis.
    #[must_use]
    pub fn sto3g(molecule: &Molecule) -> Self {
        Self {
            shells: sto3g::shells_for_molecule(molecule),
            atoms: molecule.atoms.clone(),
            n_electrons: molecule.atoms.iter().map(|a| a.z as usize).sum(),
        }
    }

    /// Same, with a total charge (e.g. +1 for HeH⁺).
    #[must_use]
    pub fn sto3g_with_charge(molecule: &Molecule, charge: i32) -> Self {
        let mut sys = Self::sto3g(molecule);
        sys.n_electrons = (sys.n_electrons as i64 - i64::from(charge)) as usize;
        sys
    }

    /// Number of basis functions.
    #[must_use]
    pub fn nbf(&self) -> usize {
        self.shells.iter().map(Shell::size).sum()
    }

    /// Classical nuclear repulsion energy.
    #[must_use]
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                let d: f64 = (0..3)
                    .map(|k| (self.atoms[i].pos[k] - self.atoms[j].pos[k]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                e += f64::from(self.atoms[i].z) * f64::from(self.atoms[j].z) / d;
            }
        }
        e
    }

    /// Assembles overlap and core-Hamiltonian matrices.
    #[must_use]
    pub fn one_electron_matrices(&self) -> (Matrix, Matrix) {
        let n = self.nbf();
        let mut s = Matrix::zeros(n, n);
        let mut h = Matrix::zeros(n, n);
        let offsets = self.shell_offsets();
        for (a, sa) in self.shells.iter().enumerate() {
            for (b, sb) in self.shells.iter().enumerate() {
                let sb_block = overlap(sa, sb);
                let t_block = kinetic(sa, sb);
                let v_block = nuclear(sa, sb, &self.atoms);
                for i in 0..sa.size() {
                    for j in 0..sb.size() {
                        s[(offsets[a] + i, offsets[b] + j)] = sb_block[(i, j)];
                        h[(offsets[a] + i, offsets[b] + j)] =
                            t_block[(i, j)] + v_block[(i, j)];
                    }
                }
            }
        }
        (s, h)
    }

    /// Assembles the full ERI tensor `(μν|λσ)`, `nbf⁴` values.
    #[must_use]
    pub fn eri_tensor(&self) -> Vec<f64> {
        let n = self.nbf();
        let offsets = self.shell_offsets();
        let mut eri = vec![0.0f64; n * n * n * n];
        for (a, sa) in self.shells.iter().enumerate() {
            for (b, sb) in self.shells.iter().enumerate() {
                for (c, sc) in self.shells.iter().enumerate() {
                    for (d, sd) in self.shells.iter().enumerate() {
                        let block = eri_block(sa, sb, sc, sd);
                        let (na, nb, nc, nd) =
                            (sa.size(), sb.size(), sc.size(), sd.size());
                        for ia in 0..na {
                            for ib in 0..nb {
                                for ic in 0..nc {
                                    for id in 0..nd {
                                        let v = block[((ia * nb + ib) * nc + ic) * nd + id];
                                        let (m, u, l, s_) = (
                                            offsets[a] + ia,
                                            offsets[b] + ib,
                                            offsets[c] + ic,
                                            offsets[d] + id,
                                        );
                                        eri[((m * n + u) * n + l) * n + s_] = v;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        eri
    }

    fn shell_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.shells.len());
        let mut acc = 0;
        for s in &self.shells {
            offsets.push(acc);
            acc += s.size();
        }
        offsets
    }
}

/// SCF convergence knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScfOptions {
    pub max_iterations: usize,
    /// Convergence threshold on |ΔE| (hartree).
    pub energy_tol: f64,
    /// Convergence threshold on the density-matrix Frobenius change.
    pub density_tol: f64,
}

impl Default for ScfOptions {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            energy_tol: 1e-10,
            density_tol: 1e-8,
        }
    }
}

/// SCF outcome.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear repulsion), hartree.
    pub energy: f64,
    /// Electronic part alone.
    pub electronic_energy: f64,
    /// Orbital energies, ascending.
    pub orbital_energies: Vec<f64>,
    /// MO coefficient matrix (AO rows × MO columns, MOs ascending by
    /// energy) — what post-HF methods (MP2) transform integrals with.
    pub coefficients: Matrix,
    /// Number of doubly occupied orbitals.
    pub n_occupied: usize,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether both convergence criteria were met.
    pub converged: bool,
}

/// Runs restricted Hartree–Fock for `system`, pulling the ERI tensor from
/// `eri` at every Fock build.
///
/// # Panics
/// Panics on an odd electron count (RHF is closed-shell) or a linearly
/// dependent basis.
#[must_use]
pub fn run_rhf(system: &HfSystem, eri: &dyn EriSource, opts: ScfOptions) -> ScfResult {
    assert!(
        system.n_electrons.is_multiple_of(2),
        "RHF needs an even electron count, got {}",
        system.n_electrons
    );
    let n = system.nbf();
    let n_occ = system.n_electrons / 2;
    assert!(n_occ <= n, "more electron pairs than basis functions");

    let (s, h) = system.one_electron_matrices();
    let x = inverse_sqrt(&s);
    let e_nuc = system.nuclear_repulsion();

    let mut p = Matrix::zeros(n, n);
    let mut e_elec = 0.0f64;
    let mut orbital_energies = Vec::new();
    let mut coefficients = Matrix::zeros(n, n);
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.max_iterations {
        iterations = iter + 1;
        // Fock matrix from the current density and fresh integrals.
        let tensor = eri.tensor();
        assert_eq!(tensor.len(), n * n * n * n, "ERI tensor has wrong size");
        let mut f = h.clone();
        for m in 0..n {
            for u in 0..n {
                let mut g = 0.0;
                for l in 0..n {
                    for s_ in 0..n {
                        let coulomb = tensor[((m * n + u) * n + s_) * n + l];
                        let exchange = tensor[((m * n + l) * n + s_) * n + u];
                        g += p[(l, s_)] * (coulomb - 0.5 * exchange);
                    }
                }
                f[(m, u)] += g;
            }
        }

        // Energy of the *current* density with this Fock.
        let mut e_new = 0.0;
        for m in 0..n {
            for u in 0..n {
                e_new += 0.5 * p[(u, m)] * (h[(m, u)] + f[(m, u)]);
            }
        }

        // Diagonalize in the orthogonal basis.
        let f_prime = x.transpose().mul(&f).mul(&x);
        let (eps, c_prime) = eigh(&f_prime);
        let c = x.mul(&c_prime);

        // New density from the lowest n_occ orbitals.
        let mut p_new = Matrix::zeros(n, n);
        for m in 0..n {
            for u in 0..n {
                let mut acc = 0.0;
                for i in 0..n_occ {
                    acc += c[(m, i)] * c[(u, i)];
                }
                p_new[(m, u)] = 2.0 * acc;
            }
        }

        let de = (e_new - e_elec).abs();
        let dp = p_new.distance(&p);
        e_elec = e_new;
        p = p_new;
        orbital_energies = eps;
        coefficients = c;
        if iter > 0 && de < opts.energy_tol && dp < opts.density_tol {
            converged = true;
            break;
        }
    }

    ScfResult {
        energy: e_elec + e_nuc,
        electronic_energy: e_elec,
        orbital_energies,
        coefficients,
        n_occupied: n_occ,
        iterations,
        converged,
    }
}

/// Convenience geometries for the SCF tests and examples.
pub mod systems {
    use crate::molecule::{Atom, Molecule};

    /// H₂ at the Szabo–Ostlund bond length 1.4 a₀.
    #[must_use]
    pub fn h2() -> Molecule {
        Molecule {
            name: "H2",
            atoms: vec![
                Atom { z: 1, pos: [0.0, 0.0, 0.0] },
                Atom { z: 1, pos: [0.0, 0.0, 1.4] },
            ],
        }
    }

    /// A helium atom.
    #[must_use]
    pub fn helium() -> Molecule {
        Molecule {
            name: "He",
            atoms: vec![Atom { z: 2, pos: [0.0; 3] }],
        }
    }

    /// HeH⁺ at 1.4632 a₀ (Szabo & Ostlund's worked example geometry).
    #[must_use]
    pub fn heh_cation() -> Molecule {
        Molecule {
            name: "HeH+",
            atoms: vec![
                Atom { z: 2, pos: [0.0, 0.0, 0.0] },
                Atom { z: 1, pos: [0.0, 0.0, 1.4632] },
            ],
        }
    }

    /// Water at the standard experimental geometry
    /// (r(OH) = 0.9572 Å, ∠HOH = 104.52°).
    #[must_use]
    pub fn water() -> Molecule {
        use crate::molecule::ANGSTROM;
        let r = 0.9572 * ANGSTROM;
        let half = 104.52f64.to_radians() / 2.0;
        Molecule {
            name: "H2O",
            atoms: vec![
                Atom { z: 8, pos: [0.0, 0.0, 0.0] },
                Atom {
                    z: 1,
                    pos: [r * half.sin(), 0.0, r * half.cos()],
                },
                Atom {
                    z: 1,
                    pos: [-r * half.sin(), 0.0, r * half.cos()],
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rhf_energy(molecule: &Molecule, charge: i32) -> ScfResult {
        let sys = HfSystem::sto3g_with_charge(molecule, charge);
        let eri = InMemoryEri(sys.eri_tensor());
        run_rhf(&sys, &eri, ScfOptions::default())
    }

    #[test]
    fn h2_sto3g_energy_matches_literature() {
        // Szabo & Ostlund: E(RHF/STO-3G, R = 1.4 a0) = -1.1167 hartree.
        let r = rhf_energy(&systems::h2(), 0);
        assert!(r.converged, "SCF did not converge");
        assert!(
            (r.energy - (-1.1167)).abs() < 2e-3,
            "H2 energy {} vs -1.1167",
            r.energy
        );
        // Nuclear repulsion is 1/1.4.
        let e_nuc = HfSystem::sto3g(&systems::h2()).nuclear_repulsion();
        assert!((e_nuc - 1.0 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn helium_sto3g_energy_matches_literature() {
        // E(RHF/STO-3G) for He = -2.807784 hartree (standard value).
        let r = rhf_energy(&systems::helium(), 0);
        assert!(r.converged);
        assert!(
            (r.energy - (-2.807_784)).abs() < 2e-3,
            "He energy {}",
            r.energy
        );
    }

    #[test]
    fn heh_cation_energy_matches_szabo() {
        // Szabo & Ostlund's worked example (Sec. 3.5.2) uses ζ-rescaled
        // STO-3G: He exponents scaled to ζ = 2.0925 (He exps 9.753934,
        // 1.776691, 0.480844), H at the standard ζ = 1.24. Their result:
        // E_total ≈ -2.8606 hartree at R = 1.4632 a0.
        let mol = systems::heh_cation();
        let mut sys = HfSystem::sto3g_with_charge(&mol, 1);
        // Replace the helium shell with the ζ = 2.0925 scaled one.
        let zeta_ratio = (2.0925f64 / 1.6875).powi(2);
        for shell in &mut sys.shells {
            if shell.center == [0.0, 0.0, 0.0] {
                for e in &mut shell.exps {
                    *e *= zeta_ratio;
                }
            }
        }
        // Re-normalize after the exponent change.
        for shell in &mut sys.shells {
            let s = crate::oneint::overlap(shell, shell)[(0, 0)];
            let scale = 1.0 / s.sqrt();
            for c in &mut shell.coefs {
                *c *= scale;
            }
        }
        let eri = InMemoryEri(sys.eri_tensor());
        let r = run_rhf(&sys, &eri, ScfOptions::default());
        assert!(r.converged);
        assert!(
            (r.energy - (-2.860_6)).abs() < 2e-3,
            "HeH+ energy {} vs Szabo -2.8606",
            r.energy
        );
        // And with the standard (unscaled) STO-3G table the energy is the
        // also-known -2.8418.
        let std = rhf_energy(&mol, 1);
        assert!((std.energy - (-2.841_8)).abs() < 2e-3, "{}", std.energy);
    }

    #[test]
    fn water_sto3g_energy_in_literature_range() {
        // STO-3G water at the experimental geometry: ≈ -74.96 hartree
        // (literature values -74.94 .. -74.97 depending on digits).
        let r = rhf_energy(&systems::water(), 0);
        assert!(r.converged, "water SCF did not converge");
        assert!(
            (-75.1..=-74.8).contains(&r.energy),
            "water energy {}",
            r.energy
        );
        // 5 doubly occupied orbitals; HOMO below zero, LUMO above.
        assert!(r.orbital_energies[4] < 0.0);
        assert!(r.orbital_energies[5] > 0.0);
    }

    #[test]
    fn h2_orbital_structure() {
        let r = rhf_energy(&systems::h2(), 0);
        // Bonding orbital filled (negative), antibonding empty (positive).
        assert!(r.orbital_energies[0] < -0.5);
        assert!(r.orbital_energies[1] > 0.4);
    }

    #[test]
    fn eri_tensor_has_8_fold_symmetry() {
        let sys = HfSystem::sto3g(&systems::h2());
        let n = sys.nbf();
        let t = sys.eri_tensor();
        let g = |a: usize, b: usize, c: usize, d: usize| t[((a * n + b) * n + c) * n + d];
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    for d in 0..n {
                        let v = g(a, b, c, d);
                        for w in [
                            g(b, a, c, d),
                            g(a, b, d, c),
                            g(c, d, a, b),
                            g(d, c, b, a),
                        ] {
                            assert!((v - w).abs() < 1e-11, "symmetry broken at {a}{b}{c}{d}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "even electron count")]
    fn odd_electrons_rejected() {
        let mol = Molecule {
            name: "H",
            atoms: vec![Atom { z: 1, pos: [0.0; 3] }],
        };
        let sys = HfSystem::sto3g(&mol);
        let eri = InMemoryEri(sys.eri_tensor());
        let _ = run_rhf(&sys, &eri, ScfOptions::default());
    }
}
