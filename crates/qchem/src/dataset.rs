//! ERI dataset generation — the stand-in for GAMESS integral files.
//!
//! A dataset is the concatenation of shell-quartet blocks of one BF
//! configuration, each block a `N1·N2·N3·N4` 4-D tensor flattened with the
//! bra indices slowest (Fig. 2(b) of the paper). Two generators:
//!
//! * [`EriDataset::generate`] — **analytic**: enumerates shell quartets of
//!   the configuration over a real molecule and evaluates every block with
//!   the McMurchie–Davidson engine. Ground truth; used for correctness and
//!   compression-ratio experiments.
//! * [`EriDataset::generate_model`] — **far-field model**: draws blocks
//!   directly from the paper's Eq. (3) factorization
//!   `(pq|uv) ≈ (G_pq ⊗ G_uv) · D(r⁻¹)` plus a calibrated deviation term.
//!   Used where the paper used multi-GB files (throughput and parallel-I/O
//!   experiments) — it produces the same block statistics at arbitrary
//!   volume without hours of integral evaluation. The calibration is
//!   validated against the analytic generator in `tests/`.

use rand::rngs::StdRng;

use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use std::collections::HashMap;
use std::sync::Arc;

use crate::basis::{shells_for, BfConfig, Shell, DEFAULT_EXPONENTS};
use crate::md::{eri_block_from_pairs, ShellPair};
use crate::molecule::Molecule;

/// Specification for an analytic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub molecule: Molecule,
    pub config: BfConfig,
    /// Number of shell-quartet blocks to generate (quartets are sampled
    /// deterministically from the full enumeration when it is larger).
    pub max_blocks: usize,
    /// Seed for the quartet sampling.
    pub seed: u64,
}

/// Integral screening threshold: quartets whose largest ERI falls below
/// this are dropped, as GAMESS's Schwarz screening drops them before they
/// ever reach the integral file. Chosen just below the paper's tightest
/// error bound (1e-11) so the surviving data is exactly what a compressor
/// would actually be fed.
pub const SCREEN_THRESHOLD: f64 = 1e-11;

/// A generated ERI dataset: a flat `f64` stream of whole blocks.
#[derive(Debug, Clone)]
pub struct EriDataset {
    pub config: BfConfig,
    /// `num_blocks · config.block_size()` values.
    pub values: Vec<f64>,
    /// Human-readable provenance ("benzene (dd|dd) analytic", ...).
    pub label: String,
}

impl EriDataset {
    /// Number of whole blocks in the stream.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.values.len() / self.config.block_size()
    }

    /// Size of the raw stream in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.values.len() * 8
    }

    /// Borrow block `b` as a slice.
    #[must_use]
    pub fn block(&self, b: usize) -> &[f64] {
        let n = self.config.block_size();
        &self.values[b * n..(b + 1) * n]
    }

    /// Analytic generation (see module docs). Quartets whose blocks fall
    /// entirely below [`SCREEN_THRESHOLD`] are rejected and replaced, the
    /// way Schwarz screening removes them from real GAMESS integral files.
    #[must_use]
    pub fn generate(spec: &DatasetSpec) -> Self {
        let sampler = QuartetSampler::new(spec);
        let block_size = spec.config.block_size();

        // Walk the permuted quartet enumeration, keeping blocks that
        // survive screening, until max_blocks are accepted or candidates
        // run out. A cheap exponential pre-screen (pair-overlap bound with
        // a generous shape-factor allowance) skips hopeless quartets
        // without evaluating them.
        let mut values: Vec<f64> = Vec::with_capacity(spec.max_blocks * block_size);
        let mut accepted = 0usize;
        let chunk = 256; // candidates examined per parallel batch
        let mut idx = 0usize;
        // Shell-pair cache: every bra/ket pair's Hermite tables are built
        // once and shared across all quartets that reuse the pair (each
        // pair appears in O(n_shells^2) quartets).
        let mut pair_cache: HashMap<(u8, usize, usize), Arc<ShellPair>> = HashMap::new();
        while accepted < spec.max_blocks && idx < sampler.total() {
            let take = chunk.min(sampler.total() - idx);
            let batch: Vec<(Arc<ShellPair>, Arc<ShellPair>)> = (idx..idx + take)
                .map(|i| sampler.quartet_indices(i))
                .filter(|ix| prescreen_bound(&sampler.quartet_from_indices(*ix)) >= SCREEN_THRESHOLD)
                .map(|ix| {
                    let bra = pair_cache
                        .entry((0, ix[0], ix[1]))
                        .or_insert_with(|| {
                            Arc::new(ShellPair::build(
                                &sampler.shell_sets[0][ix[0]],
                                &sampler.shell_sets[1][ix[1]],
                            ))
                        })
                        .clone();
                    let ket = pair_cache
                        .entry((1, ix[2], ix[3]))
                        .or_insert_with(|| {
                            Arc::new(ShellPair::build(
                                &sampler.shell_sets[2][ix[2]],
                                &sampler.shell_sets[3][ix[3]],
                            ))
                        })
                        .clone();
                    (bra, ket)
                })
                .collect();
            idx += take;
            let blocks: Vec<Vec<f64>> = batch
                .par_iter()
                .map(|(bra, ket)| eri_block_from_pairs(bra, ket))
                .collect();
            for block in blocks {
                if accepted >= spec.max_blocks {
                    break;
                }
                let ext = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                if ext >= SCREEN_THRESHOLD {
                    values.extend_from_slice(&block);
                    accepted += 1;
                }
            }
        }
        Self {
            config: spec.config,
            values,
            label: format!("{} {} analytic", spec.molecule.name, spec.config.label()),
        }
    }

    /// Far-field model generation (see module docs). `num_blocks` blocks of
    /// configuration `config`, deterministic in `seed`.
    #[must_use]
    pub fn generate_model(config: BfConfig, num_blocks: usize, seed: u64) -> Self {
        let block_size = config.block_size();
        let num_sb = config.num_subblocks();
        let sb_size = config.subblock_size();
        let mut values = vec![0.0f64; num_blocks * block_size];
        values
            .par_chunks_mut(block_size)
            .enumerate()
            .for_each(|(b, dst)| {
                let mut rng = StdRng::seed_from_u64(seed ^ (b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                model_block(&mut rng, num_sb, sb_size, dst);
            });
        Self {
            config,
            values,
            label: format!("model {} x{num_blocks}", config.label()),
        }
    }
}

/// One block from the Eq. (3) far-field factorization model.
///
/// `block[sb][i] = amp · s[sb] · q[i] + dev`, where:
/// * `q` is the ket-pair shape vector (the repeating pattern),
/// * `s` is the bra-pair shape vector (per-sub-block scale, |s| ≤ 1 with
///   at least one entry at ±1, as the paper notes in Sec. IV-A),
/// * `amp` is the block amplitude, log-uniform over typical far-field ERI
///   magnitudes,
/// * `dev` is the multipole-correction deviation: relative size
///   log-uniform over 1e-12…1e-4 of `amp`, which at EB = 1e-10 yields the
///   paper's observed block-type mix (most blocks type 0/1, a tail of
///   type 2/3 — Fig. 6).
fn model_block(rng: &mut StdRng, num_sb: usize, sb_size: usize, dst: &mut [f64]) {
    let amp = 10f64.powf(rng.gen_range(-9.0..-5.0));
    // Shape vectors: smooth oscillatory profiles like Fig. 3's curves.
    let q: Vec<f64> = shape_vector(rng, sb_size);
    let mut s: Vec<f64> = shape_vector(rng, num_sb);
    // Force max |s| = 1 so the block extremum lives in one sub-block.
    let smax = s.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    for v in &mut s {
        *v /= smax;
    }
    let rel_dev = 10f64.powf(rng.gen_range(-12.0..-4.0));
    // Fraction of points carrying a deviation at the block scale.
    let dense_frac = rng.gen_range(0.1..0.9);
    // A few per-mille of points are outliers with 100x the deviation.
    let outlier_rate = rng.gen_range(0.0..0.003);
    for (sb, chunk) in dst.chunks_mut(sb_size).enumerate() {
        if sb >= num_sb {
            break;
        }
        for (i, v) in chunk.iter_mut().enumerate() {
            // Deviations: a sparse fraction of points carry a Gaussian
            // multipole-correction term at the block's deviation scale,
            // the rest sit below it. This reproduces the paper's Fig. 6
            // per-type ECQ histograms: a dominant zero bin, mass
            // concentrated a few bins below EC_b,max, thin tails.
            let mut dev = if rng.gen::<f64>() < dense_frac {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                amp * rel_dev * (-2.0 * u1.ln()).sqrt() * u2.cos()
            } else {
                0.0
            };
            if rng.gen_bool(outlier_rate) {
                dev += amp * rel_dev * 100.0 * rng.gen_range(-1.0..1.0);
            }
            *v = amp * s[sb] * q[i] + dev;
        }
    }
}

/// Smooth oscillatory unit-scale profile (sum of a few random harmonics).
fn shape_vector(rng: &mut StdRng, n: usize) -> Vec<f64> {
    let k1 = rng.gen_range(1.0..4.0);
    let k2 = rng.gen_range(4.0..9.0);
    let p1 = rng.gen_range(0.0..std::f64::consts::TAU);
    let p2 = rng.gen_range(0.0..std::f64::consts::TAU);
    let a2 = rng.gen_range(0.1..0.7);
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64 * std::f64::consts::TAU;
            (k1 * x + p1).sin() + a2 * (k2 * x + p2).sin()
        })
        .collect()
}

/// Cheap upper-bound estimate of a quartet's largest ERI: the product of
/// the two Gaussian pair-overlap exponentials times a generous constant
/// covering shape factors, norms, and the Coulomb prefactor. Never
/// underestimates by design (validated in tests), so pre-screening with it
/// cannot drop a block the exact screen would keep.
fn prescreen_bound(q: &[Shell; 4]) -> f64 {
    let pair = |a: &Shell, b: &Shell| {
        let d2: f64 = (0..3).map(|k| (a.center[k] - b.center[k]).powi(2)).sum();
        // Most favourable (smallest) reduced exponent across primitives.
        let mut best: f64 = 0.0;
        for &ea in &a.exps {
            for &eb in &b.exps {
                let qq = ea * eb / (ea + eb);
                best = best.max((-qq * d2).exp());
            }
        }
        best
    };
    // 1e10 covers the product of four primitive norms (each ~20 for tight
    // d/f shells), Hermite shape factors, and the Coulomb prefactor, with
    // orders of magnitude to spare; a loose constant here only costs a few
    // extra exact evaluations near the threshold.
    1e10 * pair(&q[0], &q[1]) * pair(&q[2], &q[3])
}

/// Lazy deterministic sampler over the full quartet enumeration.
///
/// The index space `0..total` is traversed through the permutation
/// `i ↦ (a·i + b) mod total` with `gcd(a, total) = 1`, which visits every
/// quartet exactly once in a scrambled order without materializing the
/// enumeration (clusters can have 10⁸+ quartets). `generate` walks this
/// order and screens, so the dataset is an unbiased deterministic sample
/// of the *surviving* quartet population.
struct QuartetSampler {
    shell_sets: Vec<Vec<Shell>>,
    total: usize,
    mult: u64,
    offset: u64,
}

impl QuartetSampler {
    fn new(spec: &DatasetSpec) -> Self {
        let shell_sets: Vec<Vec<Shell>> = spec
            .config
            .l
            .iter()
            .map(|&l| shells_for(&spec.molecule, l, &DEFAULT_EXPONENTS))
            .collect();
        assert!(
            shell_sets.iter().all(|s| !s.is_empty()),
            "molecule {} has no shells for config {}",
            spec.molecule.name,
            spec.config.label()
        );
        let total: usize = shell_sets.iter().map(Vec::len).product();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        // Odd multiplier near golden-ratio scrambling, adjusted to be
        // coprime with `total`.
        let mut mult = (rng.gen::<u64>() | 1) % total.max(2) as u64;
        if mult == 0 {
            mult = 1;
        }
        while gcd(mult, total as u64) != 1 {
            mult = (mult + 2) % total.max(2) as u64;
            if mult == 0 {
                mult = 1;
            }
        }
        let offset = rng.gen::<u64>() % total.max(1) as u64;
        Self {
            shell_sets,
            total,
            mult,
            offset,
        }
    }

    fn total(&self) -> usize {
        self.total
    }

    /// The `i`-th quartet of the permuted enumeration, as per-position
    /// shell indices.
    fn quartet_indices(&self, i: usize) -> [usize; 4] {
        let mut ix = (((i as u128 * self.mult as u128) + self.offset as u128)
            % self.total as u128) as usize;
        let mut out = [0usize; 4];
        for (slot, set) in out.iter_mut().zip(&self.shell_sets) {
            *slot = ix % set.len();
            ix /= set.len();
        }
        out
    }

    /// Materializes the shells for a set of indices.
    fn quartet_from_indices(&self, ix: [usize; 4]) -> [Shell; 4] {
        std::array::from_fn(|k| self.shell_sets[k][ix[k]].clone())
    }

    /// The `i`-th quartet of the permuted enumeration.
    #[cfg(test)]
    fn quartet(&self, i: usize) -> [Shell; 4] {
        self.quartet_from_indices(self.quartet_indices(i))
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::eri_block;

    #[test]
    fn analytic_dd_dd_shape() {
        let spec = DatasetSpec {
            molecule: Molecule::benzene(),
            config: BfConfig::dd_dd(),
            max_blocks: 4,
            seed: 42,
        };
        let ds = EriDataset::generate(&spec);
        assert_eq!(ds.num_blocks(), 4);
        assert_eq!(ds.values.len(), 4 * 1296);
        // ERIs must be finite and not all zero.
        assert!(ds.values.iter().all(|v| v.is_finite()));
        assert!(ds.values.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn analytic_is_deterministic() {
        let spec = DatasetSpec {
            molecule: Molecule::benzene(),
            config: BfConfig::dd_dd(),
            max_blocks: 3,
            seed: 7,
        };
        let a = EriDataset::generate(&spec);
        let b = EriDataset::generate(&spec);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn model_generator_shape_and_determinism() {
        let ds = EriDataset::generate_model(BfConfig::fd_ff(), 10, 99);
        assert_eq!(ds.num_blocks(), 10);
        assert_eq!(ds.values.len(), 10 * 6000);
        let ds2 = EriDataset::generate_model(BfConfig::fd_ff(), 10, 99);
        assert_eq!(ds.values, ds2.values);
        let ds3 = EriDataset::generate_model(BfConfig::fd_ff(), 10, 100);
        assert_ne!(ds.values, ds3.values);
    }

    #[test]
    fn model_blocks_have_scaled_pattern_structure() {
        let config = BfConfig::dd_dd();
        let ds = EriDataset::generate_model(config, 20, 1);
        let sb_size = config.subblock_size();
        for b in 0..ds.num_blocks() {
            let block = ds.block(b);
            let ext = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(ext > 0.0);
            // Find pattern sub-block (contains extremum).
            let ext_idx = (0..block.len())
                .max_by(|&x, &y| block[x].abs().partial_cmp(&block[y].abs()).unwrap())
                .unwrap();
            let pat_sb = ext_idx / sb_size;
            let pat = &block[pat_sb * sb_size..(pat_sb + 1) * sb_size];
            let anchor = ext_idx % sb_size;
            for sb in 0..config.num_subblocks() {
                let chunk = &ds.block(b)[sb * sb_size..(sb + 1) * sb_size];
                let s = chunk[anchor] / pat[anchor];
                assert!(s.abs() <= 1.0 + 1e-2, "scale {s} out of range");
                for i in 0..sb_size {
                    let dev = (chunk[i] - s * pat[i]).abs();
                    assert!(dev < 0.05 * ext, "block {b} sb {sb} i {i}: dev {dev:e}");
                }
            }
        }
    }

    #[test]
    fn candidate_enumeration_is_exhaustive() {
        let spec = DatasetSpec {
            molecule: Molecule::benzene(),
            config: BfConfig::dd_dd(),
            max_blocks: 2,
            seed: 1,
        };
        // 6 carbons × 2 exponents = 12 d shells; quartets = 12^4, and the
        // permutation must visit each exactly once.
        let sampler = QuartetSampler::new(&spec);
        assert_eq!(sampler.total(), 12usize.pow(4));
        let key = |q: &[Shell; 4]| {
            q.iter()
                .map(|s| (s.center[0].to_bits(), s.center[2].to_bits(), s.exps[0].to_bits()))
                .collect::<Vec<_>>()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..sampler.total() {
            seen.insert(key(&sampler.quartet(i)));
        }
        // Quartets are distinguishable by (center, exponent) tuples; the
        // permutation must produce all distinct index tuples. Shell tuples
        // collide only if two shells are identical, which they are not.
        assert_eq!(seen.len(), sampler.total());
    }

    #[test]
    fn prescreen_never_underestimates() {
        // The cheap bound must dominate the true block extremum, or
        // screening could silently drop kept blocks.
        let spec = DatasetSpec {
            molecule: Molecule::tri_alanine(),
            config: BfConfig::dd_dd(),
            max_blocks: 1,
            seed: 5,
        };
        let sampler = QuartetSampler::new(&spec);
        for i in 0..40 {
            let q = sampler.quartet(i);
            let bound = prescreen_bound(&q);
            let block = eri_block(&q[0], &q[1], &q[2], &q[3]);
            let ext = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(
                bound >= ext,
                "prescreen bound {bound:e} below extremum {ext:e}"
            );
        }
    }

    #[test]
    fn screening_drops_negligible_blocks() {
        let spec = DatasetSpec {
            molecule: Molecule::tri_alanine(),
            config: BfConfig::dd_dd(),
            max_blocks: 50,
            seed: 2,
        };
        let ds = EriDataset::generate(&spec);
        for b in 0..ds.num_blocks() {
            let ext = ds.block(b).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(ext >= SCREEN_THRESHOLD, "block {b} survived at {ext:e}");
        }
    }

    #[test]
    fn far_quartets_show_pattern_in_analytic_data() {
        // The headline physics check at dataset level: most benzene d-shell
        // quartets sampled should admit a scaled-pattern fit much tighter
        // than the block amplitude.
        let spec = DatasetSpec {
            molecule: Molecule::benzene(),
            config: BfConfig::dd_dd(),
            max_blocks: 12,
            seed: 3,
        };
        let ds = EriDataset::generate(&spec);
        let sb_size = spec.config.subblock_size();
        let mut good = 0;
        for b in 0..ds.num_blocks() {
            let block = ds.block(b);
            let ext = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            if ext == 0.0 {
                continue;
            }
            let ext_idx = (0..block.len())
                .max_by(|&x, &y| block[x].abs().partial_cmp(&block[y].abs()).unwrap())
                .unwrap();
            let pat_sb = ext_idx / sb_size;
            let pat: Vec<f64> = block[pat_sb * sb_size..(pat_sb + 1) * sb_size].to_vec();
            let anchor = ext_idx % sb_size;
            let mut max_dev = 0.0f64;
            for sb in 0..spec.config.num_subblocks() {
                let chunk = &block[sb * sb_size..(sb + 1) * sb_size];
                let s = chunk[anchor] / pat[anchor];
                for i in 0..sb_size {
                    max_dev = max_dev.max((chunk[i] - s * pat[i]).abs());
                }
            }
            if max_dev < 0.2 * ext {
                good += 1;
            }
        }
        assert!(good >= 6, "only {good}/12 blocks pattern-compressible");
    }
}
