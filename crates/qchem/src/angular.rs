//! Angular momentum bookkeeping for Cartesian Gaussian shells.
//!
//! A shell of total angular momentum `l` contains `(l+1)(l+2)/2` Cartesian
//! basis functions `x^i y^j z^k` with `i + j + k = l` (Fig. 1 of the paper).
//! The component ordering below (descending `i`, then descending `j`) is
//! the conventional GAMESS/Gaussian ordering and is what fixes the
//! *position* of each ERI inside its 4-D block — the layout PaSTRI's
//! sub-block structure relies on.

/// Total angular momentum of a shell (0 = s, 1 = p, 2 = d, 3 = f, ...).
pub type AngMom = u32;

/// One Cartesian component `(i, j, k)` with `i + j + k = l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CartComp {
    pub i: u32,
    pub j: u32,
    pub k: u32,
}

impl CartComp {
    /// Total angular momentum of this component.
    #[must_use]
    pub fn l(&self) -> u32 {
        self.i + self.j + self.k
    }
}

/// Number of Cartesian basis functions in a shell of angular momentum `l`:
/// `(l+1)(l+2)/2`.
#[must_use]
pub fn shell_size(l: AngMom) -> usize {
    ((l + 1) * (l + 2) / 2) as usize
}

/// Enumerates the Cartesian components of a shell in canonical order:
/// `i` descending from `l`, then `j` descending from `l - i`.
///
/// For `l = 1` this yields `p^x, p^y, p^z`.
#[must_use]
pub fn components(l: AngMom) -> Vec<CartComp> {
    let mut out = Vec::with_capacity(shell_size(l));
    for i in (0..=l).rev() {
        for j in (0..=(l - i)).rev() {
            out.push(CartComp { i, j, k: l - i - j });
        }
    }
    out
}

/// One-letter spectroscopic name for a shell (`s p d f g h i`), used in
/// block-type labels like `(dd|dd)`.
#[must_use]
pub fn shell_letter(l: AngMom) -> char {
    match l {
        0 => 's',
        1 => 'p',
        2 => 'd',
        3 => 'f',
        4 => 'g',
        5 => 'h',
        _ => 'i',
    }
}

/// Parses a shell letter back to its angular momentum.
#[must_use]
pub fn letter_to_l(c: char) -> Option<AngMom> {
    match c.to_ascii_lowercase() {
        's' => Some(0),
        'p' => Some(1),
        'd' => Some(2),
        'f' => Some(3),
        'g' => Some(4),
        'h' => Some(5),
        _ => None,
    }
}

/// Double factorial `n!! = n (n-2) (n-4) ...` with `(-1)!! = 0!! = 1`.
/// Used by the Boys function asymptotics and Gaussian normalization.
#[must_use]
pub fn double_factorial(n: i64) -> f64 {
    if n <= 0 {
        return 1.0;
    }
    let mut acc = 1.0;
    let mut k = n;
    while k > 1 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

/// Normalization constant of a primitive Cartesian Gaussian
/// `x^i y^j z^k exp(-a r^2)`.
#[must_use]
pub fn primitive_norm(a: f64, comp: CartComp) -> f64 {
    let l = comp.l();
    let num = (2.0 * a / std::f64::consts::PI).powf(0.75)
        * (4.0 * a).powf(f64::from(l) / 2.0);
    let den = (double_factorial(2 * i64::from(comp.i) - 1)
        * double_factorial(2 * i64::from(comp.j) - 1)
        * double_factorial(2 * i64::from(comp.k) - 1))
    .sqrt();
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_sizes_match_formula() {
        assert_eq!(shell_size(0), 1); // s
        assert_eq!(shell_size(1), 3); // p
        assert_eq!(shell_size(2), 6); // d
        assert_eq!(shell_size(3), 10); // f
        assert_eq!(shell_size(4), 15); // g
    }

    #[test]
    fn components_have_correct_count_and_l() {
        for l in 0..=5 {
            let comps = components(l);
            assert_eq!(comps.len(), shell_size(l));
            for c in &comps {
                assert_eq!(c.l(), l);
            }
            // All distinct.
            let mut set = std::collections::HashSet::new();
            for c in comps {
                assert!(set.insert((c.i, c.j, c.k)));
            }
        }
    }

    #[test]
    fn p_shell_order_is_xyz() {
        let comps = components(1);
        assert_eq!(comps[0], CartComp { i: 1, j: 0, k: 0 });
        assert_eq!(comps[1], CartComp { i: 0, j: 1, k: 0 });
        assert_eq!(comps[2], CartComp { i: 0, j: 0, k: 1 });
    }

    #[test]
    fn d_shell_order() {
        // xx, xy, xz, yy, yz, zz
        let comps = components(2);
        assert_eq!(comps[0], CartComp { i: 2, j: 0, k: 0 });
        assert_eq!(comps[1], CartComp { i: 1, j: 1, k: 0 });
        assert_eq!(comps[2], CartComp { i: 1, j: 0, k: 1 });
        assert_eq!(comps[3], CartComp { i: 0, j: 2, k: 0 });
        assert_eq!(comps[4], CartComp { i: 0, j: 1, k: 1 });
        assert_eq!(comps[5], CartComp { i: 0, j: 0, k: 2 });
    }

    #[test]
    fn letters_roundtrip() {
        for l in 0..=5 {
            assert_eq!(letter_to_l(shell_letter(l)), Some(l));
        }
        assert_eq!(letter_to_l('q'), None);
    }

    #[test]
    fn double_factorials() {
        assert_eq!(double_factorial(-1), 1.0);
        assert_eq!(double_factorial(0), 1.0);
        assert_eq!(double_factorial(1), 1.0);
        assert_eq!(double_factorial(2), 2.0);
        assert_eq!(double_factorial(5), 15.0);
        assert_eq!(double_factorial(7), 105.0);
        assert_eq!(double_factorial(8), 384.0);
    }

    #[test]
    fn s_norm_matches_closed_form() {
        // For an s Gaussian, N = (2a/pi)^{3/4}.
        let a = 0.7;
        let n = primitive_norm(a, CartComp { i: 0, j: 0, k: 0 });
        let expect = (2.0 * a / std::f64::consts::PI).powf(0.75);
        assert!((n - expect).abs() < 1e-14);
    }
}
