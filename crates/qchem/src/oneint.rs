//! One-electron integrals over contracted Cartesian Gaussian shells:
//! overlap, kinetic energy, and nuclear attraction — everything besides
//! the ERIs that a Hartree–Fock calculation needs.
//!
//! All three reduce to McMurchie–Davidson machinery already built for the
//! ERIs: the Hermite expansion tables `E_t^{ij}` ([`crate::hermite`]) and,
//! for nuclear attraction, the Hermite Coulomb integrals `R_{tuv}`
//! ([`crate::md::RTable`]).

use crate::angular::{components, primitive_norm};
use crate::basis::Shell;
use crate::hermite::ETable;
use crate::linalg::Matrix;
use crate::md::RTable;
use crate::molecule::Atom;

/// Overlap block `⟨a|b⟩` between two shells: `size(a) × size(b)`.
#[must_use]
pub fn overlap(sa: &Shell, sb: &Shell) -> Matrix {
    one_electron(sa, sb)
}

/// Kinetic-energy block `⟨a| -½∇² |b⟩`.
///
/// Uses the Gaussian differentiation identity per dimension:
/// `d²/dx² |j⟩ = 4β²|j+2⟩ − 2β(2j+1)|j⟩ + j(j−1)|j−2⟩`.
#[must_use]
pub fn kinetic(sa: &Shell, sb: &Shell) -> Matrix {
    let comps_a = components(sa.l);
    let comps_b = components(sb.l);
    let mut out = Matrix::zeros(comps_a.len(), comps_b.len());
    for (pa, &a) in sa.exps.iter().enumerate() {
        for (pb, &b) in sb.exps.iter().enumerate() {
            let p = a + b;
            // E tables sized for j+2.
            let e: [ETable; 3] = std::array::from_fn(|d| {
                ETable::build(
                    sa.l as usize,
                    sb.l as usize + 2,
                    a,
                    b,
                    sa.center[d],
                    sb.center[d],
                )
            });
            let pref = (std::f64::consts::PI / p).powf(1.5) * sa.coefs[pa] * sb.coefs[pb];
            for (ia, ca) in comps_a.iter().enumerate() {
                let na = primitive_norm(a, *ca);
                for (ib, cb) in comps_b.iter().enumerate() {
                    let nb = primitive_norm(b, *cb);
                    let i = [ca.i as usize, ca.j as usize, ca.k as usize];
                    let j = [cb.i as usize, cb.j as usize, cb.k as usize];
                    // Plain 1-D overlap factors.
                    let s = [
                        e[0].get(i[0], j[0], 0),
                        e[1].get(i[1], j[1], 0),
                        e[2].get(i[2], j[2], 0),
                    ];
                    // 1-D kinetic factors.
                    let mut t = [0.0f64; 3];
                    for d in 0..3 {
                        let jj = j[d] as f64;
                        let mut term =
                            -2.0 * b * b * e[d].get(i[d], j[d] + 2, 0);
                        term += b * (2.0 * jj + 1.0) * e[d].get(i[d], j[d], 0);
                        if j[d] >= 2 {
                            term -= 0.5 * jj * (jj - 1.0) * e[d].get(i[d], j[d] - 2, 0);
                        }
                        t[d] = term;
                    }
                    let val = t[0] * s[1] * s[2] + s[0] * t[1] * s[2] + s[0] * s[1] * t[2];
                    out[(ia, ib)] += pref * na * nb * val;
                }
            }
        }
    }
    out
}

/// Nuclear-attraction block `⟨a| Σ_C −Z_C/r_C |b⟩` over all atoms.
#[must_use]
pub fn nuclear(sa: &Shell, sb: &Shell, atoms: &[Atom]) -> Matrix {
    let comps_a = components(sa.l);
    let comps_b = components(sb.l);
    let l_total = (sa.l + sb.l) as usize;
    let mut out = Matrix::zeros(comps_a.len(), comps_b.len());
    for (pa, &a) in sa.exps.iter().enumerate() {
        for (pb, &b) in sb.exps.iter().enumerate() {
            let p = a + b;
            let pc: [f64; 3] =
                std::array::from_fn(|d| (a * sa.center[d] + b * sb.center[d]) / p);
            let e: [ETable; 3] = std::array::from_fn(|d| {
                ETable::build(
                    sa.l as usize,
                    sb.l as usize,
                    a,
                    b,
                    sa.center[d],
                    sb.center[d],
                )
            });
            let pref = 2.0 * std::f64::consts::PI / p * sa.coefs[pa] * sb.coefs[pb];
            for atom in atoms {
                let pq = [
                    pc[0] - atom.pos[0],
                    pc[1] - atom.pos[1],
                    pc[2] - atom.pos[2],
                ];
                let r = RTable::build(l_total, p, pq);
                for (ia, ca) in comps_a.iter().enumerate() {
                    let na = primitive_norm(a, *ca);
                    for (ib, cb) in comps_b.iter().enumerate() {
                        let nb = primitive_norm(b, *cb);
                        let mut sum = 0.0;
                        for t in 0..=(ca.i + cb.i) as usize {
                            let ex = e[0].get(ca.i as usize, cb.i as usize, t);
                            if ex == 0.0 {
                                continue;
                            }
                            for u in 0..=(ca.j + cb.j) as usize {
                                let ey = e[1].get(ca.j as usize, cb.j as usize, u);
                                if ey == 0.0 {
                                    continue;
                                }
                                for v in 0..=(ca.k + cb.k) as usize {
                                    let ez = e[2].get(ca.k as usize, cb.k as usize, v);
                                    if ez == 0.0 {
                                        continue;
                                    }
                                    sum += ex * ey * ez * r.get(t, u, v);
                                }
                            }
                        }
                        out[(ia, ib)] -= pref * f64::from(atom.z) * na * nb * sum;
                    }
                }
            }
        }
    }
    out
}

/// Overlap assembly shared with [`overlap`].
fn one_electron(sa: &Shell, sb: &Shell) -> Matrix {
    let comps_a = components(sa.l);
    let comps_b = components(sb.l);
    let mut out = Matrix::zeros(comps_a.len(), comps_b.len());
    for (pa, &a) in sa.exps.iter().enumerate() {
        for (pb, &b) in sb.exps.iter().enumerate() {
            let p = a + b;
            let e: [ETable; 3] = std::array::from_fn(|d| {
                ETable::build(
                    sa.l as usize,
                    sb.l as usize,
                    a,
                    b,
                    sa.center[d],
                    sb.center[d],
                )
            });
            let pref = (std::f64::consts::PI / p).powf(1.5) * sa.coefs[pa] * sb.coefs[pb];
            for (ia, ca) in comps_a.iter().enumerate() {
                let na = primitive_norm(a, *ca);
                for (ib, cb) in comps_b.iter().enumerate() {
                    let nb = primitive_norm(b, *cb);
                    let val = e[0].get(ca.i as usize, cb.i as usize, 0)
                        * e[1].get(ca.j as usize, cb.j as usize, 0)
                        * e[2].get(ca.k as usize, cb.k as usize, 0);
                    out[(ia, ib)] += pref * na * nb * val;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s_shell(center: [f64; 3], exp: f64) -> Shell {
        Shell {
            center,
            l: 0,
            exps: vec![exp],
            coefs: vec![1.0],
        }
    }

    #[test]
    fn self_overlap_of_normalized_primitive_is_one() {
        for l in 0..=3u32 {
            let sh = Shell {
                center: [0.3, -0.2, 0.8],
                l,
                exps: vec![0.77],
                coefs: vec![1.0],
            };
            let s = overlap(&sh, &sh);
            // Diagonal entries are 1 for every Cartesian component.
            for i in 0..sh.size() {
                assert!(
                    (s[(i, i)] - 1.0).abs() < 1e-12,
                    "l={l} comp {i}: {}",
                    s[(i, i)]
                );
            }
        }
    }

    #[test]
    fn overlap_decays_with_distance() {
        let a = s_shell([0.0; 3], 1.0);
        let mut last = 1.1;
        for d in [0.0, 1.0, 2.0, 4.0] {
            let b = s_shell([0.0, 0.0, d], 1.0);
            let s = overlap(&a, &b)[(0, 0)];
            assert!(s < last, "distance {d}");
            // s-s overlap closed form: exp(-q d^2) with q = 0.5.
            let expect = (-0.5 * d * d).exp();
            assert!((s - expect).abs() < 1e-12, "d={d}: {s} vs {expect}");
            last = s;
        }
    }

    #[test]
    fn kinetic_s_gaussian_closed_form() {
        // ⟨s|−½∇²|s⟩ for same-centre normalized s Gaussians with equal
        // exponents a: T = 3a/2 · ... exact: T = 3·a·b/(a+b)·(3 - 2ab d²/(a+b))/...
        // For a == b, d = 0: T = 3a/2 · (ab/(a+b))·2/a... Known: T = 3ab/(a+b)
        // for normalized s-primitives at the same centre... check numerically
        // against finite differences of the overlap instead: T(a,b) =
        // -1/2 d²/dx²-sum; use the exact closed form 3ab/(a+b) ·
        // [1] (standard result).
        let a = 0.9;
        let b = 1.7;
        let sa = s_shell([0.0; 3], a);
        let sb = s_shell([0.0; 3], b);
        let t = kinetic(&sa, &sb)[(0, 0)];
        let s = overlap(&sa, &sb)[(0, 0)];
        let expect = 3.0 * a * b / (a + b) * s;
        assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
    }

    #[test]
    fn kinetic_positive_diagonal() {
        for l in 0..=2u32 {
            let sh = Shell {
                center: [0.0; 3],
                l,
                exps: vec![1.1],
                coefs: vec![1.0],
            };
            let t = kinetic(&sh, &sh);
            for i in 0..sh.size() {
                assert!(t[(i, i)] > 0.0, "l={l} comp {i}");
            }
        }
    }

    #[test]
    fn nuclear_attraction_hydrogen_like() {
        // ⟨s|−1/r|s⟩ for a normalized s Gaussian centred on the nucleus:
        // V = −Z·2·√(a·2/π)... closed form: V = −Z √(4a/(2π))·2 =
        // −2Z√(a/(2π))·√2 = −2 Z sqrt(2a/pi^...). Use the standard result
        // V = −Z·2√(2a/π)·... Simplest independent check: compare with
        // numerical radial quadrature.
        let a = 1.3;
        let sh = s_shell([0.0; 3], a);
        let atom = Atom {
            z: 1,
            pos: [0.0; 3],
        };
        let v = nuclear(&sh, &sh, &[atom])[(0, 0)];
        // Numerical: ∫ |N e^{-a r²}|² (1/r) 4π r² dr, N² = (2a/π)^{3/2}.
        let n2 = (2.0 * a / std::f64::consts::PI).powf(1.5);
        let steps = 200_000;
        let rmax = 12.0;
        let h = rmax / steps as f64;
        let mut integral = 0.0;
        for k in 1..=steps {
            let r = k as f64 * h;
            integral += (-2.0 * a * r * r).exp() * r * h;
        }
        let expect = -n2 * 4.0 * std::f64::consts::PI * integral;
        assert!((v - expect).abs() < 1e-6 * expect.abs(), "{v} vs {expect}");
    }

    #[test]
    fn nuclear_attraction_scales_with_charge() {
        let sh = s_shell([0.0; 3], 0.8);
        let v1 = nuclear(
            &sh,
            &sh,
            &[Atom {
                z: 1,
                pos: [0.0, 0.0, 1.0],
            }],
        )[(0, 0)];
        let v6 = nuclear(
            &sh,
            &sh,
            &[Atom {
                z: 6,
                pos: [0.0, 0.0, 1.0],
            }],
        )[(0, 0)];
        assert!((v6 - 6.0 * v1).abs() < 1e-12);
        assert!(v1 < 0.0);
    }

    #[test]
    fn hermiticity_of_all_blocks() {
        let sa = Shell {
            center: [0.0, 0.1, -0.2],
            l: 1,
            exps: vec![0.9, 0.3],
            coefs: vec![0.7, 0.4],
        };
        let sb = Shell {
            center: [1.0, -0.4, 0.6],
            l: 2,
            exps: vec![0.5],
            coefs: vec![1.0],
        };
        let atoms = [Atom {
            z: 8,
            pos: [0.5, 0.0, 0.0],
        }];
        let ab_s = overlap(&sa, &sb);
        let ba_s = overlap(&sb, &sa);
        let ab_t = kinetic(&sa, &sb);
        let ba_t = kinetic(&sb, &sa);
        let ab_v = nuclear(&sa, &sb, &atoms);
        let ba_v = nuclear(&sb, &sa, &atoms);
        for i in 0..sa.size() {
            for j in 0..sb.size() {
                assert!((ab_s[(i, j)] - ba_s[(j, i)]).abs() < 1e-12);
                assert!((ab_t[(i, j)] - ba_t[(j, i)]).abs() < 1e-11);
                assert!((ab_v[(i, j)] - ba_v[(j, i)]).abs() < 1e-11);
            }
        }
    }
}
