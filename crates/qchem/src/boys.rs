//! The Boys function `F_n(x) = ∫₀¹ t^{2n} e^{-x t²} dt`.
//!
//! Every Coulomb-type Gaussian integral reduces to Boys function values;
//! a `(ff|ff)` ERI needs orders up to `n = 12`. Evaluation strategy
//! (standard in integral codes):
//!
//! * `x` below [`SERIES_CUTOFF`]: evaluate the highest order needed with the
//!   convergent Kummer series
//!   `F_n(x) = e^{-x} Σ_k (2x)^k (2n-1)!! / (2n+2k+1)!!`,
//!   then fill lower orders by the *downward* recursion
//!   `F_n(x) = (2x F_{n+1}(x) + e^{-x}) / (2n+1)`, which is stable.
//! * large `x`: the asymptotic form
//!   `F_n(x) ≈ (2n-1)!! / (2x)^n · √(π/x) / 2` (the `e^{-x}` remainder is
//!   below double precision), again followed by downward recursion.

use crate::angular::double_factorial;

/// Crossover between the convergent series and the asymptotic form.
///
/// The asymptotic form neglects terms of order `e^{-x}`; those must be
/// small relative to `F_n(x)` itself, which for high orders decays like
/// `(2x)^{-n}`. At `x = 117`, `e^{-x} ≈ 1e-51` while `F_24(117)` is only
/// `~1e-40`, so the branch is exact to double precision for every
/// supported order. Below the cutoff the all-positive Kummer series is
/// used (no cancellation; ~`2x + 90` terms worst case).
pub const SERIES_CUTOFF: f64 = 117.0;

/// Maximum order supported (enough for `(hh|hh)` quartets, l=5 ⇒ n=20).
pub const MAX_ORDER: usize = 24;

/// Evaluates `F_0(x) … F_{n_max}(x)` into `out[0..=n_max]`.
///
/// # Panics
/// Panics if `n_max > MAX_ORDER`, `x < 0`, or `out` is too short.
pub fn boys(n_max: usize, x: f64, out: &mut [f64]) {
    assert!(n_max <= MAX_ORDER, "boys order {n_max} > MAX_ORDER");
    assert!(x >= 0.0 && x.is_finite(), "boys argument must be finite and >= 0");
    assert!(out.len() > n_max);

    let emx = (-x).exp();
    if x < SERIES_CUTOFF {
        out[n_max] = boys_series(n_max, x, emx);
    } else {
        out[n_max] = boys_asymptotic(n_max, x);
    }
    // Stable downward recursion.
    for n in (0..n_max).rev() {
        out[n] = (2.0 * x * out[n + 1] + emx) / (2 * n + 1) as f64;
    }
}

/// Convenience wrapper returning a fresh vector.
#[must_use]
pub fn boys_vec(n_max: usize, x: f64) -> Vec<f64> {
    let mut out = vec![0.0; n_max + 1];
    boys(n_max, x, &mut out);
    out
}

/// Kummer series, converges for all x but used only below the cutoff.
fn boys_series(n: usize, x: f64, emx: f64) -> f64 {
    // F_n(x) = e^{-x} Σ_{k≥0} (2x)^k (2n-1)!!/(2n+2k+1)!!
    //        = e^{-x} Σ_{k≥0} term_k,  term_0 = 1/(2n+1),
    //          term_{k+1} = term_k * 2x / (2n+2k+3).
    let mut term = 1.0 / (2 * n + 1) as f64;
    let mut sum = term;
    let mut k = 0usize;
    loop {
        term *= 2.0 * x / (2 * n + 2 * k + 3) as f64;
        sum += term;
        k += 1;
        if term < sum * 1e-17 || k > 600 {
            break;
        }
    }
    emx * sum
}

/// Large-x asymptotic form (relative error < 1e-15 for x > 35).
fn boys_asymptotic(n: usize, x: f64) -> f64 {
    let n_i = n as i64;
    double_factorial(2 * n_i - 1) / (2.0 * (2.0 * x).powi(n as i32))
        * (std::f64::consts::PI / x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference via adaptive Simpson on the defining integral.
    fn boys_reference(n: usize, x: f64) -> f64 {
        let f = |t: f64| t.powi(2 * n as i32) * (-x * t * t).exp();
        // Composite Simpson with many panels is plenty at these scales.
        let panels = 20_000;
        let h = 1.0 / panels as f64;
        let mut sum = f(0.0) + f(1.0);
        for i in 1..panels {
            let t = i as f64 * h;
            sum += f(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        sum * h / 3.0
    }

    #[test]
    fn values_at_zero() {
        let v = boys_vec(12, 0.0);
        for (n, &fv) in v.iter().enumerate() {
            assert!(
                (fv - 1.0 / (2 * n + 1) as f64).abs() < 1e-15,
                "F_{n}(0) = {fv}"
            );
        }
    }

    #[test]
    fn matches_quadrature_small_x() {
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0, 20.0, 34.9] {
            let v = boys_vec(8, x);
            for (n, &fv) in v.iter().enumerate() {
                let r = boys_reference(n, x);
                assert!(
                    (fv - r).abs() < 1e-10 * r.max(1e-30),
                    "F_{n}({x}): got {fv} want {r}"
                );
            }
        }
    }

    #[test]
    fn matches_quadrature_large_x() {
        // Quadrature reference itself is only ~1e-10 accurate here, so the
        // tolerance reflects the reference, not the implementation.
        for &x in &[35.1, 50.0, 100.0, 120.0, 500.0] {
            let v = boys_vec(6, x);
            for (n, &fv) in v.iter().enumerate() {
                let r = boys_reference(n, x);
                assert!(
                    (fv - r).abs() < 1e-8 * r.max(1e-300),
                    "F_{n}({x}): got {fv} want {r}"
                );
            }
        }
    }

    #[test]
    fn continuity_at_cutoff() {
        // The two branches must agree at the seam *evaluated at the same
        // x*, for every supported order including MAX_ORDER.
        let x = SERIES_CUTOFF;
        let emx = (-x).exp();
        for n in 0..=MAX_ORDER {
            let s = boys_series(n, x, emx);
            let a = boys_asymptotic(n, x);
            let rel = (s - a).abs() / a;
            assert!(rel < 1e-13, "order {n}: series {s} vs asymptotic {a}");
        }
    }

    #[test]
    fn f0_closed_form() {
        // F_0(x) = sqrt(pi/x)/2 * erf(sqrt(x)); check against known values.
        // F_0(1) = 0.7468241328124270 (standard tables).
        let v = boys_vec(0, 1.0);
        assert!((v[0] - 0.746_824_132_812_427).abs() < 1e-13);
    }

    #[test]
    fn monotone_decreasing_in_n_and_x() {
        for &x in &[0.0, 0.5, 2.0, 40.0] {
            let v = boys_vec(10, x);
            for n in 0..10 {
                assert!(v[n] >= v[n + 1], "F decreasing in n at x={x}");
            }
        }
        for n in 0..=4usize {
            let mut last = f64::INFINITY;
            for &x in &[0.0, 1.0, 5.0, 20.0, 50.0] {
                let v = boys_vec(n, x);
                assert!(v[n] <= last, "F_{n} decreasing in x");
                last = v[n];
            }
        }
    }

    #[test]
    #[should_panic(expected = "boys argument")]
    fn negative_x_panics() {
        let _ = boys_vec(0, -1.0);
    }
}
