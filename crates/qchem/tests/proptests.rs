//! Property tests for the quantum-chemistry substrate: physical
//! invariants of the integral engine that must hold for arbitrary shells
//! and geometries.

use proptest::prelude::*;
use qchem::basis::Shell;
use qchem::boys::boys_vec;
use qchem::md::eri_block;
use qchem::molecule::Atom;
use qchem::oneint::{kinetic, nuclear, overlap};

fn shell_strategy(max_l: u32) -> impl Strategy<Value = Shell> {
    (
        0..=max_l,
        prop::array::uniform3(-3.0..3.0f64),
        0.2..3.0f64,
    )
        .prop_map(|(l, center, exp)| Shell {
            center,
            l,
            exps: vec![exp],
            coefs: vec![1.0],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn boys_is_positive_decreasing_in_n(x in 0.0..300.0f64) {
        let v = boys_vec(16, x);
        for n in 0..16 {
            prop_assert!(v[n] > 0.0);
            prop_assert!(v[n] >= v[n + 1], "F_{} < F_{} at x={}", n, n + 1, x);
        }
    }

    #[test]
    fn boys_recurrence_consistency(x in 0.0..200.0f64) {
        // F_{n}(x) = (2x F_{n+1}(x) + e^{-x}) / (2n+1) must hold between
        // adjacent orders of the same evaluation.
        let v = boys_vec(10, x);
        let emx = (-x).exp();
        for n in 0..10 {
            let lhs = v[n] * (2 * n + 1) as f64;
            let rhs = 2.0 * x * v[n + 1] + emx;
            prop_assert!((lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1e-300));
        }
    }

    #[test]
    fn overlap_is_symmetric_and_bounded(
        sa in shell_strategy(2),
        sb in shell_strategy(2),
    ) {
        let ab = overlap(&sa, &sb);
        let ba = overlap(&sb, &sa);
        for i in 0..sa.size() {
            for j in 0..sb.size() {
                prop_assert!((ab[(i, j)] - ba[(j, i)]).abs() < 1e-12);
                // Cauchy-Schwarz for normalized primitives.
                prop_assert!(ab[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn kinetic_diagonal_positive(sh in shell_strategy(2)) {
        let t = kinetic(&sh, &sh);
        for i in 0..sh.size() {
            prop_assert!(t[(i, i)] > 0.0);
        }
    }

    #[test]
    fn nuclear_attraction_negative_on_diagonal(
        sh in shell_strategy(2),
        atom_pos in prop::array::uniform3(-4.0..4.0f64),
    ) {
        let atoms = [Atom { z: 6, pos: atom_pos }];
        let v = nuclear(&sh, &sh, &atoms);
        for i in 0..sh.size() {
            prop_assert!(v[(i, i)] < 0.0, "diagonal attraction must be negative");
        }
    }

    #[test]
    fn eri_bra_ket_swap_symmetry(
        sa in shell_strategy(1),
        sb in shell_strategy(1),
    ) {
        // (aa|bb) == (bb|aa) element-wise under the index swap.
        let ab = eri_block(&sa, &sa, &sb, &sb);
        let ba = eri_block(&sb, &sb, &sa, &sa);
        let (na, nb) = (sa.size(), sb.size());
        for i in 0..na {
            for j in 0..na {
                for k in 0..nb {
                    for l in 0..nb {
                        let v1 = ab[((i * na + j) * nb + k) * nb + l];
                        let v2 = ba[((k * nb + l) * na + i) * na + j];
                        prop_assert!(
                            (v1 - v2).abs() <= 1e-10 * v1.abs().max(1e-10),
                            "({i}{j}|{k}{l}): {v1} vs {v2}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn eri_diagonal_positive(sh in shell_strategy(1)) {
        // (ab|ab) with a == b: every diagonal element (ii|ii) is a
        // self-repulsion energy and must be positive.
        let block = eri_block(&sh, &sh, &sh, &sh);
        let n = sh.size();
        for i in 0..n {
            for j in 0..n {
                let v = block[((i * n + j) * n + i) * n + j];
                prop_assert!(v > 0.0, "(ij|ij) = {v} at i={i} j={j}");
            }
        }
    }

    #[test]
    fn eri_schwarz_inequality(
        sa in shell_strategy(1),
        sb in shell_strategy(1),
        sc in shell_strategy(1),
        sd in shell_strategy(1),
    ) {
        // |(ab|cd)| <= sqrt((ab|ab)) sqrt((cd|cd)) element-wise.
        let abcd = eri_block(&sa, &sb, &sc, &sd);
        let abab = eri_block(&sa, &sb, &sa, &sb);
        let cdcd = eri_block(&sc, &sd, &sc, &sd);
        let (na, nb, nc, nd) = (sa.size(), sb.size(), sc.size(), sd.size());
        for i in 0..na {
            for j in 0..nb {
                for k in 0..nc {
                    for l in 0..nd {
                        let v = abcd[((i * nb + j) * nc + k) * nd + l].abs();
                        let qab = abab[((i * nb + j) * na + i) * nb + j].max(0.0).sqrt();
                        let qcd = cdcd[((k * nd + l) * nc + k) * nd + l].max(0.0).sqrt();
                        prop_assert!(
                            v <= qab * qcd * (1.0 + 1e-8) + 1e-13,
                            "schwarz violated: |({i}{j}|{k}{l})| = {v} > {}",
                            qab * qcd
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn eri_translation_invariance(
        sa in shell_strategy(1),
        sb in shell_strategy(1),
        shift in prop::array::uniform3(-5.0..5.0f64),
    ) {
        // Rigidly translating all centres leaves every ERI unchanged.
        let translate = |s: &Shell| Shell {
            center: [
                s.center[0] + shift[0],
                s.center[1] + shift[1],
                s.center[2] + shift[2],
            ],
            l: s.l,
            exps: s.exps.clone(),
            coefs: s.coefs.clone(),
        };
        let a = eri_block(&sa, &sb, &sa, &sb);
        let b = eri_block(
            &translate(&sa),
            &translate(&sb),
            &translate(&sa),
            &translate(&sb),
        );
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1e-12));
        }
    }
}
