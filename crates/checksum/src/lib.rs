//! CRC32 (IEEE 802.3 / zlib polynomial, reflected) — the integrity
//! checksum used by the v2 PaSTRI container, the `PSTRS` stream, and the
//! `ERISTOR2` block store.
//!
//! Implemented dependency-free with a compile-time slice-by-4 table: fast
//! enough that checksumming is a rounding error next to block decode
//! (~1 GB/s per core), small enough to audit at a glance. The output
//! matches the ubiquitous zlib/PNG/gzip CRC32, so external tooling
//! (`python -c "import zlib; zlib.crc32(...)"`, `crc32` CLI) can verify
//! files independently.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xedb8_8320;

/// 4 × 256 lookup tables, computed at compile time.
const TABLES: [[u32; 256]; 4] = build_tables();

const fn build_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut s = 1;
    while s < 4 {
        let mut i = 0;
        while i < 256 {
            let prev = t[s - 1][i];
            t[s][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

/// One-shot CRC32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Appends the little-endian CRC32 of `buf`'s current contents to `buf`
/// itself — the "checksum everything above" idiom every PaSTRI header
/// and parity record uses.
pub fn append_crc32_of(buf: &mut Vec<u8>) {
    let c = crc32(buf);
    buf.extend_from_slice(&c.to_le_bytes());
}

/// Incremental CRC32 hasher, for checksumming data produced in pieces
/// (e.g. a header written field by field).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(4);
        for c in &mut chunks {
            let x = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            crc = TABLES[3][(x & 0xff) as usize]
                ^ TABLES[2][((x >> 8) & 0xff) as usize]
                ^ TABLES[1][((x >> 16) & 0xff) as usize]
                ^ TABLES[0][(x >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the hasher remains usable).
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
        assert_eq!(crc32(&[0u8; 32]), 0x190a_55ad);
        assert_eq!(crc32(&[0xffu8; 32]), 0xff6c_ab0b);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 3, 4, 7, 4096, 9999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data), "split={split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn append_covers_everything_above() {
        let mut buf = b"header bytes".to_vec();
        let expect = crc32(&buf);
        append_crc32_of(&mut buf);
        assert_eq!(buf.len(), 12 + 4);
        assert_eq!(&buf[12..], &expect.to_le_bytes());
        // The stored CRC verifies against the prefix it covers.
        assert_eq!(crc32(&buf[..12]), expect);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"abc");
        let a = h.finish();
        let b = h.finish();
        assert_eq!(a, b);
        h.update(b"def");
        let mut h2 = Crc32::new();
        h2.update(b"abcdef");
        assert_eq!(h.finish(), h2.finish());
    }
}
