//! Deterministic I/O fault injection — the test harness behind the
//! repo's corruption-resilience guarantees.
//!
//! [`FaultyReader`] wraps any `Read` (and passes `Seek` through) and
//! injects the failure modes a compressed-ERI dataset actually meets on
//! a parallel file system: flipped bits, a truncated tail, short reads,
//! and transient `Interrupted`/`WouldBlock` errors. Everything is keyed
//! off a caller-supplied seed and the *absolute byte offset*, so a given
//! (source, seed, config) triple always injects the same faults no
//! matter how the consumer chunks its reads — a failing test seed
//! reproduces exactly.
//!
//! [`FaultyWriter`] is the write-side mirror: short writes, torn writes,
//! and deterministic *kill points* — after a caller-chosen number of
//! bytes (shared across several writers via a [`CrashBudget`]) every
//! subsequent write and fsync fails as if the process had been killed at
//! that instant, optionally firing an injectable abort hook first. The
//! crash-recovery harness replays every byte of a compression run as a
//! kill point and asserts the durability invariants on what the "dead"
//! process left behind.
//!
//! [`flip_bits`] is the in-memory counterpart for tests that corrupt a
//! byte buffer directly.
//!
//! This crate is test support: production code never depends on it
//! (repo crates pull it in under `[dev-dependencies]` only), but it is a
//! normal library so the CLI's self-test and `pfs-sim`'s failure model
//! can share the same arithmetic.

use std::io::{self, ErrorKind, Read, Seek, SeekFrom, Write};

pub mod overload;
pub mod proxy;

pub use proxy::{FaultyProxy, ProxyFaultConfig, ProxyTallies, WireFault};

/// What to inject. The default injects nothing — enable modes per test.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability that any given byte has one of its bits flipped.
    pub bit_flip_rate: f64,
    /// Probability that a `read` call fails with a transient error
    /// before touching the source.
    pub transient_rate: f64,
    /// Error kind for transient failures ([`ErrorKind::Interrupted`] or
    /// [`ErrorKind::WouldBlock`] are the realistic choices).
    pub transient_kind: ErrorKind,
    /// Hard cap on injected transient errors, so retry loops always
    /// terminate. `0` disables transient injection entirely.
    pub max_transient_errors: u32,
    /// Deliver at most a prefix of each requested read (exercises
    /// callers that wrongly assume `read` fills the buffer).
    pub short_reads: bool,
    /// Bytes at and beyond this offset read as end-of-file (a torn
    /// write / truncated tail).
    pub truncate_at: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            bit_flip_rate: 0.0,
            transient_rate: 0.0,
            transient_kind: ErrorKind::Interrupted,
            max_transient_errors: 0,
            short_reads: false,
            truncate_at: None,
        }
    }
}

/// Wraps a reader and injects the faults described by a [`FaultConfig`],
/// deterministically per seed.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    seed: u64,
    config: FaultConfig,
    /// Absolute offset of the next byte to be read (tracks seeks).
    pos: u64,
    /// Monotonic `read`-call counter (drives transient-error draws).
    calls: u64,
    transient_emitted: u32,
}

impl<R> FaultyReader<R> {
    /// Wraps `inner`, injecting faults per `config`, reproducible for a
    /// given `seed`.
    pub fn new(inner: R, seed: u64, config: FaultConfig) -> Self {
        Self {
            inner,
            seed,
            config,
            pos: 0,
            calls: 0,
            transient_emitted: 0,
        }
    }

    /// How many transient errors have been injected so far.
    #[must_use]
    pub fn transient_errors_injected(&self) -> u32 {
        self.transient_emitted
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Should the byte at absolute `offset` be corrupted, and if so
    /// which bit? Pure function of (seed, offset) — read-chunking and
    /// seek patterns cannot change the answer.
    fn flip_for_offset(&self, offset: u64) -> Option<u8> {
        if self.config.bit_flip_rate <= 0.0 {
            return None;
        }
        let h = splitmix64(self.seed ^ offset.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if unit_f64(h) < self.config.bit_flip_rate {
            Some(1 << (h >> 61))
        } else {
            None
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let call = self.calls;
        self.calls += 1;
        if self.config.transient_rate > 0.0
            && self.transient_emitted < self.config.max_transient_errors
        {
            let h = splitmix64(self.seed ^ 0xdead_4bad ^ call.wrapping_mul(0x2545_f491_4f6c_dd1d));
            if unit_f64(h) < self.config.transient_rate {
                self.transient_emitted += 1;
                return Err(io::Error::new(self.config.transient_kind, "injected transient"));
            }
        }

        let mut want = buf.len();
        if let Some(limit) = self.config.truncate_at {
            let left = limit.saturating_sub(self.pos);
            want = want.min(left as usize);
            if want == 0 && !buf.is_empty() {
                return Ok(0); // truncated tail
            }
        }
        if self.config.short_reads && want > 1 {
            let h = splitmix64(self.seed ^ 0x5407_7e44 ^ call);
            want = 1 + (h as usize % want);
        }

        let n = self.inner.read(&mut buf[..want])?;
        for (i, byte) in buf[..n].iter_mut().enumerate() {
            if let Some(mask) = self.flip_for_offset(self.pos + i as u64) {
                *byte ^= mask;
                telemetry::counter_add("faults.bit_flips", 1);
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl<R: Seek> Seek for FaultyReader<R> {
    fn seek(&mut self, to: SeekFrom) -> io::Result<u64> {
        let pos = self.inner.seek(to)?;
        self.pos = pos;
        Ok(pos)
    }
}

/// Flips `k` distinct bits of `bytes` within byte range
/// `[from, bytes.len())`, chosen deterministically from `seed`. Returns
/// the flipped `(byte, bit)` positions. Panics if the range cannot hold
/// `k` distinct bits.
pub fn flip_bits(bytes: &mut [u8], from: usize, k: usize, seed: u64) -> Vec<(usize, u8)> {
    let span = bytes.len().checked_sub(from).expect("range start past end");
    assert!(k <= span * 8, "cannot flip {k} distinct bits in {span} bytes");
    let mut flipped = Vec::with_capacity(k);
    let mut state = seed;
    while flipped.len() < k {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let h = splitmix64(state);
        let byte = from + (h as usize) % span;
        let bit = ((h >> 32) % 8) as u8;
        if flipped.contains(&(byte, bit)) {
            continue;
        }
        bytes[byte] ^= 1 << bit;
        flipped.push((byte, bit));
    }
    telemetry::counter_add("faults.bit_flips", flipped.len() as u64);
    flipped
}

/// Deterministic silent-data-corruption injector: exactly `k` distinct
/// bit flips at seeded offsets within a fixed byte span `[from, to)`.
///
/// The flip *plan* — which (absolute byte, bit) positions get hit — is a
/// pure function of `(span, k, seed)`, computed up front with the same
/// arithmetic as [`flip_bits`]. The plan can then be applied any way a
/// test needs: to an in-memory buffer ([`apply`](Self::apply)), to a
/// file on disk in place ([`apply_to_file`](Self::apply_to_file)), or in
/// flight through [`Read`]/[`Write`] wrappers
/// ([`reader`](Self::reader) / [`writer`](Self::writer)) — all four
/// produce byte-identical corruption, so an SDC scenario reproduces
/// exactly regardless of how the bytes move. The wrappers compose with
/// [`FaultyWriter`]/[`CrashBudget`]: wrap a `FaultyWriter` in a
/// `BitFlipper` writer to model a run that both crashes *and* takes
/// silent corruption.
#[derive(Debug, Clone)]
pub struct BitFlipper {
    /// Planned `(absolute byte offset, bit)` flips, sorted by offset.
    plan: Vec<(u64, u8)>,
}

impl BitFlipper {
    /// Plans `k` distinct bit flips within byte span `[from, to)`,
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if the span cannot hold `k` distinct bits.
    #[must_use]
    pub fn new(from: u64, to: u64, k: usize, seed: u64) -> Self {
        let span = to.checked_sub(from).expect("span end before start") as usize;
        assert!(k <= span * 8, "cannot flip {k} distinct bits in {span} bytes");
        let mut plan: Vec<(u64, u8)> = Vec::with_capacity(k);
        let mut state = seed;
        while plan.len() < k {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let h = splitmix64(state);
            let byte = from + (h as usize % span) as u64;
            let bit = ((h >> 32) % 8) as u8;
            if plan.contains(&(byte, bit)) {
                continue;
            }
            plan.push((byte, bit));
        }
        plan.sort_unstable();
        Self { plan }
    }

    /// The planned `(absolute byte offset, bit)` positions, sorted.
    #[must_use]
    pub fn plan(&self) -> &[(u64, u8)] {
        &self.plan
    }

    /// Applies every planned flip to `bytes` (offsets are absolute into
    /// this buffer).
    ///
    /// # Panics
    /// Panics if a planned offset falls outside the buffer.
    pub fn apply(&self, bytes: &mut [u8]) {
        for &(byte, bit) in &self.plan {
            bytes[usize::try_from(byte).expect("offset fits usize")] ^= 1 << bit;
        }
        telemetry::counter_add("faults.bit_flips", self.plan.len() as u64);
    }

    /// Applies every planned flip to the file at `path`, in place.
    pub fn apply_to_file(&self, path: &std::path::Path) -> io::Result<()> {
        let mut bytes = std::fs::read(path)?;
        if let Some(&(last, _)) = self.plan.last() {
            if last >= bytes.len() as u64 {
                return Err(io::Error::new(
                    ErrorKind::InvalidInput,
                    format!("flip offset {last} beyond file length {}", bytes.len()),
                ));
            }
        }
        self.apply(&mut bytes);
        std::fs::write(path, bytes)
    }

    /// Wraps a writer: planned flips land on bytes as they stream
    /// through (offset = count of bytes written so far).
    pub fn writer<W: Write>(self, inner: W) -> FlippingWriter<W> {
        FlippingWriter {
            inner,
            flipper: self,
            pos: 0,
        }
    }

    /// Wraps a reader: planned flips land on bytes as they are read.
    pub fn reader<R: Read>(self, inner: R) -> FlippingReader<R> {
        FlippingReader {
            inner,
            flipper: self,
            pos: 0,
        }
    }

    /// Flips the planned bits inside `buf`, which holds the bytes at
    /// absolute offsets `[pos, pos + buf.len())`.
    fn apply_window(&self, buf: &mut [u8], pos: u64) {
        let end = pos + buf.len() as u64;
        let start = self.plan.partition_point(|&(b, _)| b < pos);
        let mut landed = 0u64;
        for &(byte, bit) in &self.plan[start..] {
            if byte >= end {
                break;
            }
            buf[(byte - pos) as usize] ^= 1 << bit;
            landed += 1;
        }
        if landed > 0 {
            telemetry::counter_add("faults.bit_flips", landed);
        }
    }
}

/// Write half of [`BitFlipper`]: corrupts planned offsets in flight.
pub struct FlippingWriter<W> {
    inner: W,
    flipper: BitFlipper,
    pos: u64,
}

impl<W> FlippingWriter<W> {
    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FlippingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut corrupted = buf.to_vec();
        self.flipper.apply_window(&mut corrupted, self.pos);
        let n = self.inner.write(&corrupted)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<W: durable::SyncWrite> durable::SyncWrite for FlippingWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

/// Read half of [`BitFlipper`]: corrupts planned offsets in flight.
pub struct FlippingReader<R> {
    inner: R,
    flipper: BitFlipper,
    pos: u64,
}

impl<R> FlippingReader<R> {
    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FlippingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.flipper.apply_window(&mut buf[..n], self.pos);
        self.pos += n as u64;
        Ok(n)
    }
}

impl<R: Seek> Seek for FlippingReader<R> {
    fn seek(&mut self, to: SeekFrom) -> io::Result<u64> {
        let pos = self.inner.seek(to)?;
        self.pos = pos;
        Ok(pos)
    }
}

/// Shared byte allowance for a simulated crash: writers draw from it on
/// every accepted byte, and once it runs dry they all die together —
/// modeling a process kill at one instant across the data file *and*
/// its journal. Cloning shares the same budget.
#[derive(Debug, Clone)]
pub struct CrashBudget(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl CrashBudget {
    /// A budget of `bytes` accepted writes before the crash.
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        Self(std::sync::Arc::new(std::sync::atomic::AtomicU64::new(
            bytes,
        )))
    }

    /// Bytes still writable before the crash fires.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Draws up to `want` bytes; returns how many were granted (0 once
    /// exhausted). Thread-safe: concurrent writers cannot overdraw.
    fn take(&self, want: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let grant = cur.min(want);
            match self
                .0
                .compare_exchange(cur, cur - grant, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return grant,
                Err(now) => cur = now,
            }
        }
    }
}

/// What [`FaultyWriter`] injects. Default injects nothing.
#[derive(Default)]
pub struct WriteFaultConfig {
    /// Accept at most a prefix of each write (exercises callers that
    /// wrongly assume `write` takes the whole buffer).
    pub short_writes: bool,
    /// Crash once this shared budget is exhausted: every later write,
    /// flush, and sync fails with [`ErrorKind::Other`] ("injected
    /// crash"). Share one budget across the data and journal writers to
    /// model a whole-process kill.
    pub kill_after: Option<CrashBudget>,
    /// If `true`, the killing write is *torn*: the bytes still in budget
    /// are accepted (and reach the inner writer) before the failure —
    /// byte-granular kill points. If `false`, the killing write is
    /// rejected wholesale — kill points land on write-call boundaries.
    pub torn_kill: bool,
}

/// Error kind used for injected crashes.
#[must_use]
pub fn crash_error() -> io::Error {
    io::Error::other("injected crash")
}

/// Is this error an injected crash from a [`FaultyWriter`]?
#[must_use]
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.kind() == ErrorKind::Other && e.to_string().contains("injected crash")
}

/// Wraps a writer and injects write-side faults per a
/// [`WriteFaultConfig`], deterministically per seed. After the kill
/// budget runs dry the writer is *dead*: nothing further reaches the
/// inner writer, mirroring a killed process whose file descriptors are
/// gone.
pub struct FaultyWriter<W> {
    inner: W,
    seed: u64,
    config: WriteFaultConfig,
    calls: u64,
    dead: bool,
    abort_hook: Option<Box<dyn FnMut() + Send>>,
}

impl<W> FaultyWriter<W> {
    /// Wraps `inner`, injecting faults per `config`, reproducible for a
    /// given `seed`.
    pub fn new(inner: W, seed: u64, config: WriteFaultConfig) -> Self {
        Self {
            inner,
            seed,
            config,
            calls: 0,
            dead: false,
            abort_hook: None,
        }
    }

    /// Installs a hook fired exactly once, at the moment the kill budget
    /// exhausts and this writer dies. The harness uses it to observe the
    /// crash instant (or to unwind, simulating an abort).
    #[must_use]
    pub fn with_abort_hook(mut self, hook: impl FnMut() + Send + 'static) -> Self {
        self.abort_hook = Some(Box::new(hook));
        self
    }

    /// Has the injected crash fired?
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Unwraps the inner writer (whatever it received pre-crash).
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn die(&mut self) -> io::Error {
        if !self.dead {
            self.dead = true;
            telemetry::counter_add("faults.crashes_injected", 1);
            telemetry::counter_add("faults.crash_budget_exhausted", 1);
            telemetry::event("faults.crash_budget_exhausted");
            if let Some(hook) = self.abort_hook.as_mut() {
                hook();
            }
        }
        crash_error()
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(crash_error());
        }
        let call = self.calls;
        self.calls += 1;
        let mut want = buf.len();
        if self.config.short_writes && want > 1 {
            let h = splitmix64(self.seed ^ 0x7717_a9b3 ^ call);
            want = 1 + (h as usize % want);
        }
        if let Some(budget) = &self.config.kill_after {
            if self.config.torn_kill {
                let grant = budget.take(want as u64) as usize;
                if grant == 0 && !buf.is_empty() {
                    return Err(self.die());
                }
                want = grant;
            } else if budget.remaining() < want as u64 {
                return Err(self.die());
            } else {
                budget.take(want as u64);
            }
        }
        self.inner.write(&buf[..want])
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(crash_error());
        }
        self.inner.flush()
    }
}

impl<W: durable::SyncWrite> durable::SyncWrite for FaultyWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(crash_error());
        }
        self.inner.sync()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    fn read_all_through(cfg: FaultConfig, seed: u64, chunk: usize) -> Vec<u8> {
        let src = data(4096);
        let mut r = FaultyReader::new(Cursor::new(src), seed, cfg);
        let mut out = Vec::new();
        let mut buf = vec![0u8; chunk];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock) => {
                    continue
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        out
    }

    #[test]
    fn no_faults_is_transparent() {
        let out = read_all_through(FaultConfig::default(), 42, 100);
        assert_eq!(out, data(4096));
    }

    #[test]
    fn bit_flips_are_chunking_independent() {
        let cfg = FaultConfig {
            bit_flip_rate: 0.01,
            ..Default::default()
        };
        let a = read_all_through(cfg, 7, 1);
        let b = read_all_through(cfg, 7, 64);
        let c = read_all_through(cfg, 7, 4096);
        assert_eq!(a, b);
        assert_eq!(b, c);
        let clean = data(4096);
        let diff = a.iter().zip(&clean).filter(|(x, y)| x != y).count();
        assert!(diff > 0, "1% rate over 4 KiB must flip something");
        // Each corrupted byte differs by exactly one bit.
        for (x, y) in a.iter().zip(&clean) {
            if x != y {
                assert_eq!((x ^ y).count_ones(), 1);
            }
        }
        // A different seed flips different bytes.
        let other = read_all_through(cfg, 8, 64);
        assert_ne!(a, other);
    }

    #[test]
    fn truncation_ends_the_stream() {
        let cfg = FaultConfig {
            truncate_at: Some(1000),
            ..Default::default()
        };
        let out = read_all_through(cfg, 1, 256);
        assert_eq!(out, data(4096)[..1000].to_vec());
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let cfg = FaultConfig {
            short_reads: true,
            ..Default::default()
        };
        let out = read_all_through(cfg, 3, 512);
        assert_eq!(out, data(4096));
    }

    #[test]
    fn transient_errors_are_bounded() {
        let cfg = FaultConfig {
            transient_rate: 0.5,
            max_transient_errors: 5,
            transient_kind: ErrorKind::WouldBlock,
            ..Default::default()
        };
        let src = data(4096);
        let mut r = FaultyReader::new(Cursor::new(src.clone()), 9, cfg);
        let mut out = Vec::new();
        let mut buf = [0u8; 128];
        let mut transients = 0;
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => transients += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, src);
        assert_eq!(transients, 5, "must stop at max_transient_errors");
        assert_eq!(r.transient_errors_injected(), 5);
    }

    #[test]
    fn seek_keeps_flip_determinism() {
        let cfg = FaultConfig {
            bit_flip_rate: 0.05,
            ..Default::default()
        };
        // Read straight through.
        let straight = read_all_through(cfg, 11, 4096);
        // Read the second half first, then the first half, via seeks.
        let mut r = FaultyReader::new(Cursor::new(data(4096)), 11, cfg);
        let mut second = vec![0u8; 2048];
        r.seek(SeekFrom::Start(2048)).unwrap();
        r.read_exact(&mut second).unwrap();
        let mut first = vec![0u8; 2048];
        r.seek(SeekFrom::Start(0)).unwrap();
        r.read_exact(&mut first).unwrap();
        first.extend_from_slice(&second);
        assert_eq!(first, straight, "flips must depend on offset, not read order");
    }

    #[test]
    fn faulty_writer_no_faults_is_transparent() {
        let mut w = FaultyWriter::new(Vec::new(), 5, WriteFaultConfig::default());
        w.write_all(&data(1000)).unwrap();
        w.flush().unwrap();
        assert_eq!(w.into_inner(), data(1000));
    }

    #[test]
    fn short_writes_still_deliver_everything() {
        let mut w = FaultyWriter::new(
            Vec::new(),
            5,
            WriteFaultConfig {
                short_writes: true,
                ..Default::default()
            },
        );
        // write_all loops over the short accepts.
        w.write_all(&data(4096)).unwrap();
        assert!(w.calls > 1, "short writes must have split the buffer");
        assert_eq!(w.into_inner(), data(4096));
    }

    #[test]
    fn torn_kill_accepts_exactly_the_budget() {
        for kill_at in [0u64, 1, 137, 999, 1000] {
            let mut w = FaultyWriter::new(
                Vec::new(),
                9,
                WriteFaultConfig {
                    kill_after: Some(CrashBudget::new(kill_at)),
                    torn_kill: true,
                    ..Default::default()
                },
            );
            let src = data(1000);
            let result = w.write_all(&src);
            if kill_at < 1000 {
                let e = result.unwrap_err();
                assert!(is_injected_crash(&e), "{e}");
                assert!(w.is_dead());
                // Everything else fails too, like a killed process.
                assert!(w.write(b"x").is_err());
                assert!(w.flush().is_err());
                assert!(durable::SyncWrite::sync(&mut w).is_err());
            } else {
                result.unwrap();
            }
            let got = w.into_inner();
            let expect = &src[..(kill_at as usize).min(1000)];
            assert_eq!(got, expect, "kill_at={kill_at}: exactly the budget lands");
        }
    }

    #[test]
    fn call_boundary_kill_rejects_the_killing_write() {
        let mut w = FaultyWriter::new(
            Vec::new(),
            9,
            WriteFaultConfig {
                kill_after: Some(CrashBudget::new(10)),
                torn_kill: false,
                ..Default::default()
            },
        );
        w.write_all(&[1u8; 8]).unwrap();
        // 2 bytes left in budget: a 4-byte write dies without landing
        // any of its bytes.
        let e = w.write_all(&[2u8; 4]).unwrap_err();
        assert!(is_injected_crash(&e));
        assert_eq!(w.into_inner(), vec![1u8; 8]);
    }

    #[test]
    fn shared_budget_kills_both_writers_together() {
        let budget = CrashBudget::new(6);
        let cfg = || WriteFaultConfig {
            kill_after: Some(budget.clone()),
            torn_kill: true,
            ..Default::default()
        };
        let mut a = FaultyWriter::new(Vec::new(), 1, cfg());
        let mut b = FaultyWriter::new(Vec::new(), 2, cfg());
        a.write_all(b"1234").unwrap(); // budget: 2 left
        let err = b.write_all(b"abcd").unwrap_err(); // torn after "ab"
        assert!(is_injected_crash(&err));
        // a's next write also dies: the shared budget is dry.
        assert_eq!(budget.remaining(), 0);
        assert!(a.write_all(b"x").is_err());
        assert_eq!(a.into_inner(), b"1234");
        assert_eq!(b.into_inner(), b"ab");
    }

    #[test]
    fn abort_hook_fires_exactly_once() {
        let fired = std::sync::Arc::new(AtomicU32::new(0));
        let fired2 = std::sync::Arc::clone(&fired);
        let mut w = FaultyWriter::new(
            Vec::new(),
            3,
            WriteFaultConfig {
                kill_after: Some(CrashBudget::new(2)),
                torn_kill: true,
                ..Default::default()
            },
        )
        .with_abort_hook(move || {
            fired2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert!(w.write_all(b"abcdef").is_err());
        assert!(w.write_all(b"more").is_err());
        assert!(w.flush().is_err());
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    use std::sync::atomic::AtomicU32;

    #[test]
    fn bit_flipper_every_route_is_identical() {
        // The same plan applied in memory, through a writer, through a
        // reader, and to a file must corrupt byte-identically.
        let clean = data(2048);
        let flipper = BitFlipper::new(64, 2048, 12, 0xfeed);
        assert_eq!(flipper.plan().len(), 12);
        assert!(flipper.plan().windows(2).all(|w| w[0] < w[1]), "sorted, distinct");

        let mut in_memory = clean.clone();
        flipper.apply(&mut in_memory);
        let diff: u32 = in_memory
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 12);

        // Writer route, in awkward chunk sizes.
        let mut w = flipper.clone().writer(Vec::new());
        for chunk in clean.chunks(37) {
            w.write_all(chunk).unwrap();
        }
        assert_eq!(w.into_inner(), in_memory);

        // Reader route.
        let mut r = flipper.clone().reader(Cursor::new(clean.clone()));
        let mut via_reader = Vec::new();
        r.read_to_end(&mut via_reader).unwrap();
        assert_eq!(via_reader, in_memory);

        // File route.
        let path = std::env::temp_dir().join(format!("bitflip-{}", std::process::id()));
        std::fs::write(&path, &clean).unwrap();
        flipper.apply_to_file(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), in_memory);
        let _ = std::fs::remove_file(&path);

        // Determinism: same (span, k, seed) → same plan; different seed
        // → different plan.
        assert_eq!(BitFlipper::new(64, 2048, 12, 0xfeed).plan(), flipper.plan());
        assert_ne!(BitFlipper::new(64, 2048, 12, 0xbeef).plan(), flipper.plan());
    }

    #[test]
    fn bit_flipper_seek_keeps_offsets_absolute() {
        let clean = data(1024);
        let flipper = BitFlipper::new(0, 1024, 9, 3);
        let mut expect = clean.clone();
        flipper.apply(&mut expect);

        let mut r = flipper.reader(Cursor::new(clean));
        let mut second = vec![0u8; 512];
        r.seek(SeekFrom::Start(512)).unwrap();
        r.read_exact(&mut second).unwrap();
        let mut first = vec![0u8; 512];
        r.seek(SeekFrom::Start(0)).unwrap();
        r.read_exact(&mut first).unwrap();
        first.extend_from_slice(&second);
        assert_eq!(first, expect, "flips must track absolute offsets across seeks");
    }

    #[test]
    fn bit_flipper_composes_with_crash_budget() {
        // SDC + crash in one run: the flipper corrupts in flight, the
        // budget kills the process partway. Bytes that land before the
        // kill carry the planned flips; nothing lands after.
        let budget = CrashBudget::new(300);
        let faulty = FaultyWriter::new(
            Vec::new(),
            1,
            WriteFaultConfig {
                kill_after: Some(budget),
                torn_kill: true,
                ..Default::default()
            },
        );
        let flipper = BitFlipper::new(0, 1000, 20, 55);
        let mut w = flipper.clone().writer(faulty);
        let err = w.write_all(&data(1000)).unwrap_err();
        assert!(is_injected_crash(&err));
        let landed = w.into_inner().into_inner();
        assert_eq!(landed.len(), 300);
        let mut expect = data(1000);
        flipper.apply(&mut expect);
        assert_eq!(landed, expect[..300].to_vec());
    }

    #[test]
    fn flip_bits_flips_exactly_k_distinct() {
        let mut buf = data(512);
        let clean = buf.clone();
        let flipped = flip_bits(&mut buf, 100, 8, 77);
        assert_eq!(flipped.len(), 8);
        let diff_bits: u32 = buf
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 8);
        assert!(flipped.iter().all(|&(b, _)| b >= 100));
        // Deterministic.
        let mut again = clean.clone();
        assert_eq!(flip_bits(&mut again, 100, 8, 77), flipped);
        assert_eq!(again, buf);
    }
}
