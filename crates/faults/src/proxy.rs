//! Deterministic in-path transport fault injector: a TCP proxy that
//! sits between a PTRF client and server and injects wire-level faults
//! on a seeded schedule — the socket-layer sibling of [`FaultyReader`].
//!
//! Five fault classes, matching what flaky networks actually do to a
//! framed stream:
//!
//! * [`WireFault::Truncate`] — forward N downstream bytes, then close
//!   the client side cleanly: the client sees EOF mid-frame.
//! * [`WireFault::Corrupt`] — flip one seeded bit of one downstream
//!   byte and keep flowing: the client's frame CRC must catch it.
//! * [`WireFault::Drop`] — tear down both directions abruptly at a
//!   seeded offset mid-conversation.
//! * [`WireFault::Stall`] — forward N bytes, then sit on the stream
//!   longer than any reasonable client deadline before resuming: the
//!   client's per-call deadline must fire, never a hang.
//! * [`WireFault::Reset`] — close the accepted connection immediately,
//!   before a single byte flows (the transient-`ECONNRESET` shape).
//!
//! Discipline mirrors [`FaultyReader`]: everything is derived from
//! `splitmix64(seed ^ connection-index)`, so given a deterministic
//! connection order (one sequential client), the same seed injects the
//! same faults at the same byte offsets on every run — which is what
//! lets `BENCH_transport.json` assert bit-identical tallies across
//! reruns. `max_faults` bounds the storm so a retrying client always
//! gets through eventually.
//!
//! [`FaultyReader`]: crate::FaultyReader

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use durable::retry::splitmix64;

/// One injectable wire-fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    Truncate,
    Corrupt,
    Drop,
    Stall,
    Reset,
}

impl WireFault {
    /// All five classes, in the order the injector cycles them.
    pub const ALL: [WireFault; 5] = [
        WireFault::Truncate,
        WireFault::Corrupt,
        WireFault::Drop,
        WireFault::Stall,
        WireFault::Reset,
    ];

    /// The telemetry event-journal kind recorded when this fault fires,
    /// so a merged trace shows *which* wire fault a retry recovered
    /// from.
    #[must_use]
    pub fn journal_kind(self) -> &'static str {
        match self {
            WireFault::Truncate => "wire.truncate",
            WireFault::Corrupt => "wire.corrupt",
            WireFault::Drop => "wire.drop",
            WireFault::Stall => "wire.stall",
            WireFault::Reset => "wire.reset",
        }
    }
}

/// Injection schedule. Default: transparent (no faults).
#[derive(Debug, Clone)]
pub struct ProxyFaultConfig {
    /// Every `faulty_every`-th accepted connection (1-based) is a fault
    /// candidate; `0` disables injection entirely.
    pub faulty_every: u32,
    /// Classes cycled across faulty connections in order.
    pub classes: Vec<WireFault>,
    /// Hard cap on injected faults; once spent, the proxy is
    /// transparent — so bounded client retry budgets always win.
    pub max_faults: u32,
    /// How long a [`WireFault::Stall`] sits on the stream. Point it
    /// past the client deadline under test.
    pub stall: Duration,
    /// Downstream byte offset where a fault fires: `offset_base +
    /// splitmix64(seed ^ conn) % offset_window`. Base past the Hello
    /// frame aims faults at responses instead of the handshake.
    pub offset_base: u64,
    pub offset_window: u64,
}

impl Default for ProxyFaultConfig {
    fn default() -> Self {
        ProxyFaultConfig {
            faulty_every: 0,
            classes: WireFault::ALL.to_vec(),
            max_faults: u32::MAX,
            stall: Duration::from_millis(500),
            offset_base: 0,
            offset_window: 256,
        }
    }
}

/// How many faults of each class actually fired (plus connections
/// proxied). Deterministic for a deterministic connection order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyTallies {
    pub conns: u64,
    pub truncates: u64,
    pub corrupts: u64,
    pub drops: u64,
    pub stalls: u64,
    pub resets: u64,
}

impl ProxyTallies {
    /// Total faults fired across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.truncates + self.corrupts + self.drops + self.stalls + self.resets
    }

    /// Accumulates another proxy's tallies (e.g. one per replica).
    pub fn add(&mut self, other: &ProxyTallies) {
        self.conns += other.conns;
        self.truncates += other.truncates;
        self.corrupts += other.corrupts;
        self.drops += other.drops;
        self.stalls += other.stalls;
        self.resets += other.resets;
    }

    /// One diffable JSON object line, keys in declaration order.
    #[must_use]
    pub fn tally_line(&self) -> String {
        format!(
            "{{\"conns\": {}, \"truncates\": {}, \"corrupts\": {}, \"drops\": {}, \
             \"stalls\": {}, \"resets\": {}}}",
            self.conns, self.truncates, self.corrupts, self.drops, self.stalls, self.resets
        )
    }
}

struct ProxyState {
    upstream: String,
    seed: u64,
    cfg: ProxyFaultConfig,
    stop: AtomicBool,
    conns: AtomicU64,
    faults_fired: AtomicU64,
    truncates: AtomicU64,
    corrupts: AtomicU64,
    drops: AtomicU64,
    stalls: AtomicU64,
    resets: AtomicU64,
}

impl ProxyState {
    /// Counts a fired fault and journals it (`wire.*` kind, downstream
    /// byte offset as payload) when the telemetry recorder is on.
    fn tally(&self, fault: WireFault, off: u64) {
        match fault {
            WireFault::Truncate => &self.truncates,
            WireFault::Corrupt => &self.corrupts,
            WireFault::Drop => &self.drops,
            WireFault::Stall => &self.stalls,
            WireFault::Reset => &self.resets,
        }
        .fetch_add(1, Ordering::Relaxed);
        telemetry::journal(fault.journal_kind(), off, 0);
    }
}

/// A running fault proxy. Listens on an ephemeral local port; point
/// the client at [`FaultyProxy::addr`] and the proxy at the real
/// server.
pub struct FaultyProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultyProxy {
    /// Starts proxying `127.0.0.1:<ephemeral>` → `upstream`
    /// (`host:port`).
    pub fn start(upstream: &str, seed: u64, cfg: ProxyFaultConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            upstream: upstream.to_string(),
            seed,
            cfg,
            stop: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            faults_fired: AtomicU64::new(0),
            truncates: AtomicU64::new(0),
            corrupts: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(FaultyProxy { addr, state, accept_thread: Some(accept_thread) })
    }

    /// Address clients should connect to, as `host:port`.
    #[must_use]
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Fault counts so far.
    #[must_use]
    pub fn tallies(&self) -> ProxyTallies {
        ProxyTallies {
            conns: self.state.conns.load(Ordering::Relaxed),
            truncates: self.state.truncates.load(Ordering::Relaxed),
            corrupts: self.state.corrupts.load(Ordering::Relaxed),
            drops: self.state.drops.load(Ordering::Relaxed),
            stalls: self.state.stalls.load(Ordering::Relaxed),
            resets: self.state.resets.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the accept loop. Per-connection pump
    /// threads drain on their own as the endpoints close (a stalling
    /// pump may outlive `stop` by its sleep; it holds no locks).
    pub fn stop(mut self) -> ProxyTallies {
        self.shutdown();
        self.tallies()
    }

    fn shutdown(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Poke accept(2) awake.
        if let Ok(s) = TcpStream::connect(self.addr) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultyProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ProxyState>) {
    loop {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let k = state.conns.fetch_add(1, Ordering::Relaxed);
        let conn_state = Arc::clone(state);
        // Detached on purpose: a pump ends when its sockets do.
        std::thread::spawn(move || pump_connection(client, k, &conn_state));
    }
}

/// The fault (and its downstream byte offset) planned for accepted
/// connection `k`, if any. Purely a function of (seed, cfg, k) plus
/// the global fault budget.
fn plan_fault(state: &ProxyState, k: u64) -> Option<(WireFault, u64)> {
    let cfg = &state.cfg;
    if cfg.faulty_every == 0 || cfg.classes.is_empty() {
        return None;
    }
    if !(k + 1).is_multiple_of(u64::from(cfg.faulty_every)) {
        return None;
    }
    // Claim one unit of fault budget; back out if it's spent.
    let fired = state.faults_fired.fetch_add(1, Ordering::Relaxed);
    if fired >= u64::from(cfg.max_faults) {
        state.faults_fired.fetch_sub(1, Ordering::Relaxed);
        return None;
    }
    // Which faulty connection this is (0-based) picks the class, so a
    // sequential client walks the class list in order.
    let fault_index = k / u64::from(cfg.faulty_every);
    let class = cfg.classes[(fault_index as usize) % cfg.classes.len()];
    let h = splitmix64(state.seed ^ (k + 1));
    let off = cfg.offset_base + h % cfg.offset_window.max(1);
    Some((class, off))
}

fn pump_connection(client: TcpStream, k: u64, state: &Arc<ProxyState>) {
    let fault = plan_fault(state, k);
    if let Some((WireFault::Reset, _)) = fault {
        // Close before a single byte flows — the accept-then-slam shape
        // of a transient ECONNRESET.
        state.tally(WireFault::Reset, 0);
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let upstream = match TcpStream::connect(state.upstream.as_str()) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);

    // Client → upstream: always transparent (requests are small; the
    // interesting faults hit the data-bearing downstream direction).
    let (c2u_client, c2u_up) = match (client.try_clone(), upstream.try_clone()) {
        (Ok(c), Ok(u)) => (c, u),
        _ => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    std::thread::spawn(move || {
        copy_transparent(c2u_client, c2u_up);
    });

    // Upstream → client: this direction carries the fault.
    copy_with_fault(upstream, client, fault, state);
}

fn copy_transparent(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn copy_with_fault(
    mut from: TcpStream,
    mut to: TcpStream,
    fault: Option<(WireFault, u64)>,
    state: &ProxyState,
) {
    let mut buf = [0u8; 4096];
    let mut pos = 0u64; // downstream bytes forwarded so far
    let mut pending = fault;
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let mut start = 0usize;
                if let Some((class, off)) = pending {
                    if off < pos + n as u64 {
                        let cut = (off - pos) as usize;
                        match class {
                            WireFault::Truncate => {
                                // Forward the prefix, then clean EOF
                                // mid-frame toward the client.
                                state.tally(class, off);
                                let _ = to.write_all(&buf[..cut]);
                                let _ = to.shutdown(Shutdown::Write);
                                let _ = from.shutdown(Shutdown::Both);
                                return;
                            }
                            WireFault::Drop => {
                                // Abrupt teardown of both directions.
                                state.tally(class, off);
                                let _ = to.shutdown(Shutdown::Both);
                                let _ = from.shutdown(Shutdown::Both);
                                return;
                            }
                            WireFault::Corrupt => {
                                // One seeded bit flip; the stream keeps
                                // flowing so only the CRC can tell.
                                state.tally(class, off);
                                let bit = splitmix64(state.seed ^ off) % 8;
                                buf[cut] ^= 1u8 << bit;
                                pending = None;
                            }
                            WireFault::Stall => {
                                // Forward the prefix, sit past any
                                // deadline, then resume.
                                state.tally(class, off);
                                let _ = to.write_all(&buf[..cut]);
                                std::thread::sleep(state.cfg.stall);
                                start = cut;
                                pending = None;
                            }
                            WireFault::Reset => unreachable!("handled at accept"),
                        }
                    }
                }
                if to.write_all(&buf[start..n]).is_err() {
                    break;
                }
                pos += n as u64;
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A tiny upstream that writes `payload` to every connection, then
    /// closes.
    fn one_shot_upstream(payload: Vec<u8>, conns: usize) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            for _ in 0..conns {
                let (mut s, _) = match listener.accept() {
                    Ok(x) => x,
                    Err(_) => return,
                };
                let _ = s.write_all(&payload);
            }
        });
        (addr, h)
    }

    fn read_all(addr: &str) -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        out
    }

    #[test]
    fn transparent_proxy_is_byte_identical() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let (addr, h) = one_shot_upstream(payload.clone(), 1);
        let proxy = FaultyProxy::start(&addr, 1, ProxyFaultConfig::default()).unwrap();
        assert_eq!(read_all(&proxy.addr()), payload);
        let t = proxy.stop();
        assert_eq!(t.total(), 0);
        assert_eq!(t.conns, 1);
        h.join().unwrap();
    }

    #[test]
    fn corrupt_flips_exactly_one_seeded_bit() {
        let payload: Vec<u8> = vec![0u8; 4096];
        let (addr, h) = one_shot_upstream(payload.clone(), 2);
        let cfg = ProxyFaultConfig {
            faulty_every: 1,
            classes: vec![WireFault::Corrupt],
            max_faults: 1,
            offset_base: 100,
            offset_window: 50,
            ..ProxyFaultConfig::default()
        };
        let proxy = FaultyProxy::start(&addr, 42, cfg).unwrap();
        let dirty = read_all(&proxy.addr());
        assert_eq!(dirty.len(), payload.len());
        let flipped: Vec<usize> =
            (0..dirty.len()).filter(|&i| dirty[i] != payload[i]).collect();
        assert_eq!(flipped.len(), 1, "exactly one corrupted byte");
        let off = flipped[0] as u64;
        assert!((100..150).contains(&off), "offset {off} inside the window");
        assert_eq!(
            (dirty[flipped[0]] ^ payload[flipped[0]]).count_ones(),
            1,
            "exactly one flipped bit"
        );
        // Budget spent: the second connection is transparent.
        let clean = read_all(&proxy.addr());
        assert_eq!(clean, payload);
        assert_eq!(proxy.stop().corrupts, 1);
        h.join().unwrap();
    }

    #[test]
    fn truncate_cuts_the_stream_short() {
        let payload: Vec<u8> = vec![7u8; 4096];
        let (addr, h) = one_shot_upstream(payload.clone(), 1);
        let cfg = ProxyFaultConfig {
            faulty_every: 1,
            classes: vec![WireFault::Truncate],
            offset_base: 10,
            offset_window: 20,
            ..ProxyFaultConfig::default()
        };
        let proxy = FaultyProxy::start(&addr, 9, cfg).unwrap();
        let got = read_all(&proxy.addr());
        assert!((10..30).contains(&got.len()), "cut at {} bytes", got.len());
        assert_eq!(proxy.stop().truncates, 1);
        h.join().unwrap();
    }

    #[test]
    fn reset_closes_before_any_byte() {
        let (addr, h) = one_shot_upstream(vec![1u8; 64], 1);
        let cfg = ProxyFaultConfig {
            faulty_every: 1,
            classes: vec![WireFault::Reset],
            max_faults: 1,
            ..ProxyFaultConfig::default()
        };
        let proxy = FaultyProxy::start(&addr, 3, cfg).unwrap();
        let got = read_all(&proxy.addr());
        assert!(got.is_empty(), "reset connection served {} bytes", got.len());
        // Second conn gets through (budget exhausted).
        let clean = read_all(&proxy.addr());
        assert_eq!(clean, vec![1u8; 64]);
        assert_eq!(proxy.stop().resets, 1);
        h.join().unwrap();
    }

    #[test]
    fn same_seed_same_plan() {
        // plan_fault is pure in (seed, cfg, k) while budget remains.
        let cfg = ProxyFaultConfig {
            faulty_every: 2,
            classes: WireFault::ALL.to_vec(),
            max_faults: 100,
            ..ProxyFaultConfig::default()
        };
        let mk = || ProxyState {
            upstream: String::new(),
            seed: 77,
            cfg: cfg.clone(),
            stop: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            faults_fired: AtomicU64::new(0),
            truncates: AtomicU64::new(0),
            corrupts: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        };
        let (a, b) = (mk(), mk());
        for k in 0..40 {
            assert_eq!(plan_fault(&a, k), plan_fault(&b, k), "conn {k}");
        }
        // Odd-indexed (1-based even) connections carry the faults, and
        // classes cycle in order.
        let c = mk();
        let fired: Vec<WireFault> =
            (0..10).filter_map(|k| plan_fault(&c, k)).map(|(f, _)| f).collect();
        assert_eq!(fired, WireFault::ALL.to_vec());
    }
}
