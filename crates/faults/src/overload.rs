//! Seeded deterministic overload injector.
//!
//! Produces the two ingredients of an overload storm as pure functions
//! of `(seed, request key, attempt)`:
//!
//! * **Forced sheds** — "refuse the first `k` presentations of this
//!   request, then admit", with `k` drawn per-key from the seed. A
//!   client that retries the same batch therefore sees a deterministic
//!   shed/admit sequence regardless of wall-clock timing or how many
//!   other clients are hammering the server.
//! * **Slow-handler delays** — extra service time burned while the
//!   request holds its admission permit, modelling a store that got
//!   slow rather than a wire that got noisy.
//!
//! The injector deliberately knows nothing about the server: the
//! transport layer asks [`OverloadInjector::decide`] per request and
//! applies the verdict through its own admission plumbing, so the
//! tallies the soak harness gates on (sheds, breaker transitions) are
//! bit-identical per seed at any thread count.

use std::time::Duration;

use durable::retry::splitmix64;

/// Tunables for [`OverloadInjector`].
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Force a shed sequence on one request key in `shed_every` (0
    /// disables forced sheds).
    pub shed_every: u64,
    /// Upper bound on how many consecutive presentations of a targeted
    /// key are shed before it admits (the actual count is seeded,
    /// in `1..=max_sheds_per_key`).
    pub max_sheds_per_key: u32,
    /// Retry-after hint attached to forced sheds.
    pub retry_after: Duration,
    /// Inject a slow-handler delay on one request key in
    /// `delay_every` (0 disables delays).
    pub delay_every: u64,
    /// Upper bound on the injected delay (actual is seeded, in
    /// `1..=max_delay` milliseconds' worth of microsecond steps).
    pub max_delay: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            shed_every: 3,
            max_sheds_per_key: 2,
            retry_after: Duration::from_millis(2),
            delay_every: 4,
            max_delay: Duration::from_millis(3),
        }
    }
}

/// The injector's verdict for one presentation of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadDecision {
    /// Refuse this attempt (structured shed, not a timeout).
    pub shed: bool,
    /// Backoff hint to carry on the refusal.
    pub retry_after: Duration,
    /// Extra service time once admitted.
    pub delay: Duration,
}

/// Seeded, stateless overload decider. All methods are pure: the same
/// `(seed, key, attempt)` always yields the same decision.
#[derive(Debug, Clone)]
pub struct OverloadInjector {
    seed: u64,
    cfg: OverloadConfig,
}

impl OverloadInjector {
    #[must_use]
    pub fn new(seed: u64, cfg: OverloadConfig) -> Self {
        OverloadInjector { seed, cfg }
    }

    /// How many leading presentations of `key` are forcibly shed
    /// (0 = never targeted).
    #[must_use]
    pub fn forced_sheds(&self, key: u64) -> u32 {
        if self.cfg.shed_every == 0 || self.cfg.max_sheds_per_key == 0 {
            return 0;
        }
        let h = splitmix64(self.seed ^ splitmix64(key ^ 0x5EED_5EED));
        if !h.is_multiple_of(self.cfg.shed_every) {
            return 0;
        }
        1 + (splitmix64(h ^ 0xC0_FFEE) % u64::from(self.cfg.max_sheds_per_key)) as u32
    }

    /// The slow-handler delay injected once `key` is admitted.
    #[must_use]
    pub fn handler_delay(&self, key: u64) -> Duration {
        if self.cfg.delay_every == 0 || self.cfg.max_delay.is_zero() {
            return Duration::ZERO;
        }
        let h = splitmix64(self.seed ^ splitmix64(key ^ 0xDE1A_F00D));
        if !h.is_multiple_of(self.cfg.delay_every) {
            return Duration::ZERO;
        }
        let cap_us = self.cfg.max_delay.as_micros().max(1) as u64;
        Duration::from_micros(1 + splitmix64(h ^ 0x510_3333) % cap_us)
    }

    /// The verdict for the `attempt`-th presentation of `key` on one
    /// connection.
    #[must_use]
    pub fn decide(&self, key: u64, attempt: u32) -> OverloadDecision {
        OverloadDecision {
            shed: attempt < self.forced_sheds(key),
            retry_after: self.cfg.retry_after,
            delay: self.handler_delay(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_key_attempt() {
        let a = OverloadInjector::new(42, OverloadConfig::default());
        let b = OverloadInjector::new(42, OverloadConfig::default());
        for key in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(a.decide(key, attempt), b.decide(key, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_target_different_keys() {
        let a = OverloadInjector::new(1, OverloadConfig::default());
        let b = OverloadInjector::new(2, OverloadConfig::default());
        let hits_a: Vec<u64> = (0..500).filter(|&k| a.forced_sheds(k) > 0).collect();
        let hits_b: Vec<u64> = (0..500).filter(|&k| b.forced_sheds(k) > 0).collect();
        assert!(!hits_a.is_empty() && !hits_b.is_empty());
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn shed_sequences_are_prefixes_then_admit_forever() {
        let inj = OverloadInjector::new(7, OverloadConfig::default());
        for key in 0..300u64 {
            let k = inj.forced_sheds(key);
            assert!(k <= 2, "bounded by max_sheds_per_key");
            for attempt in 0..6 {
                assert_eq!(inj.decide(key, attempt).shed, attempt < k);
            }
        }
    }

    #[test]
    fn disabled_knobs_disable_cleanly() {
        let cfg = OverloadConfig { shed_every: 0, delay_every: 0, ..OverloadConfig::default() };
        let inj = OverloadInjector::new(9, cfg);
        for key in 0..100u64 {
            assert_eq!(inj.forced_sheds(key), 0);
            assert_eq!(inj.handler_delay(key), Duration::ZERO);
        }
    }
}
