//! Compression assessment metrics — the Z-Checker stand-in (Tao et al.,
//! IJHPCA 2017), providing everything the paper's Fig. 9 reports:
//! compression ratio, bit rate, maximum absolute error, MSE, PSNR, and
//! rate–distortion sweeps, plus error autocorrelation as a sanity check
//! that the compressor is not leaving structured artifacts.

/// Full quality assessment of one compression run.
#[derive(Debug, Clone, Copy)]
pub struct Assessment {
    /// Number of data points compared.
    pub n: usize,
    /// Original size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Largest absolute pointwise error.
    pub max_abs_err: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Peak signal-to-noise ratio `20·log10(range/√MSE)` in dB
    /// (infinite when MSE = 0).
    pub psnr: f64,
    /// Original value range `max − min`.
    pub value_range: f64,
}

impl Assessment {
    /// Compression ratio `original / compressed`.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return f64::INFINITY;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Bit rate: output bits per input value (`64 / CR` for doubles).
    #[must_use]
    pub fn bitrate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.compressed_bytes as f64 * 8.0 / self.n as f64
    }
}

/// Compares `original` against `decompressed` and sizes.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn assess(original: &[f64], decompressed: &[f64], compressed_bytes: usize) -> Assessment {
    assert_eq!(
        original.len(),
        decompressed.len(),
        "length mismatch between original and decompressed"
    );
    let n = original.len();
    let mut max_abs_err = 0.0f64;
    let mut sq_sum = 0.0f64;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (&a, &b) in original.iter().zip(decompressed) {
        let e = (a - b).abs();
        max_abs_err = max_abs_err.max(e);
        sq_sum += e * e;
        lo = lo.min(a);
        hi = hi.max(a);
    }
    let mse = if n == 0 { 0.0 } else { sq_sum / n as f64 };
    let value_range = if n == 0 { 0.0 } else { hi - lo };
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (value_range / mse.sqrt()).log10()
    };
    Assessment {
        n,
        original_bytes: n * 8,
        compressed_bytes,
        max_abs_err,
        mse,
        psnr,
        value_range,
    }
}

/// Lag-`k` autocorrelation of the pointwise error signal. Values near zero
/// mean the compressor's noise is white (desirable); large values expose
/// structured artifacts.
#[must_use]
pub fn error_autocorrelation(original: &[f64], decompressed: &[f64], lag: usize) -> f64 {
    assert_eq!(original.len(), decompressed.len());
    let err: Vec<f64> = original
        .iter()
        .zip(decompressed)
        .map(|(a, b)| a - b)
        .collect();
    if err.len() <= lag + 1 {
        return 0.0;
    }
    let mean = err.iter().sum::<f64>() / err.len() as f64;
    let var: f64 = err.iter().map(|e| (e - mean) * (e - mean)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..err.len() - lag)
        .map(|i| (err[i] - mean) * (err[i + lag] - mean))
        .sum();
    cov / var
}

/// Pearson correlation between original and decompressed data — a
/// Z-Checker quality metric (should be ≈ 1 for any usable compressor).
#[must_use]
pub fn pearson_correlation(original: &[f64], decompressed: &[f64]) -> f64 {
    assert_eq!(original.len(), decompressed.len());
    let n = original.len();
    if n == 0 {
        return 0.0;
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let (ma, mb) = (mean(original), mean(decompressed));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&a, &b) in original.iter().zip(decompressed) {
        cov += (a - ma) * (b - mb);
        va += (a - ma) * (a - ma);
        vb += (b - mb) * (b - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return if va == vb { 1.0 } else { 0.0 };
    }
    cov / (va * vb).sqrt()
}

/// Distribution summary of the pointwise absolute errors: mean, and the
/// p50/p90/p99/max quantiles — Z-Checker's error-distribution view.
#[derive(Debug, Clone, Copy)]
pub struct ErrorQuantiles {
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

/// Computes [`ErrorQuantiles`] of `|original − decompressed|`.
#[must_use]
pub fn error_quantiles(original: &[f64], decompressed: &[f64]) -> ErrorQuantiles {
    assert_eq!(original.len(), decompressed.len());
    let mut errs: Vec<f64> = original
        .iter()
        .zip(decompressed)
        .map(|(a, b)| (a - b).abs())
        .collect();
    if errs.is_empty() {
        return ErrorQuantiles {
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| errs[((errs.len() - 1) as f64 * p).round() as usize];
    ErrorQuantiles {
        mean: errs.iter().sum::<f64>() / errs.len() as f64,
        p50: q(0.50),
        p90: q(0.90),
        p99: q(0.99),
        max: *errs.last().unwrap(),
    }
}

/// One point on a rate–distortion curve (Fig. 9(b)).
#[derive(Debug, Clone, Copy)]
pub struct RateDistortionPoint {
    /// The error bound that produced this point.
    pub error_bound: f64,
    /// Bits per value.
    pub bitrate: f64,
    /// PSNR in dB.
    pub psnr: f64,
    /// Compression ratio.
    pub compression_ratio: f64,
    /// Observed maximum absolute error.
    pub max_abs_err: f64,
}

/// Sweeps error bounds through a codec to build a rate–distortion curve.
///
/// `codec` maps `(data, error_bound)` to
/// `(compressed_bytes_len, decompressed)`.
pub fn rate_distortion_sweep(
    data: &[f64],
    error_bounds: &[f64],
    mut codec: impl FnMut(&[f64], f64) -> (usize, Vec<f64>),
) -> Vec<RateDistortionPoint> {
    error_bounds
        .iter()
        .map(|&eb| {
            let (clen, back) = codec(data, eb);
            let a = assess(data, &back, clen);
            RateDistortionPoint {
                error_bound: eb,
                bitrate: a.bitrate(),
                psnr: a.psnr,
                compression_ratio: a.compression_ratio(),
                max_abs_err: a.max_abs_err,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_infinite_psnr() {
        let data = [1.0, 2.0, 3.0];
        let a = assess(&data, &data, 8);
        assert_eq!(a.max_abs_err, 0.0);
        assert_eq!(a.mse, 0.0);
        assert!(a.psnr.is_infinite());
        assert!((a.compression_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_error_metrics() {
        let orig = [0.0, 1.0, 2.0, 3.0];
        let dec = [0.1, 1.0, 1.9, 3.0];
        let a = assess(&orig, &dec, 16);
        assert!((a.max_abs_err - 0.1).abs() < 1e-12);
        // MSE = (0.01 + 0 + 0.01 + 0)/4 = 0.005.
        assert!((a.mse - 0.005).abs() < 1e-12);
        assert!((a.value_range - 3.0).abs() < 1e-12);
        // PSNR = 20 log10(3/sqrt(0.005)).
        let expect = 20.0 * (3.0 / 0.005f64.sqrt()).log10();
        assert!((a.psnr - expect).abs() < 1e-9);
        assert!((a.bitrate() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_improves_with_smaller_error() {
        let orig: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let noisy = |amp: f64| -> Vec<f64> {
            orig.iter()
                .enumerate()
                .map(|(i, v)| v + amp * if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect()
        };
        let a1 = assess(&orig, &noisy(1e-3), 100);
        let a2 = assess(&orig, &noisy(1e-6), 100);
        assert!(a2.psnr > a1.psnr + 50.0, "{} vs {}", a2.psnr, a1.psnr);
    }

    #[test]
    fn autocorrelation_detects_structure() {
        let orig: Vec<f64> = vec![0.0; 2000];
        // Alternating error: strong negative lag-1 autocorrelation.
        let alt: Vec<f64> = (0..2000).map(|i| if i % 2 == 0 { 1e-9 } else { -1e-9 }).collect();
        let ac = error_autocorrelation(&orig, &alt, 1);
        assert!(ac < -0.9, "ac {ac}");
        // Period-2 structure at lag 2: strong positive.
        let ac2 = error_autocorrelation(&orig, &alt, 2);
        assert!(ac2 > 0.9, "ac2 {ac2}");
    }

    #[test]
    fn autocorrelation_of_perfect_reconstruction_is_zero() {
        let orig: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(error_autocorrelation(&orig, &orig, 1), 0.0);
    }

    #[test]
    fn sweep_is_monotone_for_a_quantizer() {
        // Fake codec: quantize to the bound, report size ~ log(1/eb).
        let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.1).sin()).collect();
        let points = rate_distortion_sweep(&data, &[1e-2, 1e-4, 1e-6], |d, eb| {
            let dec: Vec<f64> = d.iter().map(|v| (v / eb).round() * eb).collect();
            let bytes = (-(eb.log10()) * 100.0) as usize;
            (bytes, dec)
        });
        assert!(points[0].bitrate < points[2].bitrate);
        assert!(points[0].psnr < points[2].psnr);
        assert!(points[0].max_abs_err <= 1e-2 * 0.5 + 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = assess(&[1.0], &[1.0, 2.0], 8);
    }

    #[test]
    fn pearson_of_identical_is_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!((pearson_correlation(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_is_minus_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let neg: Vec<f64> = xs.iter().map(|v| -v).collect();
        assert!((pearson_correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_survives_small_noise() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, v)| v + 1e-8 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(pearson_correlation(&xs, &noisy) > 0.999999);
    }

    #[test]
    fn quantiles_ordering() {
        let orig = vec![0.0; 1000];
        let dec: Vec<f64> = (0..1000).map(|i| i as f64 * 1e-6).collect();
        let q = error_quantiles(&orig, &dec);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
        assert!((q.max - 999e-6).abs() < 1e-12);
        assert!((q.p50 - 500e-6).abs() < 2e-6);
        assert!((q.mean - 499.5e-6).abs() < 1e-9);
    }

    #[test]
    fn quantiles_empty() {
        let q = error_quantiles(&[], &[]);
        assert_eq!(q.max, 0.0);
        assert_eq!(q.mean, 0.0);
    }
}
