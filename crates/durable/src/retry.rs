//! Shared transient-I/O retry policy with bounded, seedable-jitter
//! exponential backoff.
//!
//! Extracted from eri-store's private read path so that every client of
//! congested storage — store reads, the soak workload generator, future
//! prefetchers — configures backoff behavior in one place. Jitter is
//! driven by a caller-supplied seed (splitmix64 over the attempt
//! number), never by wall-clock entropy, so a retry schedule is fully
//! reproducible under test: the same policy produces the same sleep
//! sequence on every run.

use std::io::{self, ErrorKind, Read};
use std::time::Duration;

/// Error kinds treated as transient: routine on congested parallel file
/// systems, worth retrying rather than failing an SCF iteration.
#[must_use]
pub fn is_transient(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    )
}

/// Bounded exponential backoff for transient read errors
/// (`Interrupted`, `WouldBlock`, `TimedOut`), with optional seeded
/// jitter to decorrelate concurrent retriers.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Transient failures tolerated per read call before giving up.
    /// Forward progress (any bytes read) resets the budget.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per consecutive retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling (applied before jitter).
    pub max_backoff: Duration,
    /// `Some(seed)` scales each sleep by a deterministic factor in
    /// `[0.5, 1.0)` drawn from `splitmix64(seed, attempt)`; `None`
    /// sleeps the exact exponential schedule.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(50),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// Fail fast: transient errors surface immediately.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// The default policy with jitter seeded from `seed`.
    #[must_use]
    pub fn jittered(seed: u64) -> Self {
        Self {
            jitter_seed: Some(seed),
            ..Self::default()
        }
    }

    /// The sleep before retry number `attempt` (0-based within one run
    /// of consecutive transient failures): `initial << attempt`, capped
    /// at `max_backoff`, then scaled by the jitter factor when a seed is
    /// set. Pure — the whole schedule can be tabulated up front.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let base_us = (self.initial_backoff.as_micros() as u64)
            .saturating_mul(1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX))
            .min(self.max_backoff.as_micros() as u64);
        let us = match self.jitter_seed {
            None => base_us,
            Some(seed) => {
                // Factor in [0.5, 1.0): half-jitter keeps the exponential
                // shape while decorrelating concurrent retriers.
                let h = splitmix64(seed ^ (u64::from(attempt) + 1));
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                (base_us as f64 * (0.5 + 0.5 * unit)) as u64
            }
        };
        Duration::from_micros(us)
    }
}

/// What one [`read_exact_retry`] call spent absorbing transient faults.
/// Accumulated into the caller's stats even when the read ultimately
/// fails, so a failing read's retries are still accounted for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient errors absorbed (each one slept and retried).
    pub transient_retries: u64,
    /// Total microseconds actually slept in backoff.
    pub backoff_micros: u64,
}

/// Fills `buf` completely, retrying transient errors per `policy` and
/// accumulating what that cost into `stats` (even on failure).
///
/// Hand-rolled rather than `Read::read_exact` because std's loop retries
/// `Interrupted` *unboundedly* and fails every other transient kind
/// immediately — here both are bounded and backed off.
pub fn read_exact_retry<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    policy: &RetryPolicy,
    stats: &mut RetryStats,
) -> io::Result<()> {
    let mut filled = 0usize;
    let mut retries = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "source ended mid-read",
                ))
            }
            Ok(n) => {
                filled += n;
                // Forward progress resets the transient budget.
                retries = 0;
            }
            Err(e) if is_transient(e.kind()) => {
                if retries >= policy.max_retries {
                    return Err(e);
                }
                let backoff = policy.backoff_for(retries);
                retries += 1;
                stats.transient_retries += 1;
                if !backoff.is_zero() {
                    stats.backoff_micros += backoff.as_micros() as u64;
                    std::thread::sleep(backoff);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// splitmix64: the statelesss mixer used across the repo's fault and
/// workload seeding (same construction as `faults`' internal hasher).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that fails with `kind` for the first `fail` calls, then
    /// serves from the cursor.
    struct Flaky {
        inner: Cursor<Vec<u8>>,
        fail: u32,
        kind: ErrorKind,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.fail > 0 {
                self.fail -= 1;
                return Err(io::Error::new(self.kind, "injected"));
            }
            self.inner.read(buf)
        }
    }

    fn instant(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: None,
        }
    }

    #[test]
    fn retries_within_budget_succeed() {
        let mut r = Flaky {
            inner: Cursor::new(vec![7u8; 32]),
            fail: 3,
            kind: ErrorKind::WouldBlock,
        };
        let mut buf = [0u8; 32];
        let mut stats = RetryStats::default();
        read_exact_retry(&mut r, &mut buf, &instant(4), &mut stats).unwrap();
        assert_eq!(buf, [7u8; 32]);
        assert_eq!(stats.transient_retries, 3);
    }

    #[test]
    fn budget_exhaustion_surfaces_with_stats() {
        let mut r = Flaky {
            inner: Cursor::new(vec![7u8; 8]),
            fail: 10,
            kind: ErrorKind::TimedOut,
        };
        let mut buf = [0u8; 8];
        let mut stats = RetryStats::default();
        let err = read_exact_retry(&mut r, &mut buf, &instant(2), &mut stats).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        // The failed call's absorbed retries are still visible.
        assert_eq!(stats.transient_retries, 2);
    }

    #[test]
    fn non_transient_errors_fail_immediately() {
        let mut r = Flaky {
            inner: Cursor::new(vec![0u8; 8]),
            fail: 1,
            kind: ErrorKind::PermissionDenied,
        };
        let mut buf = [0u8; 8];
        let mut stats = RetryStats::default();
        let err = read_exact_retry(&mut r, &mut buf, &instant(8), &mut stats).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::PermissionDenied);
        assert_eq!(stats.transient_retries, 0);
    }

    #[test]
    fn short_source_is_unexpected_eof() {
        let mut r = Cursor::new(vec![1u8; 4]);
        let mut buf = [0u8; 8];
        let mut stats = RetryStats::default();
        let err =
            read_exact_retry(&mut r, &mut buf, &RetryPolicy::none(), &mut stats).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(450),
            jitter_seed: None,
        };
        let us: Vec<u64> = (0..5).map(|a| p.backoff_for(a).as_micros() as u64).collect();
        assert_eq!(us, vec![100, 200, 400, 450, 450]);
    }

    #[test]
    fn jitter_is_deterministic_and_half_bounded() {
        let p = RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_micros(1000),
            max_backoff: Duration::from_micros(64_000),
            jitter_seed: Some(0xDEADBEEF),
        };
        let q = p; // same seed → same schedule
        for attempt in 0..6 {
            let a = p.backoff_for(attempt);
            let b = q.backoff_for(attempt);
            assert_eq!(a, b, "jittered backoff must be reproducible");
            let base = 1000u64 << attempt;
            let us = a.as_micros() as u64;
            assert!(us >= base / 2 && us < base, "attempt {attempt}: {us}µs");
        }
        // A different seed gives a different schedule (overwhelmingly).
        let r = RetryPolicy {
            jitter_seed: Some(0xFEEDFACE),
            ..p
        };
        assert!((0..6).any(|a| r.backoff_for(a) != p.backoff_for(a)));
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(200), p.max_backoff);
    }
}
