//! Crash-consistent write primitives — the durability layer behind every
//! PaSTRI artifact writer.
//!
//! PaSTRI's target deployment streams ERI blocks onto a parallel file
//! system where jobs are routinely preempted mid-write. This crate gives
//! the writers two complementary tools:
//!
//! * **Whole-file atomic commits** ([`atomic_write`], [`AtomicFile`]):
//!   write to a temp file in the destination directory, fsync it, rename
//!   over the destination, fsync the directory. A crash at any instant
//!   leaves either the old file or the new one — never a torn mix.
//!
//! * **An append-side checkpoint journal** ([`JournalWriter`],
//!   [`Checkpoint`]) for streams that grow over hours: after each batch
//!   of segments is written *and fsync'd*, a fixed-size CRC-protected
//!   record `(segments, values, bytes)` is appended to a sidecar
//!   `<artifact>.journal` file and fsync'd in turn. The last valid
//!   record defines the artifact's *committed prefix*: everything at or
//!   before `bytes` is durable and byte-exact, everything after is
//!   uncommitted and may be truncated away on resume. A torn final
//!   journal record (the crash landed mid-append) fails its CRC and is
//!   ignored, falling back to the previous record.
//!
//! The write ordering — data write, data fsync, journal record, journal
//! fsync — guarantees a checkpoint is only ever visible once the bytes
//! it describes are durable, so recovery never trusts a checkpoint ahead
//! of the data.
//!
//! Sinks are abstracted by [`SyncWrite`] (a `Write` that can fsync), so
//! the fault-injection harness can interpose on every byte and fsync of
//! both the data file and the journal.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use checksum::crc32;

pub mod retry;

pub use retry::{read_exact_retry, RetryPolicy, RetryStats};

/// A byte sink that can force its contents to stable storage.
///
/// `sync` must not return until every byte previously accepted by
/// `write` is durable (for files: `fsync`). In-memory sinks are their
/// own stable storage, so their `sync` is a no-op.
pub trait SyncWrite: Write {
    /// Flushes and forces all written bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl SyncWrite for File {
    fn sync(&mut self) -> io::Result<()> {
        // sync_all (fsync, not fdatasync) so file-size metadata from
        // appends is durable too — a checkpoint must never describe
        // bytes the filesystem could forget.
        timed_fsync(|| self.sync_all())
    }
}

/// Runs one fsync-like operation, recording its count and latency — the
/// single choke point every file sync in the repo funnels through, so
/// `durable.fsyncs` / `durable.fsync_us` see them all.
fn timed_fsync(f: impl FnOnce() -> io::Result<()>) -> io::Result<()> {
    if !telemetry::is_enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let result = f();
    telemetry::counter_add("durable.fsyncs", 1);
    telemetry::observe_us("durable.fsync_us", start.elapsed().as_micros() as u64);
    result
}

impl SyncWrite for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SyncWrite for io::Sink {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<W: SyncWrite + ?Sized> SyncWrite for &mut W {
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// Fsyncs a directory so a rename or unlink inside it is durable.
/// On platforms where directories cannot be opened for sync, this is a
/// best-effort no-op (POSIX systems support it; the repo targets Linux).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => timed_fsync(|| d.sync_all()),
        // Missing or unopenable parent (e.g. rename into cwd ""): the
        // rename itself already succeeded, so don't fail the commit.
        Err(_) => Ok(()),
    }
}

/// The parent directory of `path`, defaulting to `.` for bare names.
fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Atomically replaces `path` with `bytes`: temp file in the same
/// directory, fsync, rename over `path`, directory fsync. A crash leaves
/// either the previous content or the new content, never a prefix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = AtomicFile::create(path)?;
    tmp.write_all(bytes)?;
    tmp.commit()
}

/// A file being written for atomic replacement of its destination.
///
/// Bytes go to `<dest>.tmp-<pid>`; [`commit`](Self::commit) fsyncs and
/// renames it over the destination. Dropping without committing removes
/// the temp file, so an aborted write never leaves debris that could be
/// mistaken for the artifact.
pub struct AtomicFile {
    file: Option<File>,
    tmp_path: PathBuf,
    dest: PathBuf,
}

impl AtomicFile {
    /// Opens a temp file next to `dest` (same filesystem, so the final
    /// rename is atomic).
    pub fn create(dest: &Path) -> io::Result<Self> {
        let mut name = dest.file_name().map_or_else(
            || std::ffi::OsString::from("artifact"),
            std::ffi::OsStr::to_os_string,
        );
        name.push(format!(".tmp-{}", std::process::id()));
        let tmp_path = parent_of(dest).join(name);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        Ok(Self {
            file: Some(file),
            tmp_path,
            dest: dest.to_path_buf(),
        })
    }

    /// Fsyncs the temp file, renames it over the destination, and fsyncs
    /// the directory. After this returns, the new content is durable.
    pub fn commit(mut self) -> io::Result<()> {
        let file = self.file.take().expect("commit consumes the file");
        timed_fsync(|| file.sync_all())?;
        drop(file);
        std::fs::rename(&self.tmp_path, &self.dest)?;
        fsync_dir(&parent_of(&self.dest))
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.as_mut().expect("not committed").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.as_mut().expect("not committed").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

/// Magic + version prefix of a checkpoint journal file.
pub const JOURNAL_MAGIC: [u8; 6] = *b"PSTRJ\x01";
/// Bytes per journal record: segments, values, bytes (u64 LE each) +
/// CRC32 of those 24 bytes.
pub const RECORD_LEN: usize = 28;

/// Sidecar journal path for an artifact: `<artifact>.journal`.
#[must_use]
pub fn journal_path(artifact: &Path) -> PathBuf {
    let mut name = artifact.file_name().map_or_else(
        || std::ffi::OsString::from("artifact"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".journal");
    parent_of(artifact).join(name)
}

/// One durable position in a growing artifact: everything at or before
/// it survives a crash byte-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Segments (stream) or blocks (store) committed.
    pub segments: u64,
    /// Source values (f64s) those segments cover — what a resuming
    /// producer must skip before feeding the writer again.
    pub values: u64,
    /// Artifact byte length at the checkpoint — what recovery truncates
    /// the file to.
    pub bytes: u64,
}

impl Checkpoint {
    fn encode(&self) -> [u8; RECORD_LEN] {
        let mut rec = [0u8; RECORD_LEN];
        rec[..8].copy_from_slice(&self.segments.to_le_bytes());
        rec[8..16].copy_from_slice(&self.values.to_le_bytes());
        rec[16..24].copy_from_slice(&self.bytes.to_le_bytes());
        let crc = crc32(&rec[..24]);
        rec[24..].copy_from_slice(&crc.to_le_bytes());
        rec
    }

    fn decode(rec: &[u8]) -> Option<Checkpoint> {
        if rec.len() != RECORD_LEN {
            return None;
        }
        let stored = u32::from_le_bytes(rec[24..28].try_into().unwrap());
        if crc32(&rec[..24]) != stored {
            return None;
        }
        Some(Checkpoint {
            segments: u64::from_le_bytes(rec[..8].try_into().unwrap()),
            values: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            bytes: u64::from_le_bytes(rec[16..24].try_into().unwrap()),
        })
    }
}

/// Appends checkpoint records, each followed by an fsync, so the journal
/// never claims more than the data file durably holds.
pub struct JournalWriter<J: SyncWrite> {
    sink: J,
    header_written: bool,
}

impl<J: SyncWrite> JournalWriter<J> {
    /// A journal starting from scratch: the magic goes out with the
    /// first record.
    pub fn new(sink: J) -> Self {
        Self {
            sink,
            header_written: false,
        }
    }

    /// A journal being appended to after a crash: the magic is already
    /// on disk, new records extend the existing sequence.
    pub fn resume(sink: J) -> Self {
        Self {
            sink,
            header_written: true,
        }
    }

    /// Durably appends one checkpoint: record write, then fsync. When
    /// this returns, recovery will find `cp` (or a later checkpoint).
    pub fn record(&mut self, cp: Checkpoint) -> io::Result<()> {
        if !self.header_written {
            self.sink.write_all(&JOURNAL_MAGIC)?;
            self.header_written = true;
        }
        self.sink.write_all(&cp.encode())?;
        telemetry::counter_add("durable.checkpoints", 1);
        self.sink.sync()
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> J {
        self.sink
    }
}

/// Scans raw journal bytes for the last valid checkpoint.
///
/// Tolerates exactly the damage a crash can cause: a missing or torn
/// final record (short or failing its CRC) is ignored and the previous
/// record wins. Returns `None` for an empty, headerless, or record-free
/// journal — recovery then treats the artifact as having no committed
/// prefix. Records must be monotonic (a crash cannot reorder appends);
/// scanning stops at the first regression so a corrupt middle record
/// cannot inflate the committed prefix.
#[must_use]
pub fn parse_last_checkpoint(bytes: &[u8]) -> Option<Checkpoint> {
    scan_journal(bytes).0
}

/// Like [`parse_last_checkpoint`], but also returns the byte length of
/// the journal's *valid prefix* (magic + accepted records). A resuming
/// writer truncates the journal to this length before appending, so a
/// torn tail record can never knock later appends out of alignment.
#[must_use]
pub fn scan_journal(bytes: &[u8]) -> (Option<Checkpoint>, usize) {
    let Some(body) = bytes.strip_prefix(JOURNAL_MAGIC.as_slice()) else {
        return (None, 0);
    };
    let mut last: Option<Checkpoint> = None;
    let mut accepted = 0usize;
    for rec in body.chunks(RECORD_LEN) {
        match Checkpoint::decode(rec) {
            Some(cp) => {
                if let Some(prev) = last {
                    if cp.bytes < prev.bytes || cp.segments < prev.segments {
                        break;
                    }
                }
                last = Some(cp);
                accepted += 1;
            }
            // Torn or corrupt record: nothing after it can be trusted.
            None => break,
        }
    }
    (last, JOURNAL_MAGIC.len() + accepted * RECORD_LEN)
}

/// Loads the last valid checkpoint from a journal file. `Ok(None)` when
/// the journal is missing or holds no valid record — both mean "no
/// committed prefix", not an error.
pub fn load_checkpoint(path: &Path) -> io::Result<Option<Checkpoint>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(parse_last_checkpoint(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// A quarantine path for a damaged artifact that never collides with an
/// existing one: `<artifact>.quarantine`, then `.quarantine.1`,
/// `.quarantine.2`, … — the first name not already on disk. Repeated
/// scrub passes therefore never clobber evidence from an earlier pass.
#[must_use]
pub fn fresh_quarantine_path(artifact: &Path) -> PathBuf {
    let mut base = artifact.file_name().map_or_else(
        || std::ffi::OsString::from("artifact"),
        std::ffi::OsStr::to_os_string,
    );
    base.push(".quarantine");
    let dir = parent_of(artifact);
    let first = dir.join(&base);
    if !first.exists() {
        return first;
    }
    for n in 1u64.. {
        let mut name = base.clone();
        name.push(format!(".{n}"));
        let candidate = dir.join(name);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("u64 quarantine suffixes exhausted")
}

/// Durably removes an artifact's journal (after a successful finish):
/// unlink + directory fsync. Missing journal is fine.
pub fn remove_journal(artifact: &Path) -> io::Result<()> {
    let jp = journal_path(artifact);
    match std::fs::remove_file(&jp) {
        Ok(()) => fsync_dir(&parent_of(&jp)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("durable-{}-{name}", std::process::id()))
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = tmp("atomic");
        atomic_write(&path, b"first version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first version");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aborted_atomic_file_leaves_no_debris() {
        let path = tmp("aborted");
        atomic_write(&path, b"keep me").unwrap();
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"half a new ver").unwrap();
            // dropped without commit
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"keep me");
        // No stray temp file next to it.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let strays: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with(&stem) && n.contains(".tmp-")
            })
            .collect();
        assert!(strays.is_empty(), "temp debris: {strays:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_roundtrip_last_record_wins() {
        let mut j = JournalWriter::new(Vec::new());
        for i in 1..=5u64 {
            j.record(Checkpoint {
                segments: i,
                values: i * 100,
                bytes: 6 + i * 37,
            })
            .unwrap();
        }
        let bytes = j.into_inner();
        assert_eq!(bytes.len(), JOURNAL_MAGIC.len() + 5 * RECORD_LEN);
        let cp = parse_last_checkpoint(&bytes).unwrap();
        assert_eq!(cp.segments, 5);
        assert_eq!(cp.values, 500);
        assert_eq!(cp.bytes, 6 + 5 * 37);
    }

    #[test]
    fn torn_tail_record_falls_back() {
        let mut j = JournalWriter::new(Vec::new());
        j.record(Checkpoint { segments: 1, values: 10, bytes: 50 }).unwrap();
        j.record(Checkpoint { segments: 2, values: 20, bytes: 99 }).unwrap();
        let full = j.into_inner();
        // Every torn prefix of the final record must fall back to cp 1;
        // the full journal reads cp 2.
        for cut in 0..RECORD_LEN {
            let torn = &full[..full.len() - RECORD_LEN + cut];
            let cp = parse_last_checkpoint(torn).unwrap();
            assert_eq!(cp.segments, 1, "cut {cut} bytes into final record");
        }
        assert_eq!(parse_last_checkpoint(&full).unwrap().segments, 2);
        // A flipped bit in the tail record also falls back.
        let mut flipped = full.clone();
        let n = flipped.len();
        flipped[n - 10] ^= 0x40;
        assert_eq!(parse_last_checkpoint(&flipped).unwrap().segments, 1);
    }

    #[test]
    fn scan_journal_reports_valid_prefix_length() {
        let mut j = JournalWriter::new(Vec::new());
        j.record(Checkpoint { segments: 1, values: 36, bytes: 60 }).unwrap();
        j.record(Checkpoint { segments: 2, values: 72, bytes: 110 }).unwrap();
        let mut bytes = j.into_inner();
        let clean_len = bytes.len();
        assert_eq!(scan_journal(&bytes).1, clean_len);
        // A torn third record doesn't extend the valid prefix.
        bytes.extend_from_slice(&[0xAB; RECORD_LEN - 5]);
        let (cp, len) = scan_journal(&bytes);
        assert_eq!(cp.unwrap().segments, 2);
        assert_eq!(len, clean_len);
        assert_eq!(scan_journal(b"JUNK").1, 0);
    }

    #[test]
    fn headerless_or_empty_journal_is_none() {
        assert_eq!(parse_last_checkpoint(&[]), None);
        assert_eq!(parse_last_checkpoint(b"JUNKJUNKJUNK"), None);
        assert_eq!(parse_last_checkpoint(&JOURNAL_MAGIC), None);
        // Magic + torn first record: still no committed prefix.
        let mut bytes = JOURNAL_MAGIC.to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        assert_eq!(parse_last_checkpoint(&bytes), None);
    }

    #[test]
    fn regressing_record_stops_the_scan() {
        // A corrupt-but-CRC-valid regression (can only happen through
        // tampering) must not extend the committed prefix.
        let mut j = JournalWriter::new(Vec::new());
        j.record(Checkpoint { segments: 3, values: 30, bytes: 90 }).unwrap();
        j.record(Checkpoint { segments: 1, values: 10, bytes: 40 }).unwrap();
        j.record(Checkpoint { segments: 9, values: 90, bytes: 999 }).unwrap();
        let cp = parse_last_checkpoint(&j.into_inner()).unwrap();
        assert_eq!(cp.segments, 3);
    }

    #[test]
    fn fresh_quarantine_path_never_clobbers() {
        let artifact = tmp("qpath.eristore");
        let first = fresh_quarantine_path(&artifact);
        assert!(first.to_string_lossy().ends_with(".eristore.quarantine"));
        std::fs::write(&first, b"pass one").unwrap();
        let second = fresh_quarantine_path(&artifact);
        assert!(second.to_string_lossy().ends_with(".quarantine.1"));
        std::fs::write(&second, b"pass two").unwrap();
        let third = fresh_quarantine_path(&artifact);
        assert!(third.to_string_lossy().ends_with(".quarantine.2"));
        // Earlier evidence is intact.
        assert_eq!(std::fs::read(&first).unwrap(), b"pass one");
        assert_eq!(std::fs::read(&second).unwrap(), b"pass two");
        let _ = std::fs::remove_file(&first);
        let _ = std::fs::remove_file(&second);
    }

    #[test]
    fn load_checkpoint_missing_file_is_none() {
        assert_eq!(load_checkpoint(&tmp("never-created")).unwrap(), None);
    }

    #[test]
    fn journal_file_lifecycle() {
        let artifact = tmp("artifact.pstrs");
        let jp = journal_path(&artifact);
        assert!(jp.to_string_lossy().ends_with(".pstrs.journal"));
        {
            let f = File::create(&jp).unwrap();
            let mut j = JournalWriter::new(f);
            j.record(Checkpoint { segments: 2, values: 72, bytes: 300 }).unwrap();
        }
        let cp = load_checkpoint(&jp).unwrap().unwrap();
        assert_eq!(cp.bytes, 300);
        // Resume appends to the existing sequence without re-writing magic.
        {
            let f = OpenOptions::new().append(true).open(&jp).unwrap();
            let mut j = JournalWriter::resume(f);
            j.record(Checkpoint { segments: 3, values: 108, bytes: 450 }).unwrap();
        }
        let cp = load_checkpoint(&jp).unwrap().unwrap();
        assert_eq!(cp.segments, 3);
        remove_journal(&artifact).unwrap();
        assert_eq!(load_checkpoint(&jp).unwrap(), None);
        remove_journal(&artifact).unwrap(); // idempotent
    }
}
