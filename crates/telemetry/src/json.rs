//! Minimal JSON reader for telemetry's own output formats.
//!
//! The repo writes JSON by hand (bench files, the line-oriented
//! telemetry export) but `pastri report` and the chrome-trace tests
//! need to read it back — and there is no serde in this build
//! environment. This is a small, strict recursive-descent parser for
//! exactly that round trip: full JSON syntax, numbers as `f64`, no
//! trailing garbage. It is not a general-purpose library; inputs are
//! our own exporters' output or a user-supplied telemetry file where a
//! clear error beats leniency.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer token (no fraction or exponent), kept exact — trace
    /// and span ids use all 64 bits, which `f64` cannot hold.
    Int(i128),
    /// Any other JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are unique; later duplicates win.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other kinds.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one (integers convert with `f64`'s usual
    /// 53-bit rounding).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer — exact for integer tokens
    /// (all 64 bits; trace ids depend on this), rejects negatives and
    /// fractions.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1.8e19 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as a signed integer, exact for integer tokens.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 9.2e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only what our own exporter
                            // emits matters, and it never writes them —
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer tokens stay exact (i128 covers the full u64 id
        // space); anything with a fraction or exponent is a float.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (the inverse
/// of what [`parse`] unescapes). Shared by every exporter so hand-rolled
/// writers cannot drift from the reader.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        // Full-width 64-bit ids survive exactly — f64 would round this.
        assert_eq!(parse("2949826092126892291").unwrap().as_u64(), Some(2949826092126892291));
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f λ";
        let json = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&json).unwrap(), Value::Str(nasty.into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("42 junk").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Value::Str("Aé".into()));
    }
}
