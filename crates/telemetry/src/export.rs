//! Renderers for a [`Snapshot`]: human tree summary, line-oriented
//! JSON (one record per line, re-loadable via [`from_json_lines`]),
//! and Chrome `chrome://tracing` trace events.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::{bucket_bounds, CounterRec, GaugeRec, HistRec, JournalRec, RecKind, Snapshot, SpanRec};

// ---------------------------------------------------------------------------
// Human-readable tree summary
// ---------------------------------------------------------------------------

/// An aggregated node of the rendered span tree: all same-named spans
/// sharing an (aggregated) parent collapse into one line.
struct Node {
    name: String,
    count: u64,
    total_ns: u64,
    is_event: bool,
    children: Vec<Node>,
}

fn aggregate(spans: &[SpanRec], child_ids: &[u64], by_parent: &BTreeMap<u64, Vec<usize>>, by_id: &BTreeMap<u64, usize>) -> Vec<Node> {
    // Group this level's spans by name, preserving first-seen order.
    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for &id in child_ids {
        let s = &spans[by_id[&id]];
        if !groups.contains_key(&s.name) {
            order.push(s.name.clone());
        }
        groups.entry(s.name.clone()).or_default().push(id);
    }
    order
        .into_iter()
        .map(|name| {
            let ids = &groups[&name];
            let mut count = 0u64;
            let mut total_ns = 0u64;
            let mut is_event = true;
            let mut grandchildren: Vec<u64> = Vec::new();
            for &id in ids {
                let s = &spans[by_id[&id]];
                count += 1;
                total_ns += s.dur_ns;
                is_event &= s.kind == RecKind::Event;
                if let Some(kids) = by_parent.get(&id) {
                    grandchildren.extend(kids.iter().map(|&i| spans[i].id));
                }
            }
            Node {
                name,
                count,
                total_ns,
                is_event,
                children: aggregate(spans, &grandchildren, by_parent, by_id),
            }
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn render_nodes(out: &mut String, nodes: &[Node], depth: usize) {
    for n in nodes {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", n.name);
        if n.is_event {
            let _ = writeln!(out, "  {label:<44} {:>8}  (event)", n.count);
        } else {
            let _ = writeln!(out, "  {label:<44} {:>8}  {:>12}", n.count, fmt_ns(n.total_ns));
        }
        render_nodes(out, &n.children, depth + 1);
    }
}

/// Renders the snapshot as an indented span tree (same-named spans under
/// the same parent aggregate into count + total wall time) followed by
/// counters, gauges, and histograms.
#[must_use]
pub fn summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    let by_id: BTreeMap<u64, usize> = snap.spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut by_parent: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<u64> = Vec::new();
    for (i, s) in snap.spans.iter().enumerate() {
        // A parent that was dropped at the cap (or never closed) makes
        // its children roots: the tree must stay renderable.
        if s.parent != 0 && by_id.contains_key(&s.parent) {
            by_parent.entry(s.parent).or_default().push(i);
        } else {
            roots.push(s.id);
        }
    }

    out.push_str("telemetry summary\n");
    if snap.spans.is_empty() {
        out.push_str("  (no spans recorded)\n");
    } else {
        let _ = writeln!(out, "  {:<44} {:>8}  {:>12}", "span", "count", "total");
        let nodes = aggregate(&snap.spans, &roots, &by_parent, &by_id);
        render_nodes(&mut out, &nodes, 0);
    }
    if snap.spans_dropped > 0 {
        let _ = writeln!(
            out,
            "  ({} spans dropped at the {}-record buffer cap — span timeline incomplete; \
counters and histograms remain complete)",
            snap.spans_dropped,
            crate::span_capacity()
        );
    }

    if !snap.counters.is_empty() {
        out.push_str("counters\n");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:<44} {:>16}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges (value / high-water)\n");
        for g in &snap.gauges {
            let _ = writeln!(out, "  {:<44} {:>8} / {:>8}", g.name, g.value, g.max);
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (µs)\n");
        for h in &snap.histograms {
            let avg = if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 };
            let pct = |q: f64| h.percentile_us(q).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<44} n={} avg={avg:.1} p50={} p90={} p99={} min={} max={}",
                h.name,
                h.count,
                pct(0.50),
                pct(0.90),
                pct(0.99),
                h.min,
                h.max
            );
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let (lo, hi) = bucket_bounds(i);
                let bound = match hi {
                    Some(hi) => format!("[{lo}, {hi})"),
                    None => format!("[{lo}, ∞)"),
                };
                let _ = writeln!(out, "    {bound:<20} {n:>10}");
            }
        }
    }
    if !snap.events.is_empty() || !snap.events_dropped.is_empty() {
        out.push_str("journal (most recent last)\n");
        for e in &snap.events {
            let _ = writeln!(
                out,
                "  [{:>6}] +{:<12} {:<28} trace={:016x} a={} b={}",
                e.seq,
                fmt_ns(e.t_ns),
                e.kind,
                e.trace,
                e.a,
                e.b
            );
        }
        for d in &snap.events_dropped {
            let _ = writeln!(
                out,
                "  ({} \"{}\" events dropped at the {}-event journal cap)",
                d.value,
                d.name,
                crate::JOURNAL_CAP
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Line-oriented JSON
// ---------------------------------------------------------------------------

/// Renders the snapshot as line-oriented JSON: one self-describing
/// object per line (`"type"` ∈ meta | span | event | counter | gauge |
/// hist | jevent | jdrop). Order: meta first, then spans by start time,
/// then metrics by name, then journal entries. [`from_json_lines`]
/// inverts this exactly (and still reads version-1 files, whose spans
/// lack the `trace` field — it defaults to 0/untraced).
#[must_use]
pub fn json_lines(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"version\":2,\"spans_dropped\":{}}}",
        snap.spans_dropped
    );
    for s in &snap.spans {
        let ty = match s.kind {
            RecKind::Span => "span",
            RecKind::Event => "event",
        };
        let _ = writeln!(
            out,
            "{{\"type\":\"{ty}\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"trace\":{}}}",
            s.id,
            s.parent,
            json::escape(&s.name),
            s.tid,
            s.start_ns,
            s.dur_ns,
            s.trace
        );
    }
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            json::escape(&c.name),
            c.value
        );
    }
    for g in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{},\"max\":{}}}",
            json::escape(&g.name),
            g.value,
            g.max
        );
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            json::escape(&h.name),
            h.count,
            h.sum,
            h.min,
            h.max,
            buckets.join(",")
        );
    }
    for e in &snap.events {
        let _ = writeln!(
            out,
            "{{\"type\":\"jevent\",\"seq\":{},\"t_ns\":{},\"trace\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.seq,
            e.t_ns,
            e.trace,
            json::escape(&e.kind),
            e.a,
            e.b
        );
    }
    for d in &snap.events_dropped {
        let _ = writeln!(
            out,
            "{{\"type\":\"jdrop\",\"kind\":\"{}\",\"count\":{}}}",
            json::escape(&d.name),
            d.value
        );
    }
    out
}

/// Rebuilds a [`Snapshot`] from [`json_lines`] output (the `pastri
/// report` path). Blank lines are skipped; any malformed line is an
/// error naming its line number.
pub fn from_json_lines(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let bad = |what: &str| format!("line {}: {what}", lineno + 1);
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing \"type\""))?;
        match ty {
            "meta" => {
                snap.spans_dropped = v
                    .get("spans_dropped")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
            }
            "span" | "event" => {
                let field = |k: &str| v.get(k).and_then(Value::as_u64).ok_or_else(|| bad(k));
                snap.spans.push(SpanRec {
                    id: field("id")?,
                    parent: field("parent")?,
                    name: v
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad("name"))?
                        .to_string(),
                    tid: u32::try_from(field("tid")?).map_err(|_| bad("tid"))?,
                    start_ns: field("start_ns")?,
                    dur_ns: field("dur_ns")?,
                    kind: if ty == "span" { RecKind::Span } else { RecKind::Event },
                    // Absent in version-1 files: those spans are untraced.
                    trace: v.get("trace").and_then(Value::as_u64).unwrap_or(0),
                });
            }
            "jevent" => {
                let field = |k: &str| v.get(k).and_then(Value::as_u64).ok_or_else(|| bad(k));
                snap.events.push(JournalRec {
                    seq: field("seq")?,
                    t_ns: field("t_ns")?,
                    trace: field("trace")?,
                    kind: v
                        .get("kind")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad("kind"))?
                        .to_string(),
                    a: field("a")?,
                    b: field("b")?,
                });
            }
            "jdrop" => snap.events_dropped.push(CounterRec {
                name: v
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("kind"))?
                    .to_string(),
                value: v.get("count").and_then(Value::as_u64).ok_or_else(|| bad("count"))?,
            }),
            "counter" => snap.counters.push(CounterRec {
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("name"))?
                    .to_string(),
                value: v.get("value").and_then(Value::as_u64).ok_or_else(|| bad("value"))?,
            }),
            "gauge" => snap.gauges.push(GaugeRec {
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("name"))?
                    .to_string(),
                value: v.get("value").and_then(Value::as_i64).ok_or_else(|| bad("value"))?,
                max: v.get("max").and_then(Value::as_i64).ok_or_else(|| bad("max"))?,
            }),
            "hist" => snap.histograms.push(HistRec {
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("name"))?
                    .to_string(),
                count: v.get("count").and_then(Value::as_u64).ok_or_else(|| bad("count"))?,
                sum: v.get("sum").and_then(Value::as_u64).ok_or_else(|| bad("sum"))?,
                min: v.get("min").and_then(Value::as_u64).ok_or_else(|| bad("min"))?,
                max: v.get("max").and_then(Value::as_u64).ok_or_else(|| bad("max"))?,
                buckets: v
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| bad("buckets"))?
                    .iter()
                    .map(|b| b.as_u64().ok_or_else(|| bad("buckets")))
                    .collect::<Result<_, _>>()?,
            }),
            other => return Err(bad(&format!("unknown record type \"{other}\""))),
        }
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

/// Renders the snapshot as a Chrome trace-event array loadable in
/// `chrome://tracing` / Perfetto: spans become complete (`"X"`) events
/// with microsecond `ts`/`dur`, instants become `"i"` events, and
/// counters are appended as one final `"C"` sample per counter. Each
/// span/instant carries its trace id in `args.trace` so traced requests
/// are searchable in the viewer.
#[must_use]
pub fn chrome(snap: &Snapshot) -> String {
    chrome_with_pid(snap, 1)
}

/// [`chrome`] with an explicit process id — `pastri trace --merge`
/// renders the client snapshot as pid 1 and the server snapshot as
/// pid 2 so the viewer shows one cross-process timeline.
#[must_use]
pub fn chrome_with_pid(snap: &Snapshot, pid: u64) -> String {
    format!("[{}]\n", chrome_events(snap, pid).join(",\n "))
}

/// One merged Chrome trace from several snapshots, each under its own
/// pid (the cross-process timeline `pastri trace --merge` writes).
#[must_use]
pub fn chrome_merged(parts: &[(&Snapshot, u64)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for &(snap, pid) in parts {
        events.extend(chrome_events(snap, pid));
    }
    format!("[{}]\n", events.join(",\n "))
}

fn chrome_events(snap: &Snapshot, pid: u64) -> Vec<String> {
    let mut events: Vec<String> = Vec::with_capacity(snap.spans.len() + snap.counters.len());
    let mut last_ts_us = 0u64;
    for s in &snap.spans {
        let ts = s.start_ns / 1_000;
        last_ts_us = last_ts_us.max(ts + s.dur_ns / 1_000);
        match s.kind {
            RecKind::Span => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"pastri\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"trace\":{}}}}}",
                json::escape(&s.name),
                s.dur_ns / 1_000,
                s.tid,
                s.trace
            )),
            RecKind::Event => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"pastri\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"args\":{{\"trace\":{}}}}}",
                json::escape(&s.name),
                s.tid,
                s.trace
            )),
        }
    }
    for c in &snap.counters {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"pastri\",\"ph\":\"C\",\"ts\":{last_ts_us},\"pid\":{pid},\"tid\":0,\"args\":{{\"value\":{}}}}}",
            json::escape(&c.name),
            c.value
        ));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRec {
                    id: 1,
                    parent: 0,
                    name: "compress.container".into(),
                    tid: 0,
                    start_ns: 1_000,
                    dur_ns: 9_000_000,
                    kind: RecKind::Span,
                    trace: 0xabcd,
                },
                SpanRec {
                    id: 2,
                    parent: 1,
                    name: "compress.block".into(),
                    tid: 0,
                    start_ns: 2_000,
                    dur_ns: 4_000,
                    kind: RecKind::Span,
                    trace: 0xabcd,
                },
                SpanRec {
                    id: 4,
                    parent: 2,
                    name: "watchdog.fire".into(),
                    tid: 0,
                    start_ns: 3_000,
                    dur_ns: 0,
                    kind: RecKind::Event,
                    trace: 0,
                },
                SpanRec {
                    id: 3,
                    parent: 1,
                    name: "compress.block".into(),
                    tid: 0,
                    start_ns: 7_000,
                    dur_ns: 5_000,
                    kind: RecKind::Span,
                    trace: 0xabcd,
                },
            ],
            counters: vec![CounterRec {
                name: "stream.segments_written".into(),
                value: 7,
            }],
            gauges: vec![GaugeRec {
                name: "stream.queue_depth".into(),
                value: 0,
                max: 4,
            }],
            histograms: vec![HistRec {
                name: "durable.fsync_us".into(),
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: {
                    let mut b = vec![0u64; crate::HIST_BUCKETS];
                    b[crate::bucket_of(10)] += 1;
                    b[crate::bucket_of(20)] += 1;
                    b
                },
            }],
            spans_dropped: 0,
            events: vec![JournalRec {
                seq: 3,
                t_ns: 5_000,
                trace: 0xabcd,
                kind: "shed.queue_full".into(),
                a: 2,
                b: 17,
            }],
            events_dropped: vec![CounterRec {
                name: "rpc.retry".into(),
                value: 4,
            }],
        }
    }

    #[test]
    fn summary_aggregates_same_named_children() {
        let text = summary(&sample());
        assert!(text.contains("compress.container"), "{text}");
        // Two block spans fold into one line with count 2 and summed time.
        let block_line = text
            .lines()
            .find(|l| l.contains("compress.block"))
            .expect("block line present");
        assert!(block_line.contains('2'), "{block_line}");
        assert!(block_line.contains("9.000 µs"), "{block_line}");
        assert!(text.contains("stream.segments_written"));
        assert!(text.contains("stream.queue_depth"));
        assert!(text.contains("durable.fsync_us"));
    }

    #[test]
    fn json_lines_round_trip() {
        let snap = sample();
        let text = json_lines(&snap);
        for line in text.lines() {
            json::parse(line).expect("every line is standalone JSON");
        }
        let back = from_json_lines(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_lines_rejects_malformed() {
        assert!(from_json_lines("{\"no\":\"type\"}").is_err());
        assert!(from_json_lines("not json").is_err());
        assert!(from_json_lines("{\"type\":\"span\",\"id\":1}").is_err());
        assert!(from_json_lines("{\"type\":\"mystery\"}").is_err());
        assert!(from_json_lines("{\"type\":\"jevent\",\"seq\":1}").is_err());
    }

    #[test]
    fn from_json_lines_reads_version1_spans_as_untraced() {
        let v1 = "{\"type\":\"meta\",\"version\":1,\"spans_dropped\":0}\n\
{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"old\",\"tid\":0,\"start_ns\":5,\"dur_ns\":9}\n";
        let snap = from_json_lines(v1).expect("version-1 files still load");
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].trace, 0);
    }

    #[test]
    fn summary_prints_percentiles_and_journal() {
        let text = summary(&sample());
        let hist_line = text
            .lines()
            .find(|l| l.contains("durable.fsync_us"))
            .expect("hist line present");
        assert!(hist_line.contains("p50="), "{hist_line}");
        assert!(hist_line.contains("p90="), "{hist_line}");
        assert!(hist_line.contains("p99="), "{hist_line}");
        assert!(text.contains("journal"), "{text}");
        assert!(text.contains("shed.queue_full"), "{text}");
        assert!(text.contains("rpc.retry"), "{text}");
    }

    #[test]
    fn chrome_merged_keeps_pids_distinct_and_traces_searchable() {
        let snap = sample();
        let merged = chrome_merged(&[(&snap, 1), (&snap, 2)]);
        let v = json::parse(&merged).expect("merged trace is one JSON array");
        let events = v.as_array().expect("array");
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Value::as_u64))
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let traced = events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Value::as_u64)
                == Some(0xabcd)
        });
        assert!(traced, "span trace ids present in args");
    }

    #[test]
    fn chrome_export_is_valid_and_monotone() {
        let text = chrome(&sample());
        let v = json::parse(&text).expect("chrome export is one JSON array");
        let events = v.as_array().expect("array");
        assert!(!events.is_empty());
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            assert!(matches!(ph, "X" | "i" | "C"));
            let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
            assert!(ts >= 0.0);
            if ph == "X" {
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(dur >= 0.0, "durations are non-negative");
            }
            assert!(e.get("name").and_then(Value::as_str).is_some());
        }
        // Events are emitted in start order: ts is monotone non-decreasing.
        let ts: Vec<f64> = events
            .iter()
            .map(|e| e.get("ts").and_then(Value::as_f64).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }
}
