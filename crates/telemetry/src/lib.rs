//! Process-global observability runtime for the PaSTRI stack.
//!
//! The paper's whole evaluation (Sec. V) is measurement: per-stage
//! timing, storage breakdowns, parallel scaling. This crate is the
//! measurement layer the reproduction records those numbers with —
//! dependency-free (the build environment has no crates.io access,
//! same constraint as `parity` and `durable`), built from `std`
//! atomics, a monotonic clock, and nothing else.
//!
//! Three primitives:
//!
//! * **Spans** — [`span`] returns a guard that records a wall-time
//!   interval on drop, nested under the innermost open span *on the
//!   same thread* (worker threads start their own span roots; the
//!   summary exporter merges same-named trees, so a parallel compress
//!   still reads as one tree). [`event`] records a zero-length instant.
//! * **Counters / gauges** — [`counter_add`] is a lock-free sharded
//!   monotonic counter (8 cache-padded shards per counter, summed at
//!   snapshot time, so hot-path increments from many threads do not
//!   bounce one cache line). [`gauge_add`]/[`gauge_set`] track a signed
//!   level plus its high-water mark (queue depths).
//! * **Histograms** — [`observe_us`] records into fixed power-of-two
//!   microsecond buckets plus count/sum/min/max (fsync latency).
//!
//! Everything hangs off one global recorder that is **disabled by
//! default**: every instrumentation entry point first does a single
//! relaxed atomic load and returns an inert guard / no-ops when off, so
//! instrumented hot paths cost ~one predictable branch in production
//! (the CI `telemetry` job holds this to <2% of per-block compress
//! time). Enable with [`set_enabled`], harvest with [`snapshot`], and
//! render with the [`export`] module (human tree summary, line-oriented
//! JSON, Chrome `chrome://tracing` trace events). Instrumentation never
//! touches the data path: compressed output is byte-identical whether
//! telemetry is on or off.
//!
//! Names passed to the entry points are `&'static str` by design: the
//! span and counter names are a stable contract (documented in
//! DESIGN.md) that tests and dashboards key on. Unknown names are fine
//! — they intern into a lock-free table on first use — but renaming a
//! documented one is a breaking change.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod export;
pub mod json;

// ---------------------------------------------------------------------------
// Global enable switch + monotonic epoch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the global recorder on? One relaxed atomic load — this is the
/// entire cost every instrumentation site pays when telemetry is off.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global recorder on or off. Spans opened while enabled
/// still record on drop after a disable; sites checked while disabled
/// simply skip. Enabling pins the monotonic epoch on first use.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch(); // pin t=0 before the first span can read it
    }
    ENABLED.store(on, Ordering::SeqCst);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Per-thread identity
// ---------------------------------------------------------------------------

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_IDX: Cell<Option<u32>> = const { Cell::new(None) };
    /// Stack of open span ids on this thread — the top is the parent of
    /// the next span or event started here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_idx() -> u32 {
    THREAD_IDX.with(|c| match c.get() {
        Some(i) => i,
        None => {
            let i = u32::try_from(NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
                .unwrap_or(0);
            c.set(Some(i));
            i
        }
    })
}

// ---------------------------------------------------------------------------
// Trace context: seeded cross-process request correlation
// ---------------------------------------------------------------------------

/// A request's cross-process correlation identity: the 64-bit trace id
/// travels with the request over the wire (the PTRF TracedReadRequest
/// frame) so the server's spans for that request carry the same id as
/// the client's; `span_id` identifies the client-side span that issued
/// the request. Both are non-zero — 0 everywhere means "untraced".
///
/// Ids are a pure function of a session seed and a per-process request
/// counter ([`trace_ids`]) — no clocks, no ambient entropy — so a
/// seeded run produces the same id sequence on every repeat and at any
/// thread count, which is what the trace-determinism tests and
/// BENCH_obs.json hold the stack to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Request-scoped correlation id shared by every process that
    /// touches the request.
    pub trace_id: u64,
    /// Id of the span that originated the request (client side).
    pub span_id: u64,
}

/// Local splitmix64 (this crate is dependency-free by design; the same
/// generator exists in `durable::retry` but cannot be imported here).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Pure trace/span id derivation: the `n`-th trace minted under `seed`.
/// Deterministic and collision-resistant enough for correlation (ids
/// are forced non-zero so they never collide with "untraced").
#[must_use]
pub fn trace_ids(seed: u64, n: u64) -> TraceContext {
    let mut trace_id = splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if trace_id == 0 {
        trace_id = 0x7061_5374_7269; // "paStri", never naturally minted
    }
    let mut span_id = splitmix64(trace_id ^ 0x6f62_735f_7370_616e);
    if span_id == 0 {
        span_id = 1;
    }
    TraceContext { trace_id, span_id }
}

static TRACE_SEED: AtomicU64 = AtomicU64::new(0);
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Seeds the trace-id generator and resets its request counter, so the
/// next [`new_trace`] is trace 0 of `seed`. The CLI calls this with the
/// run's `--seed` before issuing requests.
pub fn set_trace_seed(seed: u64) {
    TRACE_SEED.store(seed, Ordering::SeqCst);
    TRACE_COUNTER.store(0, Ordering::SeqCst);
}

/// Mints the next trace context under the current seed (seed 0 until
/// [`set_trace_seed`] is called — still deterministic, just a fixed
/// default stream).
#[must_use]
pub fn new_trace() -> TraceContext {
    let seed = TRACE_SEED.load(Ordering::Relaxed);
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    trace_ids(seed, n)
}

thread_local! {
    /// The trace context every span/event/journal entry recorded on
    /// this thread is stamped with.
    static CURRENT_TRACE: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context currently installed on this thread, if any.
#[must_use]
pub fn current_trace() -> Option<TraceContext> {
    CURRENT_TRACE.with(Cell::get)
}

/// Installs `ctx` as this thread's current trace until the returned
/// guard drops (the previous context, if any, is restored). The server
/// transport wraps request handling in this so every span recorded
/// while serving carries the client's trace id. Works whether or not
/// the recorder is enabled — adoption must not depend on local state.
#[must_use = "the trace context is uninstalled when this guard drops"]
pub fn push_trace(ctx: TraceContext) -> TraceGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(Some(ctx)));
    TraceGuard { prev }
}

/// RAII handle restoring the previously-installed trace context; see
/// [`push_trace`].
pub struct TraceGuard {
    prev: Option<TraceContext>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_TRACE.with(|c| c.set(prev));
    }
}

fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(Cell::get).map_or(0, |t| t.trace_id)
}

// ---------------------------------------------------------------------------
// Lock-free name-interning table
// ---------------------------------------------------------------------------

/// Number of value shards per counter. Eight padded cache lines keeps
/// concurrent increments from different threads off each other's line
/// without bloating the table.
const SHARDS: usize = 8;
const TABLE_CAP: usize = 256; // power of two; far above the ~40 contract names

struct Entry<V> {
    name: &'static str,
    value: V,
}

/// Open-addressed hash table of `name → value` where insertion is a
/// single CAS on the slot pointer and lookups are acquire loads: no
/// locks anywhere on the metric hot path. Entries are leaked on insert
/// (they live for the process — `reset` zeroes values in place).
struct Table<V> {
    slots: [AtomicPtr<Entry<V>>; TABLE_CAP],
}

impl<V: Default> Table<V> {
    const fn new() -> Self {
        Self {
            slots: [const { AtomicPtr::new(ptr::null_mut()) }; TABLE_CAP],
        }
    }

    /// Finds `name`'s entry, inserting a default-valued one on first
    /// use. Returns `None` only if the table is full (collisions wrapped
    /// all the way around), which drops the metric rather than blocking.
    fn intern(&self, name: &'static str) -> Option<&V> {
        let mut i = fnv1a(name.as_bytes()) as usize & (TABLE_CAP - 1);
        for _ in 0..TABLE_CAP {
            let p = self.slots[i].load(Ordering::Acquire);
            if p.is_null() {
                let fresh = Box::into_raw(Box::new(Entry {
                    name,
                    value: V::default(),
                }));
                match self.slots[i].compare_exchange(
                    ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    // We published the entry; it is immortal from here.
                    Ok(_) => return Some(unsafe { &(*fresh).value }),
                    Err(winner) => {
                        // Someone beat us to the slot: free our copy and
                        // fall through to inspect theirs.
                        drop(unsafe { Box::from_raw(fresh) });
                        let e = unsafe { &*winner };
                        if e.name == name {
                            return Some(&e.value);
                        }
                    }
                }
            } else {
                let e = unsafe { &*p };
                if e.name == name {
                    return Some(&e.value);
                }
            }
            i = (i + 1) & (TABLE_CAP - 1);
        }
        None
    }

    /// All live entries, in slot order.
    fn iter(&self) -> impl Iterator<Item = (&'static str, &V)> + '_ {
        self.slots.iter().filter_map(|s| {
            let p = s.load(Ordering::Acquire);
            if p.is_null() {
                None
            } else {
                let e = unsafe { &*p };
                Some((e.name, &e.value))
            }
        })
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Metric value types
// ---------------------------------------------------------------------------

/// One cache line per shard so concurrent adders don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[derive(Default)]
struct CounterVal {
    shards: [PaddedU64; SHARDS],
}

impl CounterVal {
    fn add(&self, delta: u64) {
        let shard = thread_idx() as usize % SHARDS;
        self.shards[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn zero(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Default)]
struct GaugeVal {
    value: AtomicI64,
    max: AtomicI64,
}

impl GaugeVal {
    fn add(&self, delta: i64) {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(new, Ordering::Relaxed);
    }

    fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn zero(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Power-of-two buckets: bucket 0 is `0 µs`, bucket i ≥ 1 holds values
/// in `[2^(i-1), 2^i)` µs, the last bucket is open-ended.
pub const HIST_BUCKETS: usize = 32;

struct HistVal {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistVal {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }
}

impl HistVal {
    fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Bucket index for a microsecond value (shared with exporters so the
/// rendered bounds match the recorded ones).
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive-exclusive microsecond bounds of bucket `i`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
    match i {
        0 => (0, Some(1)),
        _ if i == HIST_BUCKETS - 1 => (1 << (i - 1), None),
        _ => (1 << (i - 1), Some(1 << i)),
    }
}

static COUNTERS: Table<CounterVal> = Table::new();
static GAUGES: Table<GaugeVal> = Table::new();
static HISTS: Table<HistVal> = Table::new();

// ---------------------------------------------------------------------------
// Span storage
// ---------------------------------------------------------------------------

/// Default cap on buffered span/event records; beyond the effective cap
/// ([`span_capacity`]) new records are counted in
/// [`Snapshot::spans_dropped`] instead of stored, so a pathological run
/// cannot eat unbounded memory. Override with [`set_capacity`] or the
/// `PASTRI_TELEMETRY_CAP` environment variable.
pub const SPAN_CAP: usize = 100_000;
const SPAN_SHARDS: usize = 8;

static CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the span-record cap for this process (0 restores the
/// default resolution: `PASTRI_TELEMETRY_CAP` env, else [`SPAN_CAP`]).
/// Records already buffered are kept even if the new cap is smaller;
/// only future pushes see the new limit.
pub fn set_capacity(cap: usize) {
    CAP_OVERRIDE.store(cap, Ordering::SeqCst);
}

/// The effective span-record cap: [`set_capacity`] override if set,
/// else `PASTRI_TELEMETRY_CAP` from the environment (read once), else
/// [`SPAN_CAP`].
#[must_use]
pub fn span_capacity() -> usize {
    let o = CAP_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    static ENV_CAP: OnceLock<Option<usize>> = OnceLock::new();
    ENV_CAP
        .get_or_init(|| {
            std::env::var("PASTRI_TELEMETRY_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(SPAN_CAP)
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static SPAN_COUNT: AtomicUsize = AtomicUsize::new(0);
static SPANS_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Span vs zero-length instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    /// A wall-time interval.
    Span,
    /// A point-in-time marker.
    Event,
}

struct Rec {
    id: u64,
    parent: u64,
    name: &'static str,
    tid: u32,
    start_ns: u64,
    dur_ns: u64,
    kind: RecKind,
    trace: u64,
}

fn span_shards() -> &'static [Mutex<Vec<Rec>>; SPAN_SHARDS] {
    static SHARDED: OnceLock<[Mutex<Vec<Rec>>; SPAN_SHARDS]> = OnceLock::new();
    SHARDED.get_or_init(|| std::array::from_fn(|_| Mutex::new(Vec::new())))
}

fn push_rec(rec: Rec) {
    if SPAN_COUNT.fetch_add(1, Ordering::Relaxed) >= span_capacity() {
        SPAN_COUNT.fetch_sub(1, Ordering::Relaxed);
        SPANS_DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let shard = thread_idx() as usize % SPAN_SHARDS;
    span_shards()[shard]
        .lock()
        .expect("span shard poisoned")
        .push(rec);
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Opens a span named `name`, nested under the innermost open span on
/// this thread. The interval is recorded when the returned guard drops.
/// When the recorder is disabled this returns an inert guard without
/// reading the clock.
#[must_use = "the span ends (and records) when this guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { open: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    SpanGuard {
        open: Some(OpenSpan {
            id,
            parent,
            name,
            start_ns: now_ns(),
            trace: current_trace_id(),
        }),
    }
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    trace: u64,
}

/// RAII handle for an open span; see [`span`].
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let end = now_ns();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // LIFO in the normal case; scan defensively so a guard moved
            // across an unusual drop order can't corrupt the stack.
            if s.last() == Some(&open.id) {
                s.pop();
            } else if let Some(at) = s.iter().rposition(|&x| x == open.id) {
                s.remove(at);
            }
        });
        push_rec(Rec {
            id: open.id,
            parent: open.parent,
            name: open.name,
            tid: thread_idx(),
            start_ns: open.start_ns,
            dur_ns: end.saturating_sub(open.start_ns),
            kind: RecKind::Span,
            trace: open.trace,
        });
    }
}

/// Records a zero-length instant event under the innermost open span on
/// this thread (e.g. a watchdog fire or an injected crash).
pub fn event(name: &'static str) {
    if !is_enabled() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    push_rec(Rec {
        id,
        parent,
        name,
        tid: thread_idx(),
        start_ns: now_ns(),
        dur_ns: 0,
        kind: RecKind::Event,
        trace: current_trace_id(),
    });
}

/// Adds `delta` to the monotonic counter `name` (lock-free, sharded).
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(c) = COUNTERS.intern(name) {
        c.add(delta);
    }
}

/// Moves the signed gauge `name` by `delta`, tracking its high-water
/// mark (use +1/−1 around a queue for live depth + max depth).
pub fn gauge_add(name: &'static str, delta: i64) {
    if !is_enabled() {
        return;
    }
    if let Some(g) = GAUGES.intern(name) {
        g.add(delta);
    }
}

/// Sets the gauge `name` to an absolute level.
pub fn gauge_set(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    if let Some(g) = GAUGES.intern(name) {
        g.set(value);
    }
}

/// Records a microsecond observation into the fixed-bucket histogram
/// `name`.
pub fn observe_us(name: &'static str, micros: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(h) = HISTS.intern(name) {
        h.observe(micros);
    }
}

/// Times a closure and records its wall time into histogram `name`
/// (µs). The closure always runs; the clock is only read when enabled.
pub fn time_us<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    observe_us(name, u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
    out
}

// ---------------------------------------------------------------------------
// Structured event journal
// ---------------------------------------------------------------------------

/// Fixed capacity of the structured event journal: a ring of the most
/// recent operational events (sheds, breaker transitions, retries,
/// repairs, slow requests). When full, the *oldest* entry is dropped
/// and counted per kind in [`Snapshot::events_dropped`] — `top` and
/// `report` always see the newest events plus an honest account of what
/// scrolled off.
pub const JOURNAL_CAP: usize = 1024;

static JOURNAL_SEQ: AtomicU64 = AtomicU64::new(0);
static JOURNAL_DROPS: Table<CounterVal> = Table::new();

struct JEntry {
    seq: u64,
    t_ns: u64,
    trace: u64,
    kind: &'static str,
    a: u64,
    b: u64,
}

fn journal_ring() -> &'static Mutex<VecDeque<JEntry>> {
    static RING: OnceLock<Mutex<VecDeque<JEntry>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(JOURNAL_CAP)))
}

/// Appends a structured event to the bounded journal, stamped with this
/// thread's current trace id. `kind` is a stable-contract name (e.g.
/// `shed.queue_full`, `breaker.open`, `rpc.retry`, `store.repair`);
/// `a`/`b` are kind-specific payload words (block id, attempt number,
/// microseconds — documented per kind in DESIGN.md). No-op while the
/// recorder is disabled.
pub fn journal(kind: &'static str, a: u64, b: u64) {
    if !is_enabled() {
        return;
    }
    let entry = JEntry {
        seq: JOURNAL_SEQ.fetch_add(1, Ordering::Relaxed),
        t_ns: now_ns(),
        trace: current_trace_id(),
        kind,
        a,
        b,
    };
    let mut ring = journal_ring().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if ring.len() >= JOURNAL_CAP {
        if let Some(old) = ring.pop_front() {
            if let Some(c) = JOURNAL_DROPS.intern(old.kind) {
                c.add(1);
            }
        }
    }
    ring.push_back(entry);
}

/// Clears every recorded value: counters/gauges/histograms zero in
/// place, span buffers empty, journal ring empty, drop tallies reset.
/// Interned names stay registered (they are process-immortal). Callers
/// own serialization — the CLI resets once at startup; concurrent tests
/// that enable telemetry must hold a shared lock around reset+assert.
pub fn reset() {
    for (_, c) in COUNTERS.iter() {
        c.zero();
    }
    for (_, g) in GAUGES.iter() {
        g.zero();
    }
    for (_, h) in HISTS.iter() {
        h.zero();
    }
    for shard in span_shards() {
        shard.lock().expect("span shard poisoned").clear();
    }
    SPAN_COUNT.store(0, Ordering::Relaxed);
    SPANS_DROPPED.store(0, Ordering::Relaxed);
    journal_ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    JOURNAL_SEQ.store(0, Ordering::Relaxed);
    for (_, c) in JOURNAL_DROPS.iter() {
        c.zero();
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Unique id (process-global, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Span name (stable-contract taxonomy).
    pub name: String,
    /// Recording thread's small integer id.
    pub tid: u32,
    /// Nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds (0 for events).
    pub dur_ns: u64,
    /// Span or instant event.
    pub kind: RecKind,
    /// Trace id installed on the recording thread when the span opened
    /// (0 = untraced). Shared across processes by the wire protocol —
    /// this is the join key `pastri trace --merge` correlates on.
    pub trace: u64,
}

/// One structured journal event (see [`journal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRec {
    /// Monotonic sequence number (gaps mean nothing was lost — drops
    /// are counted separately; seq is assigned before ring admission).
    pub seq: u64,
    /// Nanoseconds since the recorder epoch.
    pub t_ns: u64,
    /// Trace id current on the recording thread (0 = untraced).
    pub trace: u64,
    /// Stable-contract event kind.
    pub kind: String,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// A counter's name and summed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRec {
    /// Counter name.
    pub name: String,
    /// Sum across shards.
    pub value: u64,
}

/// A gauge's name, current level, and high-water mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRec {
    /// Gauge name.
    pub name: String,
    /// Current level.
    pub value: i64,
    /// Highest level seen since reset.
    pub max: i64,
}

/// A histogram's aggregates and bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRec {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (µs).
    pub sum: u64,
    /// Smallest observation (µs); meaningless when `count == 0`.
    pub min: u64,
    /// Largest observation (µs).
    pub max: u64,
    /// Per-bucket counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
}

impl HistRec {
    /// The value at or below which a fraction `q` of observations fall,
    /// resolved to the histogram's bucket upper bounds (clamped to the
    /// observed max, which is exact). Returns `None` for an empty
    /// histogram. This is the latency-SLO primitive both the soak and
    /// cache-server reports derive p50/p99 from.
    #[must_use]
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return Some(upper.map_or(self.max, |u| u.min(self.max)));
            }
        }
        Some(self.max)
    }
}

/// A point-in-time copy of everything the recorder holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Recorded spans and events, sorted by start time.
    pub spans: Vec<SpanRec>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterRec>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeRec>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistRec>,
    /// Spans/events discarded after the [`span_capacity`] buffer filled.
    pub spans_dropped: u64,
    /// Journal events still in the ring, oldest first.
    pub events: Vec<JournalRec>,
    /// Per-kind counts of journal events dropped at [`JOURNAL_CAP`],
    /// sorted by kind.
    pub events_dropped: Vec<CounterRec>,
}

impl Snapshot {
    /// The summed value of counter `name`, or 0 if never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// All spans/events with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

/// Copies out the recorder's current contents. Does not clear anything;
/// pair with [`reset`] when a fresh window is wanted. Cheap enough to
/// call once per CLI run, not meant for hot loops.
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut spans: Vec<SpanRec> = Vec::with_capacity(SPAN_COUNT.load(Ordering::Relaxed));
    for shard in span_shards() {
        let guard = shard.lock().expect("span shard poisoned");
        spans.extend(guard.iter().map(|r| SpanRec {
            id: r.id,
            parent: r.parent,
            name: r.name.to_string(),
            tid: r.tid,
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
            kind: r.kind,
            trace: r.trace,
        }));
    }
    spans.sort_by_key(|s| (s.start_ns, s.id));

    let mut counters: Vec<CounterRec> = COUNTERS
        .iter()
        .map(|(name, c)| CounterRec {
            name: name.to_string(),
            value: c.sum(),
        })
        .filter(|c| c.value != 0)
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let mut gauges: Vec<GaugeRec> = GAUGES
        .iter()
        .map(|(name, g)| GaugeRec {
            name: name.to_string(),
            value: g.value.load(Ordering::Relaxed),
            max: g.max.load(Ordering::Relaxed),
        })
        .filter(|g| g.value != 0 || g.max != 0)
        .collect();
    gauges.sort_by(|a, b| a.name.cmp(&b.name));

    let mut histograms: Vec<HistRec> = HISTS
        .iter()
        .filter(|(_, h)| h.count.load(Ordering::Relaxed) != 0)
        .map(|(name, h)| HistRec {
            name: name.to_string(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    let events: Vec<JournalRec> = journal_ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|e| JournalRec {
            seq: e.seq,
            t_ns: e.t_ns,
            trace: e.trace,
            kind: e.kind.to_string(),
            a: e.a,
            b: e.b,
        })
        .collect();

    let mut events_dropped: Vec<CounterRec> = JOURNAL_DROPS
        .iter()
        .map(|(name, c)| CounterRec {
            name: name.to_string(),
            value: c.sum(),
        })
        .filter(|c| c.value != 0)
        .collect();
    events_dropped.sort_by(|a, b| a.name.cmp(&b.name));

    Snapshot {
        spans,
        counters,
        gauges,
        histograms,
        spans_dropped: SPANS_DROPPED.load(Ordering::Relaxed),
        events,
        events_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; tests that enable/reset it
    /// must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span("never.recorded");
            counter_add("never.counted", 5);
            gauge_add("never.gauged", 1);
            observe_us("never.observed", 10);
            event("never.evented");
        }
        set_enabled(true);
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_per_thread() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                event("mark");
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let outer = snap.spans_named("outer").next().expect("outer recorded");
        let inner = snap.spans_named("inner").next().expect("inner recorded");
        let mark = snap.spans_named("mark").next().expect("event recorded");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(mark.parent, inner.id);
        assert_eq!(mark.kind, RecKind::Event);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn counters_sum_across_threads() {
        let _g = lock();
        set_enabled(true);
        reset();
        for threads in [1usize, 4] {
            reset();
            let per_thread = 10_000u64;
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        for _ in 0..per_thread {
                            counter_add("test.hammer", 1);
                            gauge_add("test.level", 1);
                            gauge_add("test.level", -1);
                        }
                        observe_us("test.lat", 3);
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.counter("test.hammer"), per_thread * threads as u64);
            let g = snap.gauges.iter().find(|g| g.name == "test.level");
            if let Some(g) = g {
                assert_eq!(g.value, 0, "adds and subs balance");
                assert!(g.max >= 1);
            }
            let h = snap
                .histograms
                .iter()
                .find(|h| h.name == "test.lat")
                .expect("histogram recorded");
            assert_eq!(h.count, threads as u64);
            assert_eq!(h.sum, 3 * threads as u64);
            assert_eq!(h.min, 3);
            assert_eq!(h.max, 3);
            assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        }
        set_enabled(false);
    }

    #[test]
    fn span_tree_is_well_formed_under_concurrency() {
        let _g = lock();
        set_enabled(true);
        reset();
        for threads in [1usize, 4] {
            reset();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        for _ in 0..200 {
                            let _a = span("t.outer");
                            let _b = span("t.inner");
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.spans.len(), 400 * threads);
            assert_eq!(snap.spans_dropped, 0);
            let ids: std::collections::HashSet<u64> = snap.spans.iter().map(|s| s.id).collect();
            assert_eq!(ids.len(), snap.spans.len(), "ids unique");
            let by_id: std::collections::HashMap<u64, &SpanRec> =
                snap.spans.iter().map(|s| (s.id, s)).collect();
            for s in &snap.spans {
                if s.parent != 0 {
                    let p = by_id[&s.parent];
                    assert_eq!(p.tid, s.tid, "nesting never crosses threads");
                    assert!(s.start_ns >= p.start_ns);
                    assert!(s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns);
                }
            }
            // Every t.inner nests in a t.outer.
            for s in snap.spans_named("t.inner") {
                assert_eq!(by_id[&s.parent].name, "t.outer");
            }
        }
        set_enabled(false);
    }

    #[test]
    fn span_cap_drops_but_counts() {
        let _g = lock();
        set_enabled(true);
        reset();
        // Fill the buffer past the cap with cheap events.
        let cap = span_capacity();
        for _ in 0..(cap + 50) {
            event("cap.filler");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans.len(), cap);
        assert_eq!(snap.spans_dropped, 50);
        reset();
        assert_eq!(snapshot().spans.len(), 0);
    }

    #[test]
    fn gauge_set_tracks_high_water() {
        let _g = lock();
        set_enabled(true);
        reset();
        gauge_set("g.depth", 3);
        gauge_set("g.depth", 7);
        gauge_set("g.depth", 2);
        let snap = snapshot();
        set_enabled(false);
        let g = snap.gauges.iter().find(|g| g.name == "g.depth").unwrap();
        assert_eq!(g.value, 2);
        assert_eq!(g.max, 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            if i > 0 && i < HIST_BUCKETS - 1 {
                assert_eq!(bucket_of(lo), i);
                assert_eq!(bucket_of(hi.unwrap() - 1), i);
            }
        }
    }

    #[test]
    fn trace_ids_are_pure_and_nonzero() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for n in 0..64u64 {
                let a = trace_ids(seed, n);
                let b = trace_ids(seed, n);
                assert_eq!(a, b, "pure function of (seed, n)");
                assert_ne!(a.trace_id, 0);
                assert_ne!(a.span_id, 0);
            }
        }
        // Distinct requests get distinct traces, distinct seeds distinct streams.
        assert_ne!(trace_ids(7, 0).trace_id, trace_ids(7, 1).trace_id);
        assert_ne!(trace_ids(7, 0).trace_id, trace_ids(8, 0).trace_id);
    }

    #[test]
    fn push_trace_stamps_spans_and_restores_previous() {
        let _g = lock();
        set_enabled(true);
        reset();
        let outer_ctx = trace_ids(99, 0);
        let inner_ctx = trace_ids(99, 1);
        {
            let _t = push_trace(outer_ctx);
            assert_eq!(current_trace(), Some(outer_ctx));
            let _a = span("tr.outer");
            {
                let _t2 = push_trace(inner_ctx);
                event("tr.marked");
            }
            assert_eq!(current_trace(), Some(outer_ctx), "previous context restored");
        }
        assert_eq!(current_trace(), None);
        let _untraced = span("tr.bare");
        drop(_untraced);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.spans_named("tr.outer").next().unwrap().trace, outer_ctx.trace_id);
        assert_eq!(snap.spans_named("tr.marked").next().unwrap().trace, inner_ctx.trace_id);
        assert_eq!(snap.spans_named("tr.bare").next().unwrap().trace, 0);
    }

    #[test]
    fn seeded_trace_stream_is_deterministic() {
        let _g = lock();
        set_trace_seed(1234);
        let first: Vec<TraceContext> = (0..8).map(|_| new_trace()).collect();
        set_trace_seed(1234);
        let second: Vec<TraceContext> = (0..8).map(|_| new_trace()).collect();
        assert_eq!(first, second, "same seed ⇒ same id sequence");
        set_trace_seed(0);
    }

    #[test]
    fn journal_ring_drops_oldest_and_counts_per_kind() {
        let _g = lock();
        set_enabled(true);
        reset();
        for i in 0..(JOURNAL_CAP as u64 + 10) {
            journal("j.filler", i, 0);
        }
        journal("j.rare", 1, 2);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.events.len(), JOURNAL_CAP);
        // Oldest entries scrolled off; the newest are intact.
        assert_eq!(snap.events.last().unwrap().kind, "j.rare");
        assert_eq!(snap.events.last().unwrap().a, 1);
        assert_eq!(snap.events.last().unwrap().b, 2);
        let drops = snap
            .events_dropped
            .iter()
            .find(|c| c.name == "j.filler")
            .expect("dropped kind counted");
        assert_eq!(drops.value, 11, "10 overflow + 1 displaced by j.rare");
        reset();
        let clean = snapshot();
        assert!(clean.events.is_empty());
        assert!(clean.events_dropped.is_empty());
    }

    #[test]
    fn journal_entries_carry_current_trace() {
        let _g = lock();
        set_enabled(true);
        reset();
        let ctx = trace_ids(5, 0);
        {
            let _t = push_trace(ctx);
            journal("j.traced", 7, 8);
        }
        journal("j.untraced", 0, 0);
        set_enabled(false);
        let snap = snapshot();
        let traced = snap.events.iter().find(|e| e.kind == "j.traced").unwrap();
        assert_eq!(traced.trace, ctx.trace_id);
        let untraced = snap.events.iter().find(|e| e.kind == "j.untraced").unwrap();
        assert_eq!(untraced.trace, 0);
    }

    #[test]
    fn span_capacity_is_configurable() {
        let _g = lock();
        let env_default = std::env::var("PASTRI_TELEMETRY_CAP").is_err();
        if env_default {
            assert_eq!(span_capacity(), SPAN_CAP, "default resolution");
        }
        set_capacity(100);
        assert_eq!(span_capacity(), 100);
        set_enabled(true);
        reset();
        for _ in 0..150 {
            event("cap.small");
        }
        let snap = snapshot();
        set_enabled(false);
        set_capacity(0); // restore default before any assert can bail
        assert_eq!(snap.spans.len(), 100);
        assert_eq!(snap.spans_dropped, 50);
        if env_default {
            assert_eq!(span_capacity(), SPAN_CAP);
        }
        reset();
    }

    #[test]
    fn time_us_runs_closure_in_both_states() {
        let _g = lock();
        set_enabled(false);
        assert_eq!(time_us("t.noop", || 41 + 1), 42);
        set_enabled(true);
        reset();
        assert_eq!(time_us("t.timed", || 42), 42);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.histograms.iter().find(|h| h.name == "t.timed").unwrap().count, 1);
    }
}
