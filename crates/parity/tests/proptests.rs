//! Property tests for the Reed–Solomon erasure code: for any group
//! shape, shard length, and erasure pattern of size ≤ parity, the
//! original shards come back byte-exact; one erasure past the parity
//! budget fails loudly with `TooManyErasures`.

use parity::{ParityError, ReedSolomon};
use proptest::prelude::*;

fn erase(
    total: usize,
    count: usize,
    seed: u64,
) -> Vec<usize> {
    let mut picked = Vec::new();
    let mut state = seed | 1;
    while picked.len() < count {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let idx = (state as usize) % total;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_erasure_pattern_within_budget_reconstructs_exactly(
        d in 1usize..=12,
        p in 1usize..=4,
        len in 0usize..200,
        erasures_seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..2400),
    ) {
        let rs = ReedSolomon::new(d, p).unwrap();
        let shards: Vec<Vec<u8>> = (0..d)
            .map(|i| {
                (0..len)
                    .map(|k| data.get(i * len + k).copied().unwrap_or((i + k) as u8))
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(Vec::as_slice).collect();
        let parity = rs.encode(&refs).unwrap();

        for count in 0..=p {
            let mut slots: Vec<Option<Vec<u8>>> = shards
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            for idx in erase(d + p, count, erasures_seed ^ count as u64) {
                slots[idx] = None;
            }
            rs.reconstruct(&mut slots).unwrap();
            for (i, s) in shards.iter().enumerate() {
                prop_assert_eq!(slots[i].as_ref().unwrap(), s);
            }
            for (j, s) in parity.iter().enumerate() {
                prop_assert_eq!(slots[d + j].as_ref().unwrap(), s);
            }
        }
    }

    #[test]
    fn one_past_the_budget_fails_loudly(
        d in 2usize..=10,
        p in 1usize..=3,
        len in 1usize..64,
        erasures_seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(d, p).unwrap();
        let shards: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..len).map(|k| (i * 31 + k * 7) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(Vec::as_slice).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut slots: Vec<Option<Vec<u8>>> = shards
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        for idx in erase(d + p, p + 1, erasures_seed) {
            slots[idx] = None;
        }
        prop_assert_eq!(
            rs.reconstruct(&mut slots),
            Err(ParityError::TooManyErasures { present: d - 1, needed: d })
        );
    }

    #[test]
    fn parity_is_deterministic(
        d in 1usize..=8,
        len in 0usize..100,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(d, 2).unwrap();
        let shards: Vec<Vec<u8>> = (0..d)
            .map(|i| {
                (0..len)
                    .map(|k| (seed.wrapping_mul(i as u64 + 1).wrapping_add(k as u64) >> 5) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(rs.encode(&refs).unwrap(), rs.encode(&refs).unwrap());
    }
}
