//! GF(256) Reed–Solomon erasure coding for PaSTRI parity groups.
//!
//! The v3 container groups compressed blocks into parity groups and
//! stores a handful of erasure shards per group, so that any `k` damaged
//! blocks (where `k` = the parity shard count) can be reconstructed
//! byte-exactly from the survivors. This crate is the arithmetic core:
//! systematic Reed–Solomon over GF(2^8) with the 0x11d polynomial and a
//! Cauchy coding matrix, implemented dependency-free per the repo's
//! vendored-compat policy.
//!
//! Why Cauchy rather than the textbook Vandermonde construction: every
//! square submatrix of a Cauchy matrix is invertible, so the extended
//! matrix `[I; C]` is MDS by construction — *any* `d` surviving shards
//! out of `d + p` suffice — with no per-parameter validation needed.
//!
//! Erasure-only decoding: callers know *which* shards are damaged
//! (PaSTRI stores a CRC32 per block and per shard), so decoding is a
//! single `d × d` Gauss–Jordan inversion over the surviving rows, not a
//! full error-locating decoder.

/// Log/antilog tables for GF(2^8) with the primitive polynomial
/// x^8 + x^4 + x^3 + x^2 + 1 (0x11d); α = 2 is primitive.
const EXP: [u8; 512] = GF_TABLES.0;
const LOG: [u8; 256] = GF_TABLES.1;

const GF_TABLES: ([u8; 512], [u8; 256]) = build_tables();

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[log a + log b]` never needs a mod 255.
    while i < 512 {
        exp[i] = exp[i - 255];
        i += 1;
    }
    (exp, log)
}

/// GF(2^8) multiplication.
#[inline]
#[must_use]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// GF(2^8) multiplicative inverse. Panics on 0 (which has none).
#[inline]
#[must_use]
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Why encoding or reconstruction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityError {
    /// `data + parity` shards exceed the GF(256) limit of 255.
    TooManyShards {
        /// Requested data + parity shard count.
        total: usize,
    },
    /// A shard's length differs from the others in its group.
    ShardLengthMismatch,
    /// The shard array handed to [`ReedSolomon::reconstruct`] does not
    /// have `data + parity` entries.
    WrongShardCount {
        /// Entries expected (`data + parity`).
        expected: usize,
        /// Entries received.
        actual: usize,
    },
    /// Fewer than `data` shards survive: the erasures exceed the parity
    /// budget and the group is unrecoverable.
    TooManyErasures {
        /// Shards still present.
        present: usize,
        /// Shards needed (`data`).
        needed: usize,
    },
}

impl std::fmt::Display for ParityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParityError::TooManyShards { total } => {
                write!(f, "{total} shards exceed the GF(256) limit of 255")
            }
            ParityError::ShardLengthMismatch => write!(f, "shard lengths differ within a group"),
            ParityError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} shard slots, got {actual}")
            }
            ParityError::TooManyErasures { present, needed } => write!(
                f,
                "only {present} of the {needed} shards needed to reconstruct survive"
            ),
        }
    }
}

impl std::error::Error for ParityError {}

/// A systematic Reed–Solomon code over GF(2^8): `data` payload shards
/// protected by `parity` erasure shards. Any `data` survivors out of the
/// `data + parity` total reconstruct the rest exactly.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
}

impl ReedSolomon {
    /// A code for `data` payload shards and `parity` erasure shards.
    /// `data ≥ 1`, `parity ≥ 1`, and `data + parity ≤ 255`.
    pub fn new(data: usize, parity: usize) -> Result<Self, ParityError> {
        assert!(data >= 1 && parity >= 1, "need at least one shard each way");
        if data + parity > 255 {
            return Err(ParityError::TooManyShards {
                total: data + parity,
            });
        }
        Ok(Self { data, parity })
    }

    /// Payload shard count.
    #[must_use]
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Parity shard count (= erasures tolerated).
    #[must_use]
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Cauchy coefficient for parity row `j`, data column `i`:
    /// `1 / (x_j ⊕ y_i)` with `x_j = data + j`, `y_i = i`. The `x` and
    /// `y` points are disjoint, so the denominator is never zero.
    #[inline]
    fn coef(&self, j: usize, i: usize) -> u8 {
        gf_inv(((self.data + j) as u8) ^ (i as u8))
    }

    /// Computes the `parity` shards for equal-length `shards` (one slice
    /// per data shard). Returns the parity shards, each the same length.
    pub fn encode(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>, ParityError> {
        if shards.len() != self.data {
            return Err(ParityError::WrongShardCount {
                expected: self.data,
                actual: shards.len(),
            });
        }
        let len = shards.first().map_or(0, |s| s.len());
        if shards.iter().any(|s| s.len() != len) {
            return Err(ParityError::ShardLengthMismatch);
        }
        let mut out = vec![vec![0u8; len]; self.parity];
        for (j, p) in out.iter_mut().enumerate() {
            for (i, s) in shards.iter().enumerate() {
                let c = self.coef(j, i);
                if c == 0 {
                    continue;
                }
                let ct = LOG[c as usize] as usize;
                for (pb, &sb) in p.iter_mut().zip(s.iter()) {
                    if sb != 0 {
                        *pb ^= EXP[ct + LOG[sb as usize] as usize];
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reconstructs every missing shard in place. `shards` must hold
    /// `data + parity` entries in order (data first); `None` marks an
    /// erasure, and all present shards must share one length. Fails with
    /// [`ParityError::TooManyErasures`] when fewer than `data` survive —
    /// the group is then unrecoverable and the caller falls back to the
    /// skip/salvage path.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ParityError> {
        let total = self.data + self.parity;
        if shards.len() != total {
            return Err(ParityError::WrongShardCount {
                expected: total,
                actual: shards.len(),
            });
        }
        let mut len = None;
        for s in shards.iter().flatten() {
            match len {
                None => len = Some(s.len()),
                Some(l) if l != s.len() => return Err(ParityError::ShardLengthMismatch),
                _ => {}
            }
        }
        let present = shards.iter().filter(|s| s.is_some()).count();
        if present < self.data {
            return Err(ParityError::TooManyErasures {
                present,
                needed: self.data,
            });
        }
        if shards.iter().take(self.data).all(|s| s.is_some()) {
            // No data erasures: only parity needs regenerating.
            return self.refill_parity(shards, len.unwrap_or(0));
        }
        let len = len.unwrap_or(0);

        // Rows of the extended matrix [I; C] for the first `data`
        // surviving shards; solving M · orig = surv recovers the data.
        let d = self.data;
        let mut matrix = vec![0u8; d * d];
        let mut survivors: Vec<usize> = Vec::with_capacity(d);
        for (idx, s) in shards.iter().enumerate() {
            if s.is_some() {
                survivors.push(idx);
                if survivors.len() == d {
                    break;
                }
            }
        }
        for (r, &idx) in survivors.iter().enumerate() {
            if idx < d {
                matrix[r * d + idx] = 1;
            } else {
                for i in 0..d {
                    matrix[r * d + i] = self.coef(idx - d, i);
                }
            }
        }
        let inv = invert(&mut matrix, d).expect("Cauchy-extended submatrix is invertible");

        // orig[i] = Σ_r inv[i][r] · surv[r], column by column over bytes.
        let mut recovered = vec![vec![0u8; len]; d];
        for (i, out) in recovered.iter_mut().enumerate() {
            for (r, &idx) in survivors.iter().enumerate() {
                let c = inv[i * d + r];
                if c == 0 {
                    continue;
                }
                let ct = LOG[c as usize] as usize;
                let src = shards[idx].as_ref().expect("survivor present");
                for (ob, &sb) in out.iter_mut().zip(src.iter()) {
                    if sb != 0 {
                        *ob ^= EXP[ct + LOG[sb as usize] as usize];
                    }
                }
            }
        }
        for (i, rec) in recovered.into_iter().enumerate() {
            if shards[i].is_none() {
                shards[i] = Some(rec);
            } else {
                debug_assert_eq!(shards[i].as_deref(), Some(rec.as_slice()));
            }
        }
        self.refill_parity(shards, len)
    }

    /// Regenerates any missing parity shards from the (now complete)
    /// data shards.
    fn refill_parity(&self, shards: &mut [Option<Vec<u8>>], len: usize) -> Result<(), ParityError> {
        if shards[self.data..].iter().all(|s| s.is_some()) {
            return Ok(());
        }
        let _ = len;
        let data_refs: Vec<&[u8]> = shards[..self.data]
            .iter()
            .map(|s| s.as_deref().expect("data complete"))
            .collect();
        let parity = self.encode(&data_refs)?;
        for (slot, p) in shards[self.data..].iter_mut().zip(parity) {
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        Ok(())
    }
}

/// Gauss–Jordan inversion of an `n × n` matrix over GF(2^8). Returns
/// `None` if singular (cannot happen for Cauchy-extended submatrices;
/// kept as a checked path rather than UB on a logic error).
fn invert(m: &mut [u8], n: usize) -> Option<Vec<u8>> {
    let mut inv = vec![0u8; n * n];
    for i in 0..n {
        inv[i * n + i] = 1;
    }
    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| m[r * n + col] != 0)?;
        if pivot != col {
            for k in 0..n {
                m.swap(pivot * n + k, col * n + k);
                inv.swap(pivot * n + k, col * n + k);
            }
        }
        let p = m[col * n + col];
        let pinv = gf_inv(p);
        for k in 0..n {
            m[col * n + k] = gf_mul(m[col * n + k], pinv);
            inv[col * n + k] = gf_mul(inv[col * n + k], pinv);
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[r * n + col];
            if f == 0 {
                continue;
            }
            for k in 0..n {
                let a = gf_mul(f, m[col * n + k]);
                let b = gf_mul(f, inv[col * n + k]);
                m[r * n + k] ^= a;
                inv[r * n + k] ^= b;
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_data(d: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        (0..d).map(|_| (0..len).map(|_| next()).collect()).collect()
    }

    #[test]
    fn gf_field_axioms() {
        // α = 2 generates the multiplicative group: EXP hits every
        // nonzero byte exactly once per cycle.
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // Known product under 0x11d: 2 · 128 = 0x11d mod x^8 = 0x1d.
        assert_eq!(gf_mul(2, 0x80), 0x1d);
        // Commutativity + associativity spot checks.
        for (a, b, c) in [(3u8, 7u8, 200u8), (91, 180, 255), (16, 16, 16)] {
            assert_eq!(gf_mul(a, b), gf_mul(b, a));
            assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
        }
    }

    #[test]
    fn encode_then_reconstruct_every_single_erasure() {
        let rs = ReedSolomon::new(8, 2).unwrap();
        let data = shard_data(8, 100, 42);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = rs.encode(&refs).unwrap();
        for erased in 0..10 {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            shards[erased] = None;
            rs.reconstruct(&mut shards).unwrap();
            for (i, d) in data.iter().enumerate() {
                assert_eq!(shards[i].as_ref().unwrap(), d, "erased={erased} shard={i}");
            }
            for (j, p) in parity.iter().enumerate() {
                assert_eq!(shards[8 + j].as_ref().unwrap(), p, "erased={erased} parity={j}");
            }
        }
    }

    #[test]
    fn reconstructs_every_pair_of_erasures() {
        let rs = ReedSolomon::new(6, 2).unwrap();
        let data = shard_data(6, 37, 7);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = rs.encode(&refs).unwrap();
        for a in 0..8 {
            for b in (a + 1)..8 {
                let mut shards: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (i, d) in data.iter().enumerate() {
                    assert_eq!(shards[i].as_ref().unwrap(), d, "erased ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn one_more_erasure_than_parity_fails_loudly() {
        let rs = ReedSolomon::new(5, 2).unwrap();
        let data = shard_data(5, 20, 3);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[2] = None;
        shards[6] = None;
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(ParityError::TooManyErasures {
                present: 4,
                needed: 5
            })
        );
    }

    #[test]
    fn single_data_shard_groups_work() {
        // The tail group of a container can hold one block.
        let rs = ReedSolomon::new(1, 2).unwrap();
        let data = shard_data(1, 55, 9);
        let parity = rs.encode(&[&data[0]]).unwrap();
        let mut shards = vec![None, Some(parity[0].clone()), Some(parity[1].clone())];
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &data[0]);
    }

    #[test]
    fn empty_shards_roundtrip() {
        let rs = ReedSolomon::new(3, 1).unwrap();
        let parity = rs.encode(&[&[], &[], &[]]).unwrap();
        assert_eq!(parity, vec![Vec::<u8>::new()]);
        let mut shards = vec![None, Some(vec![]), Some(vec![]), Some(vec![])];
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &Vec::<u8>::new());
    }

    #[test]
    fn shard_limit_enforced() {
        assert!(matches!(
            ReedSolomon::new(254, 2),
            Err(ParityError::TooManyShards { total: 256 })
        ));
        assert!(ReedSolomon::new(253, 2).is_ok());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(
            rs.encode(&[&[1, 2], &[3]]),
            Err(ParityError::ShardLengthMismatch)
        );
        let mut shards = vec![Some(vec![1, 2]), None, Some(vec![9])];
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(ParityError::ShardLengthMismatch)
        );
    }

    #[test]
    fn corrupt_shard_marked_as_erasure_recovers_exactly() {
        // The container's per-shard CRC32 turns corruption into erasure:
        // simulate by damaging a shard, then erasing it for reconstruct.
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = shard_data(4, 64, 21);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // "Corrupt" data shard 2 and parity shard 0, then erase both.
        shards[2] = None;
        shards[4] = None;
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[2].as_ref().unwrap(), &data[2]);
    }
}
