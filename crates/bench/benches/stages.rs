//! Criterion micro-benchmarks of PaSTRI's individual pipeline stages and
//! substrates: pattern fitting per metric, ECQ tree encoding, the Boys
//! function, and analytic ERI block evaluation. These quantify the
//! paper's per-stage cost claims (e.g. "ER has the lowest computation
//! complexity" among the scaling metrics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pastri::{BlockGeometry, EncodingTree, ScalingMetric};
use qchem::basis::{BfConfig, Shell};
use qchem::boys::boys_vec;
use qchem::dataset::EriDataset;
use qchem::md::eri_block;

fn bench_scaling_metrics(c: &mut Criterion) {
    let config = BfConfig::dd_dd();
    let ds = EriDataset::generate_model(config, 50, 7);
    let geom = BlockGeometry::from_dims(config.dims());
    let block = &ds.values[..geom.block_size()];

    let mut group = c.benchmark_group("pattern_fit");
    group.throughput(Throughput::Bytes((block.len() * 8) as u64));
    for metric in ScalingMetric::ALL {
        group.bench_function(BenchmarkId::new("metric", metric.name()), |b| {
            b.iter(|| pastri::fit_pattern(metric, &geom, block));
        });
    }
    group.finish();
}

fn bench_encoding_trees(c: &mut Criterion) {
    // A representative ECQ stream: mostly zeros, some ±1, a thin tail.
    let ecq: Vec<i64> = (0..100_000)
        .map(|i| match i % 97 {
            0 => 1,
            1 => -1,
            2 if i % 9409 == 2 => 1000,
            _ => 0,
        })
        .collect();
    let mut group = c.benchmark_group("ecq_encode");
    group.throughput(Throughput::Elements(ecq.len() as u64));
    for tree in EncodingTree::PAPER_TREES {
        group.bench_function(BenchmarkId::new("tree", tree.name()), |b| {
            b.iter(|| {
                let mut w = bitio::BitWriter::new();
                tree.encode_stream(&ecq, 12, &mut w);
                w.into_bytes()
            });
        });
    }
    group.finish();
}

fn bench_boys(c: &mut Criterion) {
    let mut group = c.benchmark_group("boys_function");
    for &x in &[0.5, 20.0, 200.0] {
        group.bench_function(BenchmarkId::new("order12", format!("x={x}")), |b| {
            b.iter(|| boys_vec(12, x));
        });
    }
    group.finish();
}

fn bench_eri_block(c: &mut Criterion) {
    let d1 = Shell {
        center: [0.0, 0.0, 0.0],
        l: 2,
        exps: vec![1.2],
        coefs: vec![1.0],
    };
    let d2 = Shell {
        center: [1.5, 0.5, -0.5],
        l: 2,
        exps: vec![0.9],
        coefs: vec![1.0],
    };
    let mut group = c.benchmark_group("eri_block");
    group.sample_size(20);
    group.bench_function("dd_dd_quartet", |b| {
        b.iter(|| eri_block(&d1, &d2, &d2, &d1));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_metrics,
    bench_encoding_trees,
    bench_boys,
    bench_eri_block
);
criterion_main!(benches);
