//! Criterion micro-benchmarks: end-to-end compression and decompression
//! throughput of PaSTRI, SZ, and ZFP on model ERI data (Fig. 9(c,d)'s
//! measurement, under criterion's statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pastri::{BlockGeometry, Compressor};
use qchem::basis::BfConfig;
use qchem::dataset::EriDataset;

fn bench_compress(c: &mut Criterion) {
    let config = BfConfig::dd_dd();
    let ds = EriDataset::generate_model(config, 200, 42);
    let bytes = (ds.values.len() * 8) as u64;
    let eb = 1e-10;

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);

    let geom = BlockGeometry::from_dims(config.dims());
    group.bench_function(BenchmarkId::new("pastri", "dd_dd"), |b| {
        let comp = Compressor::new(geom, eb);
        b.iter(|| comp.compress(&ds.values));
    });
    group.bench_function(BenchmarkId::new("sz", "dd_dd"), |b| {
        let comp = sz_lossy::SzCompressor::new(eb);
        b.iter(|| comp.compress(&ds.values));
    });
    group.bench_function(BenchmarkId::new("zfp", "dd_dd"), |b| {
        let comp = zfp_lossy::ZfpCompressor::new(eb);
        b.iter(|| comp.compress(&ds.values));
    });
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let config = BfConfig::dd_dd();
    let ds = EriDataset::generate_model(config, 200, 42);
    let bytes = (ds.values.len() * 8) as u64;
    let eb = 1e-10;

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);

    let geom = BlockGeometry::from_dims(config.dims());
    let pastri_bytes = Compressor::new(geom, eb).compress(&ds.values);
    group.bench_function(BenchmarkId::new("pastri", "dd_dd"), |b| {
        b.iter(|| pastri::decompress(&pastri_bytes).unwrap());
    });
    let sz_bytes = sz_lossy::SzCompressor::new(eb).compress(&ds.values);
    group.bench_function(BenchmarkId::new("sz", "dd_dd"), |b| {
        b.iter(|| sz_lossy::decompress(&sz_bytes).unwrap());
    });
    let zfp_bytes = zfp_lossy::ZfpCompressor::new(eb).compress(&ds.values);
    group.bench_function(BenchmarkId::new("zfp", "dd_dd"), |b| {
        b.iter(|| zfp_lossy::decompress(&zfp_bytes).unwrap());
    });
    group.finish();
}

fn bench_lossless(c: &mut Criterion) {
    let config = BfConfig::dd_dd();
    let ds = EriDataset::generate_model(config, 50, 42);
    let bytes = (ds.values.len() * 8) as u64;

    let mut group = c.benchmark_group("lossless");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    group.bench_function("fpc", |b| {
        b.iter(|| lossless::fpc::compress(&ds.values));
    });
    group.bench_function("deflate_like", |b| {
        b.iter(|| lossless::deflate_like::compress_doubles(&ds.values));
    });
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress, bench_lossless);
criterion_main!(benches);
