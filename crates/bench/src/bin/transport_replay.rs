//! Fixed-seed wire-transport replay, emitted as `BENCH_transport.json`.
//!
//! One sequential client reads seeded batches from two replica servers
//! through the deterministic transport fault proxy (every wire fault
//! class in rotation: truncated frames, corrupted frames, dropped
//! connections, stalls past the attempt budget, transient resets),
//! recovering with the bounded retry/hedge state machine. Because the
//! client is sequential, the *entire* run is a pure function of the
//! seed: the report's `tallies` line (requests, blocks, folded value
//! signature) and the per-class proxy fault counts are bit-identical
//! from run to run, machine to machine, and at any `RAYON_NUM_THREADS`
//! — CI diffs them textually. The `timing` section carries the
//! run-varying RTT percentile.
//!
//! `PASTRI_BENCH_SCALE` multiplies the request budget like the other
//! benches. Exits 2 on any lost or value-mismatched block, so CI gates
//! on it exactly like `pastri soak --transport`.

use bench::{bench_scale, print_header, print_row};

fn main() {
    let scale = bench_scale();
    let dir = std::env::temp_dir().join(format!("pastri-bench-transport-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = soak::TransportStormConfig::storm(&dir, 42);
    cfg.clients = 1; // sequential: the whole run is seed-pure
    cfg.requests_per_client = ((64.0 * scale).round() as usize).max(16);
    cfg.scale = 24;
    // A healthy client keeps one connection, so faults only fire on
    // reconnects: fault EVERY connection, capped at one full class
    // rotation per replica (5), which the retry budget (10) plus the
    // first clean reconnect exactly absorbs — all five classes fire on
    // both replicas, then the proxies go transparent.
    cfg.faults.faulty_every = 1;
    cfg.faults.max_faults = 5;

    println!(
        "transport replay — seed {}, 1 client x {} requests over {} blocks, {} replicas, \
         every {} connection faulted (cap {})\n",
        cfg.seed,
        cfg.requests_per_client,
        cfg.scale,
        cfg.replicas,
        cfg.faults.faulty_every,
        cfg.faults.max_faults
    );

    let report = soak::run_transport(&cfg).expect("transport replay run");
    let t = &report.tallies;
    let r = &report.recovery;
    let p = &report.proxy;

    let widths = [28usize, 20];
    print_header(&["metric", "value"], &widths);
    for (name, v) in [
        ("requests planned", t.requests_planned.to_string()),
        ("requests ok", t.requests_ok.to_string()),
        ("blocks requested", t.blocks_requested.to_string()),
        ("blocks served", t.blocks_served.to_string()),
        ("lost blocks", t.lost_blocks.to_string()),
        ("value mismatches", t.value_mismatches.to_string()),
        ("value signature", format!("{:016x}", t.value_sig)),
        ("proxy connections", p.conns.to_string()),
        ("frames truncated", p.truncates.to_string()),
        ("frames corrupted", p.corrupts.to_string()),
        ("connections dropped", p.drops.to_string()),
        ("stalls injected", p.stalls.to_string()),
        ("resets injected", p.resets.to_string()),
        ("client retries", r.retries.to_string()),
        ("client hedges", r.hedges.to_string()),
        ("frame errors seen", r.frame_errors.to_string()),
        ("deadline misses", r.deadline_exceeded.to_string()),
        (
            "rpc p99 (us)",
            report.rpc_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        ),
    ] {
        print_row(&[name.to_string(), v], &widths);
    }

    std::fs::write("BENCH_transport.json", report.to_json(&cfg))
        .expect("writing BENCH_transport.json");
    println!("\nwrote BENCH_transport.json");
    let _ = std::fs::remove_dir_all(&dir);

    if !report.zero_data_loss() {
        eprintln!(
            "transport replay FAILED: {} lost block(s), {} value mismatch(es)",
            t.lost_blocks, t.value_mismatches
        );
        std::process::exit(2);
    }
}
