//! Fig. 7 (table) — compression ratio by ECQ encoding tree.
//!
//! Paper values: Tree 1 17.60, Tree 2 17.34, Tree 3 17.99, Tree 4 17.41,
//! Tree 5 18.13 — Tree 5 wins thanks to its adaptive split between
//! EC_{b,max} = 2 blocks and larger ones; Tree 2 loses because ±1 is not
//! frequent enough to justify demoting "others". A fixed-length control
//! (not in the paper) is included as the no-tree ablation.

use bench::{geometry_of, print_header, print_row, standard_dataset, MOLECULES};
use pastri::{Compressor, CompressorOptions, EncodingTree};
use qchem::basis::BfConfig;

fn main() {
    let eb = 1e-10;
    println!("Fig. 7 reproduction — compression ratio by encoding tree (EB = {eb:.0e})\n");
    let trees = [
        EncodingTree::Tree1,
        EncodingTree::Tree2,
        EncodingTree::Tree3,
        EncodingTree::Tree4,
        EncodingTree::Tree5,
        EncodingTree::FixedLength,
    ];
    let widths = [22usize, 8, 8, 8, 8, 8, 8];
    print_header(
        &["dataset", "Tree1", "Tree2", "Tree3", "Tree4", "Tree5", "Fixed"],
        &widths,
    );
    let mut totals: Vec<(u64, u64)> = vec![(0, 0); trees.len()];
    for mol in MOLECULES {
        for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
            let ds = standard_dataset(mol, config);
            let mut cells = vec![format!("{mol} {}", config.label())];
            for (ti, tree) in trees.iter().enumerate() {
                let compressor = Compressor::with_options(
                    geometry_of(config),
                    eb,
                    CompressorOptions {
                        tree: *tree,
                        ..Default::default()
                    },
                );
                let bytes = compressor.compress(&ds.values);
                totals[ti].0 += (ds.values.len() * 8) as u64;
                totals[ti].1 += bytes.len() as u64;
                cells.push(format!(
                    "{:.2}",
                    (ds.values.len() * 8) as f64 / bytes.len() as f64
                ));
            }
            print_row(&cells, &widths);
        }
    }
    let overall: Vec<f64> = totals
        .iter()
        .map(|(o, c)| *o as f64 / *c as f64)
        .collect();
    let mut cells = vec!["OVERALL".to_string()];
    cells.extend(overall.iter().map(|cr| format!("{cr:.2}")));
    print_row(&cells, &widths);

    println!("\npaper: Tree1 17.60 | Tree2 17.34 | Tree3 17.99 | Tree4 17.41 | Tree5 18.13");
    println!(
        "note: the five trees sit within ~4% of each other in the paper and here;\n\
         the exact winner depends on the per-bin ECQ distribution of the dataset.\n\
         The structural relations the paper argues from are checked below."
    );
    // The paper's argued relations:
    //  - Tree2's greedy ±1 promotion loses to Tree3 ("occurrences of 1 are
    //    not frequent enough"),
    //  - Tree5 never does worse than Tree3 (it IS Tree3 plus a strictly
    //    better code for EC_b,max = 2 blocks),
    //  - every tree beats the fixed-length control.
    let t = |i: usize| overall[i];
    println!("Tree3 ≥ Tree2: {}", t(2) >= t(1) - 1e-9);
    println!("Tree5 ≥ Tree3: {}", t(4) >= t(2) - 1e-9);
    println!(
        "all trees > fixed-length: {}",
        (0..5).all(|i| t(i) > overall[5])
    );
    assert!(t(4) >= t(2) - 1e-9, "Tree5 must dominate Tree3 by construction");
}
