//! Stage-level compression profile via the telemetry subsystem, plus the
//! disabled-recorder overhead check, emitted as `BENCH_telemetry.json`.
//!
//! Two measurements:
//!
//! 1. **Enabled**: compress a `(dd|dd)` benzene dataset with the global
//!    recorder on and aggregate the captured spans per stage (pattern
//!    selection, quantization, ECQ encode, container assembly). This is
//!    the per-stage timing the perf trajectory tracks.
//! 2. **Disabled**: microbenchmark what one instrumentation call costs
//!    when the recorder is off (~one relaxed atomic load), then bound
//!    the whole-pipeline overhead as
//!    `calls-per-block × ns-per-call / block-compress-ns`. CI asserts
//!    this stays under 2 % — the "free when off" contract.
//!
//! `PASTRI_BENCH_SCALE` scales the dataset like the other benches.

use std::time::Instant;

use bench::{geometry_of, print_header, print_row, standard_dataset};
use pastri::Compressor;
use qchem::basis::BfConfig;

/// Instrumentation touch points on the per-block compress path: the
/// `compress.block` span plus the three stage spans (each guard checks
/// the enabled flag twice — open and close) and slack for counters.
const CALLS_PER_BLOCK: f64 = 12.0;

/// The stage spans the compressor emits, in pipeline order.
const STAGES: [&str; 6] = [
    "compress.container",
    "compress.block",
    "compress.pattern_select",
    "compress.quantize",
    "compress.ecq_encode",
    "container.assemble",
];

fn main() {
    let eb = 1e-10;
    let config = BfConfig::dd_dd();
    let ds = standard_dataset("benzene", config);
    let geom = geometry_of(config);
    let compressor = Compressor::new(geom, eb);
    let blocks = ds.values.len() / geom.block_size();
    println!(
        "telemetry stage profile — {} (dd|dd), {} blocks, EB {eb:.0e}\n",
        ds.label, blocks
    );

    // Warm up (page in the dataset, settle the allocator).
    let baseline = compressor.compress(&ds.values);

    // ---- Enabled run: capture per-stage spans. ----
    telemetry::reset();
    telemetry::set_enabled(true);
    let t = Instant::now();
    let with_telemetry = compressor.compress(&ds.values);
    let enabled_ns = t.elapsed().as_nanos() as f64;
    telemetry::set_enabled(false);
    let snap = telemetry::snapshot();
    assert_eq!(
        with_telemetry, baseline,
        "telemetry must never change the compressed bytes"
    );

    let container_ns: u64 = snap
        .spans_named("compress.container")
        .map(|s| s.dur_ns)
        .sum();
    let widths = [26usize, 10, 14, 10];
    print_header(&["stage", "spans", "total ms", "% cont."], &widths);
    let mut stage_json = Vec::new();
    for name in STAGES {
        let (mut count, mut total_ns) = (0u64, 0u64);
        for s in snap.spans_named(name) {
            count += 1;
            total_ns += s.dur_ns;
        }
        let pct = if container_ns == 0 {
            0.0
        } else {
            total_ns as f64 / container_ns as f64 * 100.0
        };
        print_row(
            &[
                name.to_string(),
                count.to_string(),
                format!("{:.3}", total_ns as f64 / 1e6),
                format!("{pct:.1}"),
            ],
            &widths,
        );
        stage_json.push(format!(
            "    {{ \"name\": \"{name}\", \"spans\": {count}, \"total_us\": {}, \"pct_of_container\": {pct:.2} }}",
            total_ns / 1000
        ));
    }
    if snap.spans_dropped > 0 {
        println!("  note: {} spans dropped at the buffer cap", snap.spans_dropped);
    }

    // ---- Disabled run: timing baseline per block. ----
    let t = Instant::now();
    let disabled_out = compressor.compress(&ds.values);
    let disabled_ns = t.elapsed().as_nanos() as f64;
    assert_eq!(disabled_out, baseline, "disabled-path output must be byte-identical");
    let block_ns = disabled_ns / blocks.max(1) as f64;

    // ---- Microbench: one disabled instrumentation call. ----
    const REPS: u64 = 2_000_000;
    assert!(!telemetry::is_enabled());
    let t = Instant::now();
    for _ in 0..REPS {
        telemetry::counter_add("bench.noop", 1);
        std::hint::black_box(());
    }
    let ns_per_call = t.elapsed().as_nanos() as f64 / REPS as f64;

    let overhead_pct = CALLS_PER_BLOCK * ns_per_call / block_ns * 100.0;
    println!(
        "\ndisabled recorder: {ns_per_call:.2} ns/call, {CALLS_PER_BLOCK} calls/block, \
         {block_ns:.0} ns/block -> {overhead_pct:.3}% overhead"
    );
    println!(
        "enabled run: {:.1} ms vs disabled {:.1} ms",
        enabled_ns / 1e6,
        disabled_ns / 1e6
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-recorder overhead {overhead_pct:.3}% exceeds the 2% budget"
    );

    let json = format!(
        "{{\n  \"bench\": \"telemetry_stages\",\n  \"dataset\": \"{}\",\n  \
         \"error_bound\": {eb:e},\n  \"blocks\": {blocks},\n  \"stages\": [\n{}\n  ],\n  \
         \"container_total_us\": {},\n  \"disabled_ns_per_call\": {ns_per_call:.3},\n  \
         \"calls_per_block\": {CALLS_PER_BLOCK},\n  \"block_compress_ns\": {block_ns:.0},\n  \
         \"disabled_overhead_pct\": {overhead_pct:.4},\n  \"overhead_budget_pct\": 2.0\n}}\n",
        ds.label,
        stage_json.join(",\n"),
        container_ns / 1000,
    );
    std::fs::write("BENCH_telemetry.json", &json).expect("writing BENCH_telemetry.json");
    println!("wrote BENCH_telemetry.json");
}
