//! Fixed-seed overload replay, emitted as `BENCH_overload.json`.
//!
//! Clients hammer one admission-controlled server while the seeded
//! overload injector forces sheds and slow handlers (DESIGN §14): a
//! deterministic burst, not a wall-clock race. Because the injector's
//! decisions are a pure function of the seed and the breakers are
//! count-driven, the report's `overload` line — sheds, admissions,
//! breaker transitions, drain books — is bit-identical from run to
//! run and at any `RAYON_NUM_THREADS`; CI diffs it textually. The
//! `timing` section carries the run-varying queue-wait and RTT
//! percentiles.
//!
//! `PASTRI_BENCH_SCALE` multiplies the request budget like the other
//! benches. Exits 2 on lost data, an unsound drain (an admitted
//! request that never completed), or a shed that did not surface as a
//! structured client error — the same gates as
//! `pastri soak --transport --overload`.

use bench::{bench_scale, print_header, print_row};

fn main() {
    let scale = bench_scale();
    let dir = std::env::temp_dir().join(format!("pastri-bench-overload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = soak::TransportStormConfig::overload_storm(&dir, 42);
    cfg.clients = 2;
    cfg.requests_per_client = ((48.0 * scale).round() as usize).max(12);
    cfg.scale = 24;
    // Loose ceilings: the bench reports, the soak gates. These only
    // trip if the run is badly wrong.
    cfg.slo.max_shed_rate = Some(0.9);
    cfg.slo.queue_wait_p99_us = Some(5_000_000);
    cfg.slo.max_breaker_opened = Some(10_000);

    let ovl = cfg.overload.as_ref().expect("overload storm config");
    println!(
        "overload replay — seed {}, {} clients x {} requests over {} blocks, \
         forced shed every {} keys (<= {} per key), slow handler every {} keys\n",
        cfg.seed,
        cfg.clients,
        cfg.requests_per_client,
        cfg.scale,
        ovl.inject.shed_every,
        ovl.inject.max_sheds_per_key,
        ovl.inject.delay_every,
    );

    let report = soak::run_transport(&cfg).expect("overload replay run");
    let t = &report.tallies;
    let r = &report.recovery;
    let o = report.overload.expect("overload tallies");

    let decided = o.server_shed + o.server_admitted;
    let shed_rate = if decided == 0 { 0.0 } else { o.server_shed as f64 / decided as f64 };

    let widths = [28usize, 20];
    print_header(&["metric", "value"], &widths);
    for (name, v) in [
        ("requests planned", t.requests_planned.to_string()),
        ("requests ok", t.requests_ok.to_string()),
        ("blocks served", t.blocks_served.to_string()),
        ("lost blocks", t.lost_blocks.to_string()),
        ("value signature", format!("{:016x}", t.value_sig)),
        ("server admitted", o.server_admitted.to_string()),
        ("server completed", o.server_completed.to_string()),
        ("server shed", o.server_shed.to_string()),
        ("shed rate", format!("{shed_rate:.4}")),
        ("client overloaded seen", o.client_overloaded.to_string()),
        ("refused while draining", o.refused_draining.to_string()),
        ("breaker opened", o.breaker_opened.to_string()),
        ("breaker half-opened", o.breaker_half_opened.to_string()),
        ("breaker closed", o.breaker_closed.to_string()),
        ("drain complete", o.drain_complete.to_string()),
        ("client retries", r.retries.to_string()),
        ("client hedges", r.hedges.to_string()),
        (
            "queue wait p99 (us)",
            report.queue_wait_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        ),
        (
            "rpc p99 (us)",
            report.rpc_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        ),
    ] {
        print_row(&[name.to_string(), v], &widths);
    }

    std::fs::write("BENCH_overload.json", report.to_json(&cfg))
        .expect("writing BENCH_overload.json");
    println!("\nwrote BENCH_overload.json");
    let _ = std::fs::remove_dir_all(&dir);

    if !report.passed() {
        eprintln!(
            "overload replay FAILED: zero_data_loss={} overload_sound={} gates_pass={}",
            report.zero_data_loss(),
            report.overload_sound(),
            report.all_gates_pass()
        );
        std::process::exit(2);
    }
}
