//! Fig. 9(c,d) — compression and decompression rates (MB/s).
//!
//! Paper (their Xeon E5-2695v4): compression PaSTRI > 660, ZFP 308.5,
//! SZ 104.1; decompression PaSTRI > 1110, ZFP 260.5, SZ 148.6. Absolute
//! numbers are hardware-dependent; the *ordering* (PaSTRI fastest on
//! both, SZ slowest compression) is the reproduced claim.

use bench::{print_header, print_row, standard_dataset, Codec, ERROR_BOUNDS, MOLECULES};
use qchem::basis::BfConfig;

fn main() {
    println!("Fig. 9(c,d) reproduction — (de)compression rates in MB/s\n");
    let widths = [9usize, 22, 14, 14, 14];
    for &eb in ERROR_BOUNDS.iter() {
        println!("EB = {eb:.0e}   (each cell: compress / decompress MB/s)");
        print_header(&["", "dataset", "SZ", "ZFP", "PaSTRI"], &widths);
        let mut agg = [[0.0f64; 2]; 3];
        let mut n = 0u32;
        for mol in MOLECULES {
            for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
                let ds = standard_dataset(mol, config);
                let mut cells = vec![String::new(), format!("{mol} {}", config.label())];
                for (ci, codec) in Codec::ALL.iter().enumerate() {
                    let p = codec.profile(&ds.values, config, eb);
                    agg[ci][0] += p.compress_mbs;
                    agg[ci][1] += p.decompress_mbs;
                    cells.push(format!("{:.0}/{:.0}", p.compress_mbs, p.decompress_mbs));
                }
                n += 1;
                print_row(&cells, &widths);
            }
        }
        let avg = |x: f64| x / f64::from(n);
        print_row(
            &[
                String::new(),
                "AVERAGE".to_string(),
                format!("{:.0}/{:.0}", avg(agg[0][0]), avg(agg[0][1])),
                format!("{:.0}/{:.0}", avg(agg[1][0]), avg(agg[1][1])),
                format!("{:.0}/{:.0}", avg(agg[2][0]), avg(agg[2][1])),
            ],
            &widths,
        );
        let ok_c = avg(agg[2][0]) > avg(agg[1][0]) && avg(agg[1][0]) > avg(agg[0][0]);
        let ok_d = avg(agg[2][1]) > avg(agg[1][1]) && avg(agg[2][1]) > avg(agg[0][1]);
        println!(
            "  shape check: compression ordering PaSTRI > ZFP > SZ: {ok_c}; \
             PaSTRI fastest decompression: {ok_d}\n"
        );
    }
    println!("paper averages: compression PaSTRI 660 / ZFP 308.5 / SZ 104.1 MB/s;");
    println!("                decompression PaSTRI 1110 / ZFP 260.5 / SZ 148.6 MB/s");
}
