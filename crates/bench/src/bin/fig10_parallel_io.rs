//! Fig. 10 — parallel dump/load of the tri-alanine (dd|dd) dataset to a
//! GPFS-style parallel file system with 256–2048 cores.
//!
//! The compressor ratios and single-core rates are *measured* from the
//! real implementations on the standard dataset; the cluster arithmetic
//! (file-per-process POSIX streams against shared GPFS bandwidth, the
//! paper's Bebop testbed) is the `pfs-sim` model. The paper's claims:
//! times fall with core count, PaSTRI is ≥ 2× faster than SZ and ZFP, and
//! uncompressed I/O would take "thousands of seconds".

use bench::{print_header, print_row, standard_dataset, Codec};
use pfs_sim::{DumpLoadModel, GpfsModel};
use qchem::basis::BfConfig;

fn main() {
    println!("Fig. 10 reproduction — parallel dump (D) / load (L), tri-alanine (dd|dd)\n");
    let config = BfConfig::dd_dd();
    let eb = 1e-10;
    let ds = standard_dataset("alanine", config);

    // Measure real ratios and single-core rates.
    let profiles: Vec<_> = Codec::ALL
        .iter()
        .map(|c| c.profile(&ds.values, config, eb))
        .collect();
    println!("measured single-core profiles (EB = {eb:.0e}):");
    for p in &profiles {
        println!(
            "  {:>7}: ratio {:5.2}, compress {:6.0} MB/s, decompress {:6.0} MB/s",
            p.name, p.ratio, p.compress_mbs, p.decompress_mbs
        );
    }

    // Paper-scale dataset (the sampled files were ≥ 2 GB *per config*;
    // the parallel experiment targets the full production volume).
    let model = DumpLoadModel {
        gpfs: GpfsModel::bebop(),
        dataset_bytes: 4e12,
    };
    println!(
        "\nmodel: {:.0} TB dataset, GPFS {:.0} MB/s/process, {:.0} GB/s aggregate",
        model.dataset_bytes / 1e12,
        model.gpfs.per_process_mbs,
        model.gpfs.aggregate_mbs / 1e3
    );
    println!(
        "uncompressed write at 256 cores: {:.0} s (paper: \"thousands of seconds\", not plotted)\n",
        model.raw_io(256)
    );

    let widths = [7usize, 5, 12, 12, 12];
    print_header(&["cores", "op", "SZ", "ZFP", "PaSTRI"], &widths);
    for cores in [256u32, 512, 1024, 2048] {
        for op in ["D", "L"] {
            let mut cells = vec![format!("{cores}"), op.to_string()];
            for p in &profiles {
                let phases = if op == "D" {
                    model.dump(p, cores)
                } else {
                    model.load(p, cores)
                };
                cells.push(format!(
                    "{:.1}m ({:.0}/{:.0}s)",
                    phases.total_s() / 60.0,
                    phases.codec_s,
                    phases.io_s
                ));
            }
            print_row(&cells, &widths);
        }
    }
    println!("\n(cells: total minutes, with codec seconds / I/O seconds in parentheses)");

    // Shape checks.
    let dl = |p, cores| -> f64 {
        let p: &pfs_sim::CompressorProfile = p;
        model.dump(p, cores).total_s() + model.load(p, cores).total_s()
    };
    for cores in [256u32, 2048] {
        let ratio = dl(&profiles[0], cores).min(dl(&profiles[1], cores)) / dl(&profiles[2], cores);
        println!(
            "shape check at {cores} cores: PaSTRI is {ratio:.1}x faster than the best baseline \
             (paper: 2x or higher)"
        );
    }
}
