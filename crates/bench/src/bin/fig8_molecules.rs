//! Fig. 8 — the benchmark molecules.
//!
//! The paper shows ball-and-stick pictures of benzene, glutamine, and
//! tri-alanine; the machine-checkable equivalent is the composition,
//! geometry summary, and shell/quartet census of each system as the
//! dataset generator uses it.

use bench::{benchmark_molecule, CLUSTER_COPIES, CLUSTER_SPACING};
use qchem::angular::shell_letter;
use qchem::basis::{shells_for, DEFAULT_EXPONENTS};
use qchem::molecule::{Molecule, ANGSTROM};

fn element_symbol(z: u32) -> &'static str {
    match z {
        1 => "H",
        6 => "C",
        7 => "N",
        8 => "O",
        _ => "?",
    }
}

fn describe(mol: &Molecule) {
    println!("\n{}:", mol.name);
    let mut counts = std::collections::BTreeMap::new();
    for a in &mol.atoms {
        *counts.entry(a.z).or_insert(0usize) += 1;
    }
    let formula: String = counts
        .iter()
        .rev()
        .map(|(z, c)| format!("{}{}", element_symbol(*z), if *c > 1 { c.to_string() } else { String::new() }))
        .collect();
    println!("  formula: {formula} ({} atoms, {} heavy)", mol.atoms.len(), mol.heavy_atom_count());

    // Extent: max heavy-atom pair distance.
    let heavy: Vec<_> = mol.atoms.iter().filter(|a| a.z > 1).collect();
    let mut max_d = 0.0f64;
    for i in 0..heavy.len() {
        for j in (i + 1)..heavy.len() {
            let d: f64 = (0..3)
                .map(|k| (heavy[i].pos[k] - heavy[j].pos[k]).powi(2))
                .sum::<f64>()
                .sqrt();
            max_d = max_d.max(d);
        }
    }
    println!("  heavy-atom extent: {:.2} Å", max_d / ANGSTROM);

    for l in [2u32, 3] {
        let shells = shells_for(mol, l, &DEFAULT_EXPONENTS);
        let quartets = shells.len().pow(4);
        println!(
            "  {} shells (l={l}): {} -> {} ({}{}|{}{}) quartet candidates",
            shell_letter(l),
            shells.len(),
            quartets,
            shell_letter(l),
            shell_letter(l),
            shell_letter(l),
            shell_letter(l),
        );
    }
}

fn main() {
    println!("Fig. 8 reproduction — benchmark molecules (monomers and the");
    println!(
        "x{CLUSTER_COPIES} @ {CLUSTER_SPACING} Å clusters the harness uses for the production-scale quartet mix)"
    );
    for name in ["alanine", "benzene", "glutamine"] {
        let mono = Molecule::by_name(name).unwrap();
        describe(&mono);
        let cluster = benchmark_molecule(name);
        describe(&cluster);
    }
}
