//! Fixed-seed cache-server traffic replay, emitted as
//! `BENCH_server.json`.
//!
//! Builds a seeded ERI store, mounts it behind the `eri-server` sharded
//! cache server, and replays the seeded Zipf-ish workload from
//! `eri_server::replay` — the SCF re-read pattern the cache exists for.
//! For the fixed seed the report's `tallies` line (requests, blocks,
//! bytes, folded value signature) is bit-identical from run to run and
//! machine to machine; the `cache` / `timing` sections carry the
//! run-varying hit rate, occupancy high-water, and telemetry-derived
//! latency percentiles the trajectory tracks.
//!
//! `PASTRI_BENCH_SCALE` multiplies the dataset size and request budget
//! like the other benches. Exits 2 if any batch fails to serve, so CI
//! can gate on it exactly like `pastri bench-server`.

use bench::{bench_scale, print_header, print_row};
use pastri::BlockGeometry;

fn patterned_block(geom: BlockGeometry, seed: usize) -> Vec<f64> {
    let mut block = Vec::with_capacity(geom.block_size());
    for sb in 0..geom.num_subblocks {
        let s = ((sb + seed) as f64 * 0.61).cos();
        for i in 0..geom.subblock_size {
            block.push(s * ((i as f64 + seed as f64) * 0.37).sin() * 1e-6);
        }
    }
    block
}

fn main() {
    let scale = bench_scale();
    let dir = std::env::temp_dir().join(format!("pastri-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let store = dir.join("replay.eristore");

    let blocks = ((96.0 * scale).round() as usize).max(16);
    let geom = BlockGeometry::new(4, 32);
    let mut w = eri_store::StoreWriter::create(&store, geom, 1e-10).expect("bench store");
    for b in 0..blocks {
        w.append_block(&patterned_block(geom, 42 + b)).expect("bench append");
    }
    w.finish().expect("bench finish");

    // Cache sized well under the dataset so eviction pressure is real.
    let cfg = eri_server::ServerConfig {
        cache_bytes: (blocks * geom.block_size() * 8) / 2,
        ..Default::default()
    };
    let srv = eri_server::ServerHandle::open(&[&store], &cfg).expect("mount bench store");

    let mut replay = eri_server::replay::ReplayConfig::default();
    replay.requests_per_client = ((replay.requests_per_client as f64) * scale).round() as usize;
    replay.requests_per_client = replay.requests_per_client.max(32);

    println!(
        "server replay — seed {}, {} clients x {} requests over {} blocks ({} shards)\n",
        replay.seed,
        replay.clients,
        replay.requests_per_client,
        srv.num_blocks(),
        srv.num_shards()
    );
    let report = eri_server::replay::run(&srv, &replay);
    let t = &report.tallies;
    let s = &report.cache;

    let widths = [28usize, 20];
    print_header(&["metric", "value"], &widths);
    for (name, v) in [
        ("requests", t.requests.to_string()),
        ("batches failed", t.batches_failed.to_string()),
        ("blocks served", t.blocks_served.to_string()),
        ("bytes served", t.bytes_served.to_string()),
        ("value signature", format!("{:016x}", t.value_sig)),
        (
            "cache hit rate",
            format!("{:.3}", s.hit_rate().unwrap_or(0.0)),
        ),
        ("cache evictions", s.evictions.to_string()),
        ("cache high water (bytes)", s.high_water_bytes.to_string()),
        (
            "read p50 (us)",
            report.read_p50_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        ),
        (
            "read p99 (us)",
            report.read_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        ),
        (
            "miss p99 (us)",
            report.miss_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        ),
        ("throughput (MB/s)", format!("{:.1}", report.mb_per_s)),
    ] {
        print_row(&[name.to_string(), v], &widths);
    }
    println!(
        "\nreuse projection at measured hit rate: {:.3}s vs {:.3}s uncached ({:.1}x)",
        report.reuse.cached_s,
        report.reuse.uncached_s,
        if report.reuse.cached_s > 0.0 {
            report.reuse.uncached_s / report.reuse.cached_s
        } else {
            1.0
        }
    );

    std::fs::write("BENCH_server.json", report.to_json()).expect("writing BENCH_server.json");
    println!("wrote BENCH_server.json");
    let _ = std::fs::remove_dir_all(&dir);

    if !report.pass() {
        eprintln!("server replay FAILED: {} batch(es) failed to serve", t.batches_failed);
        std::process::exit(2);
    }
}
