//! Sec. V-A hybrid-configuration claim — "In our experiments, we have
//! also used d and f hybrid BF configurations ((df|fd), etc.) but we
//! have reported only the pure configurations … Metrics for hybrid
//! configurations follow very similar trends."
//!
//! This binary runs the hybrids the paper omitted and checks they indeed
//! land in the range spanned by the pure `(dd|dd)` and `(ff|ff)` results
//! (within a modest tolerance band).

use bench::{print_header, print_row, standard_dataset, Codec};
use qchem::basis::BfConfig;
use qchem::dataset::{DatasetSpec, EriDataset};

fn main() {
    let eb = 1e-10;
    let mol = "alanine";
    println!("Sec. V-A reproduction — hybrid BF configurations (EB = {eb:.0e}, tri-alanine)\n");

    let configs: Vec<(BfConfig, bool)> = vec![
        (BfConfig::dd_dd(), false),
        (BfConfig::ff_ff(), false),
        (BfConfig::df_fd(), true),
        (BfConfig::fd_ff(), true),
        (BfConfig::parse("(dd|ff)").unwrap(), true),
    ];

    let widths = [10usize, 12, 8, 8, 8];
    print_header(&["config", "block size", "SZ", "ZFP", "PaSTRI"], &widths);
    let mut pure_pastri = Vec::new();
    let mut hybrid_pastri = Vec::new();
    for (config, hybrid) in &configs {
        // Hybrids are not in the standard catalog; generate them directly
        // (smaller block counts — the blocks are up to 6000 points).
        let ds = if *hybrid {
            EriDataset::generate(&DatasetSpec {
                molecule: bench::benchmark_molecule(mol),
                config: *config,
                max_blocks: 48,
                seed: xhybrid_seed(),
            })
        } else {
            standard_dataset(mol, *config)
        };
        let raw = (ds.values.len() * 8) as f64;
        let mut cells = vec![config.label(), format!("{}", config.block_size())];
        let mut pastri_cr = 0.0;
        for codec in Codec::ALL {
            let bytes = codec.compress(&ds.values, *config, eb);
            let cr = raw / bytes.len() as f64;
            if codec == Codec::Pastri {
                pastri_cr = cr;
            }
            cells.push(format!("{cr:.2}"));
        }
        print_row(&cells, &widths);
        if *hybrid {
            hybrid_pastri.push(pastri_cr);
        } else {
            pure_pastri.push(pastri_cr);
        }
    }

    let lo = pure_pastri.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = pure_pastri.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\npure PaSTRI range: [{lo:.2}, {hi:.2}]; hybrids: {:?}",
        hybrid_pastri
            .iter()
            .map(|c| format!("{c:.2}"))
            .collect::<Vec<_>>()
    );
    // "Very similar trends": each hybrid within a generous band around
    // the pure range (quartet populations differ per config).
    for &h in &hybrid_pastri {
        assert!(
            h > lo * 0.6 && h < hi * 1.6,
            "hybrid CR {h:.2} outside the similar-trend band [{:.2}, {:.2}]",
            lo * 0.6,
            hi * 1.6
        );
    }
    println!("shape check: every hybrid falls in the similar-trend band — reproduced");
}

/// Stable seed for hybrid datasets (kept out of the cache key space of
/// the standard catalog).
#[allow(non_snake_case)]
fn xhybrid_seed() -> u64 {
    0x4479_b21d
}
