//! Fig. 6 — ECQ value distribution by block type.
//!
//! The paper groups quantized error-correction values into bins by the
//! number of bits needed (bin 1 = value 0, bin 2 = ±1, bin i = ±[2^{i-2},
//! 2^{i-1}-1]) and plots per-block-type histograms, observing that 70–80 %
//! of blocks are type 0/1 and EC_{b,max} rarely exceeds 22 at EB = 1e-10.

use bench::{geometry_of, print_header, print_row, standard_dataset, MOLECULES};
use pastri::{Compressor, CompressionStats};
use qchem::basis::BfConfig;

fn main() {
    let eb = 1e-10;
    println!("Fig. 6 reproduction — ECQ distribution by block type (EB = {eb:.0e})\n");
    let mut stats = CompressionStats::default();
    for mol in MOLECULES {
        for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
            let ds = standard_dataset(mol, config);
            let compressor = Compressor::new(geometry_of(config), eb);
            let (_, s) = compressor.compress_with_stats(&ds.values);
            stats.merge(&s);
        }
    }

    let types = stats.block_types();
    println!("block-type census (paper: 70-80% of blocks are type 0 or 1):");
    for (t, ts) in types.iter().enumerate() {
        println!("  type {t}: {:6} blocks ({:5.1} %)", ts.count, ts.fraction * 100.0);
    }
    let t01 = (types[0].fraction + types[1].fraction) * 100.0;
    println!("  type 0+1 combined: {t01:.1} %\n");

    // Per-type histograms, log-scale frequency as the paper plots.
    let widths = [4usize, 12, 12, 12, 12, 12];
    print_header(
        &["bin", "type 0", "type 1", "type 2", "type 3", "total"],
        &widths,
    );
    let total = stats.ecq_hist_total();
    let max_bin = total
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &c)| c > 0)
        .map_or(0, |(b, _)| b);
    for (bin, &total_count) in total.iter().enumerate().take(max_bin + 1).skip(1) {
        let mut cells = vec![format!("{bin}")];
        for hist in &stats.ecq_hist_by_type {
            cells.push(fmt_count(hist[bin]));
        }
        cells.push(fmt_count(total_count));
        print_row(&cells, &widths);
    }
    println!(
        "\nEC_b,max observed = {max_bin} (paper: typically does not exceed 22 at EB = 1e-10)"
    );
    // Type-0 blocks contribute no dense ECQ bins above 1 by definition.
    assert!(
        stats.ecq_hist_by_type[0].iter().skip(2).all(|&c| c == 0),
        "type-0 blocks must have only zero ECQ values"
    );

    // The paper's histogram came from "thousands of blocks" of production
    // data; repeat the census at that scale with the Eq.-3 far-field
    // model (the volume substitute, DESIGN.md §2).
    let model = qchem::dataset::EriDataset::generate_model(BfConfig::dd_dd(), 5000, 0x616);
    let compressor = Compressor::new(geometry_of(BfConfig::dd_dd()), eb);
    let (_, ms) = compressor.compress_with_stats(&model.values);
    let mt = ms.block_types();
    println!("\nmodel data at scale (5000 (dd|dd) blocks):");
    for (t, ts) in mt.iter().enumerate() {
        println!("  type {t}: {:6} blocks ({:5.1} %)", ts.count, ts.fraction * 100.0);
    }
    let mt01 = (mt[0].fraction + mt[1].fraction) * 100.0;
    println!(
        "  type 0+1 combined: {mt01:.1} % (paper: 70-80 %) -> in range: {}",
        (60.0..=95.0).contains(&mt01)
    );
}

fn fmt_count(c: u64) -> String {
    if c == 0 {
        "-".to_string()
    } else {
        format!("{c}")
    }
}
