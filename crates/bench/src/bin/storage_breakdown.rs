//! Sec. V-B storage breakdown — "PQ and SQ constitute around 20-30% of
//! PaSTRI's output data size, whereas ECQ constitutes around 70-80%. A
//! tiny portion … typically less than 0.5%, consists of other
//! bookkeeping bits."

use bench::{geometry_of, print_header, print_row, standard_dataset, MOLECULES};
use pastri::Compressor;
use qchem::basis::BfConfig;

fn main() {
    let eb = 1e-10;
    println!("Sec. V-B reproduction — PaSTRI output storage breakdown (EB = {eb:.0e})\n");
    let widths = [22usize, 10, 8, 12, 10];
    print_header(&["dataset", "PQ+SQ %", "ECQ %", "bookkeep %", "CR"], &widths);
    let mut agg = pastri::CompressionStats::default();
    for mol in MOLECULES {
        for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
            let ds = standard_dataset(mol, config);
            let compressor = Compressor::new(geometry_of(config), eb);
            let (_, stats) = compressor.compress_with_stats(&ds.values);
            let b = stats.breakdown();
            print_row(
                &[
                    format!("{mol} {}", config.label()),
                    format!("{:.1}", b.pattern_and_scales * 100.0),
                    format!("{:.1}", b.ecq * 100.0),
                    format!("{:.2}", b.bookkeeping * 100.0),
                    format!("{:.2}", stats.compression_ratio()),
                ],
                &widths,
            );
            agg.merge(&stats);
        }
    }
    let b = agg.breakdown();
    print_row(
        &[
            "OVERALL".to_string(),
            format!("{:.1}", b.pattern_and_scales * 100.0),
            format!("{:.1}", b.ecq * 100.0),
            format!("{:.2}", b.bookkeeping * 100.0),
            format!("{:.2}", agg.compression_ratio()),
        ],
        &widths,
    );
    println!("\npaper: PQ+SQ 20-30 %, ECQ 70-80 %, bookkeeping < 0.5 %");
    println!(
        "shape check: ECQ dominates ({}), bookkeeping tiny ({})",
        b.ecq > b.pattern_and_scales,
        b.bookkeeping < 0.02
    );
}
