//! Ablation benchmarks for the design choices PaSTRI argues for
//! (DESIGN.md §5):
//!
//! 1. **`S_b = P_b` practical rule vs naive `S_binsize = 2·EB`** —
//!    Sec. IV-B's worked example: the naive rule costs ~33 bits per scale
//!    coefficient at EB = 1e-10 with "almost no adverse effects" avoided
//!    by the practical rule.
//! 2. **Adaptive sparse/dense ECQ vs forcing either** — Sec. IV-C's
//!    "adaptive behavior also helps boosting compression ratios".
//! 3. **Block-level parallel scaling** — Sec. IV-C's "PaSTRI is highly
//!    parallelizable".

use std::time::Instant;

use bench::{geometry_of, print_header, print_row, standard_dataset, MOLECULES};
use pastri::{Compressor, CompressorOptions, EcqRepr, ScaleRule};
use qchem::basis::BfConfig;

fn main() {
    let eb = 1e-10;
    println!("Ablation 1 — scale quantization rule (EB = {eb:.0e})\n");
    let widths = [22usize, 16, 16, 10];
    print_header(&["dataset", "practical Sb=Pb", "naive 2EB bins", "gain"], &widths);
    for mol in MOLECULES {
        for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
            let ds = standard_dataset(mol, config);
            let raw = (ds.values.len() * 8) as f64;
            let cr = |rule: ScaleRule| {
                let c = Compressor::with_options(
                    geometry_of(config),
                    eb,
                    CompressorOptions {
                        scale_rule: rule,
                        ..Default::default()
                    },
                );
                raw / c.compress(&ds.values).len() as f64
            };
            let practical = cr(ScaleRule::Practical);
            let naive = cr(ScaleRule::NaiveEbBins);
            print_row(
                &[
                    format!("{mol} {}", config.label()),
                    format!("{practical:.2}"),
                    format!("{naive:.2}"),
                    format!("{:+.1}%", (practical / naive - 1.0) * 100.0),
                ],
                &widths,
            );
        }
    }
    println!(
        "\npaper: naive rule needs S_b ≈ 33 bits at EB = 1e-10; the practical rule\n\
         \"boosts the compression ratio significantly while requiring no\n\
         computationally expensive steps\".\n"
    );

    println!("Ablation 2 — ECQ representation policy (EB = {eb:.0e})\n");
    let widths = [22usize, 10, 12, 12];
    print_header(&["dataset", "adaptive", "dense-only", "sparse-only"], &widths);
    for mol in MOLECULES {
        for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
            let ds = standard_dataset(mol, config);
            let raw = (ds.values.len() * 8) as f64;
            let cr = |repr: EcqRepr| {
                let c = Compressor::with_options(
                    geometry_of(config),
                    eb,
                    CompressorOptions {
                        ecq_repr: repr,
                        ..Default::default()
                    },
                );
                raw / c.compress(&ds.values).len() as f64
            };
            let auto = cr(EcqRepr::Auto);
            let dense = cr(EcqRepr::DenseOnly);
            let sparse = cr(EcqRepr::SparseOnly);
            assert!(auto + 1e-9 >= dense.max(sparse) * 0.999, "adaptive must win");
            print_row(
                &[
                    format!("{mol} {}", config.label()),
                    format!("{auto:.2}"),
                    format!("{dense:.2}"),
                    format!("{sparse:.2}"),
                ],
                &widths,
            );
        }
    }

    println!("\nAblation 3 — block-parallel scaling (rayon threads)\n");
    let config = BfConfig::dd_dd();
    let ds = standard_dataset("alanine", config);
    let mb = (ds.values.len() * 8) as f64 / 1e6;
    let widths = [9usize, 16, 18];
    print_header(&["threads", "compress MB/s", "decompress MB/s"], &widths);
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (c_mbs, d_mbs) = pool.install(|| {
            let c = Compressor::new(geometry_of(config), eb);
            let t = Instant::now();
            let bytes = c.compress(&ds.values);
            let ct = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let _ = c.decompress(&bytes).unwrap();
            let dt = t.elapsed().as_secs_f64();
            (mb / ct, mb / dt)
        });
        print_row(
            &[
                format!("{threads}"),
                format!("{c_mbs:.0}"),
                format!("{d_mbs:.0}"),
            ],
            &widths,
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n(this machine has {cores} core(s); scaling is visible only beyond one — \
         the paper ran 2048)"
    );
}
