//! Fig. 5 — the effect of quantization resolution on the scaled pattern.
//!
//! The paper's diagram shows that as the quantized scaled pattern
//! converges to its precise values, the range the error-correction codes
//! must cover converges to the intrinsic deviation. This binary makes the
//! diagram quantitative: sweep the pattern/scale bit width over one real
//! ERI block and report the resulting EC_b — reproducing Sec. IV-B's
//! conclusion that the practical rule (`S_b = P_b`) costs at most ~2 bins
//! over the ideal.

use bench::standard_dataset;
use pastri::{ecq_bits, fit_pattern, BlockGeometry, Quantizer, ScaleQuantizer, ScalingMetric};
use qchem::basis::BfConfig;

fn main() {
    let eb = 1e-10;
    let config = BfConfig::dd_dd();
    let geom = BlockGeometry::from_dims(config.dims());
    let ds = standard_dataset("alanine", config);

    // A representative block with nonzero deviations.
    let block = (0..ds.num_blocks())
        .map(|b| ds.block(b))
        .find(|blk| {
            let ext = blk.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            ext > 1e-7
        })
        .expect("dataset has a usable block");

    let quant = Quantizer::new(eb);
    let fit = fit_pattern(ScalingMetric::Er, &geom, block);
    let sbs = geom.subblock_size;
    let pattern = &block[fit.pattern_sb * sbs..(fit.pattern_sb + 1) * sbs];
    let (pq, pb_full) = quant.quantize_pattern(pattern).expect("finite pattern");
    let phat_exact: Vec<f64> = pq.iter().map(|&q| quant.dequantize(q)).collect();

    println!("Fig. 5 reproduction — EC range vs pattern/scale resolution (EB = {eb:.0e})");
    println!("block: tri-alanine (dd|dd), P_b from the practical rule = {pb_full} bits\n");
    println!("{:>8} {:>10} {:>14} {:>16}", "S_b bits", "EC_b,max", "max |ECQ|", "EC bins needed");

    // Sweep the scale resolution from very coarse to the practical rule
    // and beyond; the pattern stays at full (2·EB-bin) resolution, as in
    // the paper's practical method.
    let mut results = Vec::new();
    for sb_bits in [4u32, 6, 8, 10, 12, pb_full, pb_full + 6, 33] {
        let sq = ScaleQuantizer::new(sb_bits);
        let mut max_ecq: i64 = 0;
        for (j, &s) in fit.scales.iter().enumerate() {
            let shat = sq.dequantize(sq.quantize(s));
            for i in 0..sbs {
                let v = block[j * sbs + i];
                let pred = shat * phat_exact[i];
                let q = quant.quantize(v - pred).expect("finite");
                max_ecq = max_ecq.max(q.abs());
            }
        }
        let bits = ecq_bits(max_ecq);
        println!("{sb_bits:>8} {bits:>10} {max_ecq:>14} {:>16}", 2i64.saturating_pow(bits));
        results.push((sb_bits, bits));
    }

    // The paper's claim: the practical rule is within ~2 bins of the
    // asymptote reached with very high scale resolution.
    let at_practical = results.iter().find(|(b, _)| *b == pb_full).unwrap().1;
    let asymptote = results.last().unwrap().1;
    println!(
        "\npractical rule EC_b = {at_practical}, high-resolution asymptote = {asymptote} \
         (paper: within ~2 bins) -> {}",
        if at_practical <= asymptote + 2 { "reproduced" } else { "NOT reproduced" }
    );
    assert!(at_practical <= asymptote + 2);
}
