//! Fixed-seed soak storm for the perf/robustness trajectory, emitted as
//! `BENCH_soak.json`.
//!
//! Runs the `soak` crate's deterministic fault-storm harness — seeded
//! bit-flip SDC, torn stream writes, crash/resume cycles, and transient
//! read errors over a mixed read/write/scrub workload — at a fixed seed
//! so the op/fault tallies in the emitted JSON are bit-identical from
//! run to run and machine to machine. The `slo` / `timing` sections
//! carry the run-varying numbers (read p99, wall clock, memory
//! high-water) the trajectory tracks.
//!
//! `PASTRI_BENCH_SCALE` multiplies the op budget and per-store block
//! count like the other benches. Exits 2 if the storm loses data or an
//! SLO gate fails, so CI can gate on it exactly like `pastri soak`.

use bench::{bench_scale, print_header, print_row};

fn main() {
    let scale = bench_scale();
    let dir = std::env::temp_dir().join(format!("pastri-bench-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = soak::SoakConfig::storm(&dir, 42);
    cfg.ops = ((cfg.ops as f64) * scale).round().max(20.0) as usize;
    cfg.scale = ((cfg.scale as f64) * scale).round().max(4.0) as usize;
    // Generous gates: regressions show up in the recorded numbers long
    // before they trip these, but a collapse (repair path broken, reads
    // off a cliff) fails the bench outright.
    cfg.slo = soak::SloGates {
        read_p99_us: Some(2_000_000),
        min_repair_success: Some(0.5),
        max_quarantined: Some(cfg.ops as u64),
        max_resident_values: None,
    };

    println!(
        "soak storm — seed {}, {} ops across {} stores, {} blocks/store\n",
        cfg.seed, cfg.ops, cfg.stores, cfg.scale
    );
    let report = soak::run(&cfg).expect("soak storm must complete");
    let t = &report.tallies;

    let widths = [28usize, 12];
    print_header(&["tally", "count"], &widths);
    for (name, v) in [
        ("ops executed", t.ops_executed),
        ("block reads", t.block_reads),
        ("bit-flip events", t.bit_flip_events),
        ("torn streams", t.torn_streams),
        ("crashes (all resumed)", t.crashes),
        ("transient retries", t.transient_retries),
        ("repaired on read", t.read_repaired),
        ("repaired by scrub", t.scrub_repaired),
        ("quarantined", t.quarantined),
    ] {
        print_row(&[name.to_string(), v.to_string()], &widths);
    }
    println!();
    for g in &report.gates {
        println!(
            "gate {:<24} threshold {:>12} actual {:>12}  {}",
            g.gate,
            g.threshold,
            g.actual.map_or_else(|| "n/a".to_string(), |v| format!("{v}")),
            if g.pass { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "\nread p99 {} us, {:.2}s wall, resident high-water {} values",
        report.read_p99_us.map_or_else(|| "n/a".into(), |v| v.to_string()),
        report.wall.as_secs_f64(),
        report.resident_high_water,
    );

    std::fs::write("BENCH_soak.json", report.to_json(&cfg)).expect("writing BENCH_soak.json");
    println!("wrote BENCH_soak.json");

    if !report.passed() {
        eprintln!("soak storm FAILED: data loss or violated SLO gate");
        std::process::exit(2);
    }
}
