//! Fig. 11 — total computation time to obtain integral data: recompute
//! with GAMESS every time vs generate once + PaSTRI compress/decompress.
//!
//! ERI generation rates are the paper's own GAMESS measurements
//! ((dd|dd) 322.82 MB/s, (ff|ff) 622.81 MB/s); PaSTRI rates are measured
//! from this implementation. Data reused 20 times, as in the paper.
//! Bars are normalized to the Original infrastructure, per config.

use bench::{print_header, print_row, standard_dataset, Codec};
use pfs_sim::{gamess_eri_rate_mbs, ReuseModel};
use qchem::basis::BfConfig;

fn main() {
    println!("Fig. 11 reproduction — normalized time to obtain ERI data (reuse = 20)\n");
    let reuse = 20u32;
    let widths = [22usize, 9, 12, 11, 13, 12];
    print_header(
        &["infrastructure", "EB", "calculate", "compress", "decompress", "total"],
        &widths,
    );
    for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
        let label = config.label();
        let ds = standard_dataset("alanine", config);
        let model = ReuseModel {
            bytes: 2e9, // the paper's ≥2 GB sampled dataset
            eri_gen_mbs: gamess_eri_rate_mbs(&label),
            reuse_count: reuse,
        };
        let orig = model.original();
        print_row(
            &[
                format!("Original {label}"),
                "-".to_string(),
                "1.000".to_string(),
                "-".to_string(),
                "-".to_string(),
                "1.000".to_string(),
            ],
            &widths,
        );
        for &eb in &[1e-11, 1e-10, 1e-9] {
            let prof = Codec::Pastri.profile(&ds.values, config, eb);
            let fast = model.with_compressor(&prof);
            let norm = |s: f64| format!("{:.3}", s / orig.total_s());
            print_row(
                &[
                    format!("PaSTRI infra. {label}"),
                    format!("{eb:.0e}"),
                    norm(fast.calculate_s),
                    norm(fast.compress_s),
                    norm(fast.decompress_s),
                    norm(fast.total_s()),
                ],
                &widths,
            );
            assert!(
                fast.total_s() < orig.total_s(),
                "PaSTRI infrastructure must beat recomputation"
            );
        }
    }
    println!(
        "\npaper: ~87% of GAMESS Hartree-Fock time is integral computation \
         ((dd|dd) 322.82 MB/s, (ff|ff) 622.81 MB/s) vs ~1 GB/s PaSTRI \
         decompression -> the compress-once infrastructure wins for any \
         realistic reuse count."
    );
}
