//! Observability-plane replay: proves the trace-id stream is a pure
//! function of the seed, measures what tracing and the event journal
//! cost when the recorder is on, and re-checks the "free when off"
//! budget with the journal call included. Emitted as `BENCH_obs.json`.
//!
//! Three measurements:
//!
//! 1. **Trace determinism**: fold thousands of [`telemetry::trace_ids`]
//!    contexts per seed into a signature, twice, and assert the folds
//!    are bit-identical — and that the stateful
//!    [`telemetry::new_trace`] stream replays the same ids after
//!    [`telemetry::set_trace_seed`]. The signatures land in the JSON so
//!    CI can diff them across reruns and thread counts.
//! 2. **Enabled-path costs**: span recording with a trace context
//!    installed vs untraced (the stamp is one thread-local read), and
//!    the journal's cost per event once the ring is saturated and
//!    drop-counting.
//! 3. **Disabled overhead**: the telemetry_stages methodology with the
//!    journal touch point added — `calls-per-block × ns-per-call /
//!    block-compress-ns` must stay under the 2 % budget.
//!
//! `PASTRI_BENCH_SCALE` scales the dataset like the other benches.

use std::time::Instant;

use bench::{geometry_of, standard_dataset};
use pastri::Compressor;
use qchem::basis::BfConfig;

/// Instrumentation touch points per compressed block once the
/// observability plane exists: the 12 span/counter calls the stage
/// bench counts, plus slack for a journal call and the slow-request
/// clock check on serving paths.
const CALLS_PER_BLOCK: f64 = 14.0;

/// Ids folded per seed for the determinism signature.
const IDS_PER_SEED: u64 = 4096;

/// Order-sensitive fold of one seed's trace-id stream.
fn trace_signature(seed: u64) -> u64 {
    let mut sig = 0u64;
    for n in 0..IDS_PER_SEED {
        let ctx = telemetry::trace_ids(seed, n);
        sig = sig.rotate_left(7) ^ ctx.trace_id ^ ctx.span_id.rotate_left(32);
    }
    sig
}

fn main() {
    let seeds = [11u64, 42, 77];

    // ---- 1. Trace-id determinism. ----
    let mut signatures = Vec::new();
    for &seed in &seeds {
        let a = trace_signature(seed);
        let b = trace_signature(seed);
        assert_eq!(a, b, "trace_ids(seed={seed}) must be pure");
        // The stateful stream replays the pure function.
        telemetry::set_trace_seed(seed);
        for n in 0..64 {
            assert_eq!(
                telemetry::new_trace(),
                telemetry::trace_ids(seed, n),
                "new_trace() diverged from trace_ids at seed {seed}, n {n}"
            );
        }
        signatures.push(a);
        println!("seed {seed:>10}: trace signature {a:016x}");
    }
    assert_ne!(signatures[0], signatures[1], "distinct seeds must decorrelate");

    // ---- 2a. Traced vs untraced span recording (recorder on). ----
    const SPAN_REPS: u64 = 100_000;
    telemetry::reset();
    telemetry::set_enabled(true);
    let t = Instant::now();
    for _ in 0..SPAN_REPS {
        let _s = telemetry::span("obs.bench");
        std::hint::black_box(());
    }
    let untraced_ns = t.elapsed().as_nanos() as f64 / SPAN_REPS as f64;
    telemetry::reset();
    let guard = telemetry::push_trace(telemetry::trace_ids(1, 0));
    let t = Instant::now();
    for _ in 0..SPAN_REPS {
        let _s = telemetry::span("obs.bench");
        std::hint::black_box(());
    }
    let traced_ns = t.elapsed().as_nanos() as f64 / SPAN_REPS as f64;
    drop(guard);
    let tracing_overhead_pct =
        if untraced_ns > 0.0 { (traced_ns - untraced_ns) / untraced_ns * 100.0 } else { 0.0 };
    println!(
        "enabled span: {untraced_ns:.1} ns untraced, {traced_ns:.1} ns traced \
         ({tracing_overhead_pct:+.1}%)"
    );

    // ---- 2b. Journal cost with the ring saturated. ----
    const JOURNAL_REPS: u64 = 50_000;
    telemetry::reset();
    let t = Instant::now();
    for i in 0..JOURNAL_REPS {
        telemetry::journal("obs.bench", i, 0);
    }
    let journal_ns = t.elapsed().as_nanos() as f64 / JOURNAL_REPS as f64;
    let snap = telemetry::snapshot();
    let journal_drops: u64 = snap.events_dropped.iter().map(|c| c.value).sum();
    assert_eq!(
        snap.events.len() as u64 + journal_drops,
        JOURNAL_REPS,
        "journal ring + drop counters must account for every event"
    );
    telemetry::set_enabled(false);
    println!(
        "journal: {journal_ns:.1} ns/event saturated, {} retained, {journal_drops} dropped",
        snap.events.len()
    );

    // ---- 3. Disabled-overhead budget, journal included. ----
    let eb = 1e-10;
    let config = BfConfig::dd_dd();
    let ds = standard_dataset("benzene", config);
    let geom = geometry_of(config);
    let compressor = Compressor::new(geom, eb);
    let blocks = ds.values.len() / geom.block_size();
    let baseline = compressor.compress(&ds.values); // warm-up
    let t = Instant::now();
    let again = compressor.compress(&ds.values);
    let disabled_ns = t.elapsed().as_nanos() as f64;
    assert_eq!(again, baseline, "disabled recorder must not change output");
    let block_ns = disabled_ns / blocks.max(1) as f64;

    const REPS: u64 = 2_000_000;
    assert!(!telemetry::is_enabled());
    let t = Instant::now();
    for i in 0..REPS {
        telemetry::counter_add("bench.noop", 1);
        telemetry::journal("bench.noop", i, 0);
        std::hint::black_box(());
    }
    // Two disabled calls per rep; ns_per_call is the per-touch-point cost.
    let ns_per_call = t.elapsed().as_nanos() as f64 / (2 * REPS) as f64;
    let overhead_pct = CALLS_PER_BLOCK * ns_per_call / block_ns * 100.0;
    println!(
        "disabled recorder: {ns_per_call:.2} ns/call, {CALLS_PER_BLOCK} calls/block, \
         {block_ns:.0} ns/block -> {overhead_pct:.3}% overhead"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-recorder overhead {overhead_pct:.3}% exceeds the 2% budget"
    );

    let sig_json: Vec<String> = seeds
        .iter()
        .zip(&signatures)
        .map(|(s, sig)| format!("    {{ \"seed\": {s}, \"signature\": \"{sig:016x}\" }}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"obs_replay\",\n  \"ids_per_seed\": {IDS_PER_SEED},\n  \
         \"trace_signatures\": [\n{}\n  ],\n  \"span_untraced_ns\": {untraced_ns:.1},\n  \
         \"span_traced_ns\": {traced_ns:.1},\n  \
         \"tracing_overhead_pct\": {tracing_overhead_pct:.2},\n  \
         \"journal_ns_per_event\": {journal_ns:.1},\n  \
         \"journal_drops\": {journal_drops},\n  \
         \"disabled_ns_per_call\": {ns_per_call:.3},\n  \
         \"calls_per_block\": {CALLS_PER_BLOCK},\n  \
         \"block_compress_ns\": {block_ns:.0},\n  \
         \"disabled_overhead_pct\": {overhead_pct:.4},\n  \"overhead_budget_pct\": 2.0\n}}\n",
        sig_json.join(",\n"),
    );
    std::fs::write("BENCH_obs.json", &json).expect("writing BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
