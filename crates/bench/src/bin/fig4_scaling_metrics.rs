//! Fig. 4 (table) — compression ratio by pattern-scaling metric.
//!
//! Paper values on its workload: FR N/A, ER 17.46, AR 16.92, AAR 17.44,
//! IS 17.29 — ER wins and FR is unusable. This binary sweeps all five
//! metrics over the standard datasets at EB = 1e-10 and prints the same
//! table; expect the same ordering (ER best, FR far behind), not the
//! same absolute values (different data).

use bench::{geometry_of, print_header, print_row, standard_dataset, MOLECULES};
use pastri::{Compressor, CompressorOptions, ScalingMetric};
use qchem::basis::BfConfig;

fn main() {
    let eb = 1e-10;
    println!("Fig. 4 reproduction — compression ratio by scaling metric (EB = {eb:.0e})\n");
    let configs = [BfConfig::dd_dd(), BfConfig::ff_ff()];
    let mut totals: Vec<(u64, u64)> = vec![(0, 0); ScalingMetric::ALL.len()];

    let widths = [22usize, 8, 8, 8, 8, 8];
    print_header(&["dataset", "FR", "ER", "AR", "AAR", "IS"], &widths);
    for mol in MOLECULES {
        for config in configs {
            let ds = standard_dataset(mol, config);
            let mut cells = vec![format!("{mol} {}", config.label())];
            for (mi, metric) in ScalingMetric::ALL.iter().enumerate() {
                let compressor = Compressor::with_options(
                    geometry_of(config),
                    eb,
                    CompressorOptions {
                        metric: *metric,
                        ..Default::default()
                    },
                );
                let bytes = compressor.compress(&ds.values);
                totals[mi].0 += (ds.values.len() * 8) as u64;
                totals[mi].1 += bytes.len() as u64;
                cells.push(format!(
                    "{:.2}",
                    (ds.values.len() * 8) as f64 / bytes.len() as f64
                ));
            }
            print_row(&cells, &widths);
        }
    }
    let mut cells = vec!["OVERALL".to_string()];
    let mut overall: Vec<f64> = Vec::new();
    for (orig, comp) in &totals {
        let cr = *orig as f64 / *comp as f64;
        overall.push(cr);
        cells.push(format!("{cr:.2}"));
    }
    print_row(&cells, &widths);

    println!("\npaper (GAMESS workload): FR N/A | ER 17.46 | AR 16.92 | AAR 17.44 | IS 17.29");
    println!(
        "note: as in the paper, the four usable metrics land within a few percent of\n\
         each other; the exact ordering depends on the block population. The paper's\n\
         two robust claims are checked below."
    );

    // Claim 1 (on Eq.-3 model data at volume): ER beats FR.
    let config = BfConfig::dd_dd();
    let model = qchem::dataset::EriDataset::generate_model(config, 1000, 4242);
    let raw = (model.values.len() * 8) as f64;
    let cr_of = |metric: ScalingMetric, values: &[f64]| {
        let c = Compressor::with_options(
            geometry_of(config),
            eb,
            CompressorOptions {
                metric,
                ..Default::default()
            },
        );
        (values.len() * 8) as f64 / c.compress(values).len() as f64
    };
    let _ = raw;
    let (fr_m, er_m) = (
        cr_of(ScalingMetric::Fr, &model.values),
        cr_of(ScalingMetric::Er, &model.values),
    );
    println!("\nmodel data (1000 far-field blocks): FR {fr_m:.2} vs ER {er_m:.2} -> ER wins: {}", er_m > fr_m);

    // Claim 2: FR is unusable ("N/A") when first data points are near
    // zero — exactly the failure mode the paper names. Blocks whose
    // pattern starts at ~0 (a node of the shape function) collapse FR.
    let geom = geometry_of(config);
    let sbs = geom.subblock_size;
    let mut data = Vec::new();
    for b in 0..200usize {
        let amp = 1e-6;
        for j in 0..geom.num_subblocks {
            let s = ((j + b) as f64 * 0.7).cos();
            for i in 0..sbs {
                // sin(pi i / n): exactly 0 at i = 0 for every sub-block.
                let q = (std::f64::consts::PI * i as f64 / sbs as f64).sin();
                data.push(amp * s * q + 1e-11 * ((i * 31 + j * 7 + b) % 13) as f64);
            }
        }
    }
    let (fr_z, er_z) = (
        cr_of(ScalingMetric::Fr, &data),
        cr_of(ScalingMetric::Er, &data),
    );
    println!(
        "zero-first-element data: FR {fr_z:.2} vs ER {er_z:.2} -> FR collapses by {:.1}x \
         (the paper's \"N/A\")",
        er_z / fr_z
    );
    assert!(er_z > 1.5 * fr_z, "FR must collapse on zero-first data");
}
