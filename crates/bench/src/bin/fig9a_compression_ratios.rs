//! Fig. 9(a) — compression ratios: PaSTRI vs SZ vs ZFP.
//!
//! Paper: at EB = 1e-10, SZ reaches 7.24×, ZFP 5.92×, PaSTRI up to 16.8×
//! (~2.5× better on average). Three molecules × {(dd|dd),(ff|ff)} ×
//! EB ∈ {1e-11, 1e-10, 1e-9}. A lossless row (Gzip-like, FPC) backs the
//! related-work claim of ~1.1–2×.

use bench::{print_header, print_row, standard_dataset, Codec, ERROR_BOUNDS, MOLECULES};
use qchem::basis::BfConfig;

fn main() {
    println!("Fig. 9(a) reproduction — compression ratios\n");
    let widths = [9usize, 22, 8, 8, 8];
    for &eb in ERROR_BOUNDS.iter() {
        println!("EB = {eb:.0e}:");
        print_header(&["", "dataset", "SZ", "ZFP", "PaSTRI"], &widths);
        let mut sums = [(0u64, 0u64); 3];
        for mol in MOLECULES {
            for config in [BfConfig::dd_dd(), BfConfig::ff_ff()] {
                let ds = standard_dataset(mol, config);
                let mut cells = vec![String::new(), format!("{mol} {}", config.label())];
                for (ci, codec) in Codec::ALL.iter().enumerate() {
                    let bytes = codec.compress(&ds.values, config, eb);
                    // Verify the error bound while we're here.
                    let back = codec.decompress(&bytes);
                    let max_err = ds
                        .values
                        .iter()
                        .zip(&back)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        max_err <= eb * (1.0 + 1e-12),
                        "{} violated EB {eb:e}: {max_err:e}",
                        codec.name()
                    );
                    sums[ci].0 += (ds.values.len() * 8) as u64;
                    sums[ci].1 += bytes.len() as u64;
                    cells.push(format!(
                        "{:.2}",
                        (ds.values.len() * 8) as f64 / bytes.len() as f64
                    ));
                }
                print_row(&cells, &widths);
            }
        }
        let avg: Vec<f64> = sums.iter().map(|(o, c)| *o as f64 / *c as f64).collect();
        print_row(
            &[
                String::new(),
                "AVERAGE".to_string(),
                format!("{:.2}", avg[0]),
                format!("{:.2}", avg[1]),
                format!("{:.2}", avg[2]),
            ],
            &widths,
        );
        println!(
            "  shape check: PaSTRI/SZ = {:.2}x, PaSTRI/ZFP = {:.2}x  (paper at 1e-10: 2.3x, 2.8x)\n",
            avg[2] / avg[0],
            avg[2] / avg[1]
        );
    }

    // Related-work lossless row (Sec. II: "1.1~2 in most cases").
    println!("lossless baselines (related-work claim):");
    let widths = [22usize, 10, 10];
    print_header(&["dataset", "gzip-like", "FPC"], &widths);
    for mol in MOLECULES {
        let ds = standard_dataset(mol, BfConfig::dd_dd());
        let raw = (ds.values.len() * 8) as f64;
        let gz = lossless::deflate_like::compress_doubles(&ds.values).len() as f64;
        let fp = lossless::fpc::compress(&ds.values).len() as f64;
        print_row(
            &[
                format!("{mol} (dd|dd)"),
                format!("{:.2}", raw / gz),
                format!("{:.2}", raw / fp),
            ],
            &widths,
        );
    }
}
