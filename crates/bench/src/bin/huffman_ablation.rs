//! Sec. IV-C ablation — why PaSTRI uses fixed trees instead of Huffman.
//!
//! The paper gives three arguments against Huffman-coding the ECQ stream:
//! the dictionary must be stored, huge sparse alphabets with
//! single-occurrence values hurt it, and dictionary construction
//! serializes the (otherwise block-parallel) pipeline. This binary
//! quantifies the size side of that trade on real data, comparing per
//! block:
//!
//! * Tree 5 payload bits (what PaSTRI ships),
//! * per-block Huffman: optimal code built per block + its serialized
//!   dictionary (the apples-to-apples alternative that keeps block
//!   independence),
//! * dataset-global Huffman payload with one shared dictionary (the
//!   serializing variant the paper warns about).

use bench::{geometry_of, print_header, print_row, standard_dataset, MOLECULES};
use codecs::huffman::HuffmanCode;
use pastri::{ecq_bits, fit_pattern, EncodingTree, Quantizer, ScaleQuantizer, ScalingMetric};
use qchem::basis::BfConfig;

/// Reconstructs the per-block ECQ stream exactly as the compressor does.
fn block_ecq(block: &[f64], geom: pastri::BlockGeometry, quant: &Quantizer) -> Option<Vec<i64>> {
    let ext = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if ext <= quant.eb() {
        return None; // all-zero block, no ECQ stream at all
    }
    let fit = fit_pattern(ScalingMetric::Er, &geom, block);
    let sbs = geom.subblock_size;
    let pattern = &block[fit.pattern_sb * sbs..(fit.pattern_sb + 1) * sbs];
    let (pq, pb) = quant.quantize_pattern(pattern)?;
    let sq = ScaleQuantizer::new(pb);
    let phat: Vec<f64> = pq.iter().map(|&q| quant.dequantize(q)).collect();
    let mut ecq = Vec::with_capacity(block.len());
    for (j, &s) in fit.scales.iter().enumerate() {
        let shat = sq.dequantize(sq.quantize(s));
        for i in 0..sbs {
            ecq.push(quant.quantize(block[j * sbs + i] - shat * phat[i])?);
        }
    }
    Some(ecq)
}

/// Symbol mapping for Huffman: clamp ECQ into a dense alphabet by
/// zig-zagging (the dictionary-size problem the paper describes appears
/// immediately: the alphabet must cover the largest |ECQ| in scope).
fn to_symbols(ecq: &[i64]) -> (Vec<u32>, usize) {
    let zigzag = |v: i64| -> u32 { ((v << 1) ^ (v >> 63)) as u32 };
    let syms: Vec<u32> = ecq.iter().map(|&v| zigzag(v)).collect();
    let alphabet = syms.iter().copied().max().unwrap_or(0) as usize + 1;
    (syms, alphabet)
}

fn main() {
    let eb = 1e-10;
    println!("Sec. IV-C ablation — fixed trees vs Huffman for ECQ (EB = {eb:.0e})\n");
    let widths = [22usize, 12, 16, 16, 12];
    print_header(
        &["dataset", "Tree5 bits", "blk-Huff bits", "(dict bits)", "global-Huff"],
        &widths,
    );

    for mol in MOLECULES {
        let config = BfConfig::dd_dd();
        let ds = standard_dataset(mol, config);
        let geom = geometry_of(config);
        let quant = Quantizer::new(eb);

        let mut tree5_bits = 0u64;
        let mut blk_huff_payload = 0u64;
        let mut blk_huff_dict = 0u64;
        let mut all_syms: Vec<u32> = Vec::new();
        let mut global_alphabet = 0usize;
        // Separate tallies for the paper's dominant case: small-EC blocks.
        let mut small_tree5 = 0u64;
        let mut small_huff = 0u64;

        for b in 0..ds.num_blocks() {
            let Some(ecq) = block_ecq(ds.block(b), geom, &quant) else {
                continue;
            };
            let ecb_max = ecq.iter().map(|&v| ecq_bits(v)).max().unwrap_or(1).max(2);
            let t5 = EncodingTree::Tree5.stream_cost(&ecq, ecb_max);
            tree5_bits += t5;

            let (syms, alphabet) = to_symbols(&ecq);
            if let Some(code) = {
                let mut freqs = vec![0u64; alphabet];
                for &s in &syms {
                    freqs[s as usize] += 1;
                }
                HuffmanCode::from_frequencies(&freqs)
            } {
                let payload: u64 = syms
                    .iter()
                    .map(|&s| u64::from(code.symbol_cost(s as usize).unwrap()))
                    .sum();
                let mut dict = Vec::new();
                code.write_table(&mut dict);
                blk_huff_payload += payload;
                blk_huff_dict += dict.len() as u64 * 8;
                if ecb_max <= 3 {
                    small_tree5 += t5;
                    small_huff += payload + dict.len() as u64 * 8;
                }
            }
            global_alphabet = global_alphabet.max(alphabet);
            all_syms.extend(syms);
        }

        // Global Huffman: one dictionary over the whole dataset.
        let mut freqs = vec![0u64; global_alphabet.max(1)];
        for &s in &all_syms {
            freqs[s as usize] += 1;
        }
        let global_bits = HuffmanCode::from_frequencies(&freqs).map_or(0, |code| {
            let payload: u64 = all_syms
                .iter()
                .map(|&s| u64::from(code.symbol_cost(s as usize).unwrap()))
                .sum();
            let mut dict = Vec::new();
            code.write_table(&mut dict);
            payload + dict.len() as u64 * 8
        });

        print_row(
            &[
                format!("{mol} (dd|dd)"),
                format!("{tree5_bits}"),
                format!("{}", blk_huff_payload + blk_huff_dict),
                format!("({blk_huff_dict})"),
                format!("{global_bits}"),
            ],
            &widths,
        );

        // The paper's point, checked where it bites: on the small-EC
        // blocks that dominate its datasets (types 0-2), the per-block
        // dictionary does not amortize and Tree 5 wins outright.
        println!(
            "    small-EC blocks only: Tree5 {small_tree5} bits vs per-block Huffman {small_huff} bits"
        );
        if small_tree5 > 0 {
            assert!(
                small_tree5 <= small_huff,
                "{mol}: Tree5 must beat per-block Huffman on small-EC blocks"
            );
        }
        // Dictionary overhead is a real fraction of the Huffman total.
        let dict_frac = blk_huff_dict as f64 / (blk_huff_payload + blk_huff_dict).max(1) as f64;
        println!("    per-block dictionaries: {:.1} % of the Huffman total", dict_frac * 100.0);
    }

    println!(
        "\npaper Sec. IV-C: fixed trees need no dictionary, tolerate huge sparse\n\
         alphabets, and keep blocks independent. Confirmed: on the small-EC\n\
         blocks that dominate the paper's datasets, Tree 5 beats per-block\n\
         Huffman + dictionary; on large-EC (type 3) blocks Huffman's payload\n\
         advantage grows, but only the *global*-dictionary variant realizes it\n\
         at scale — and that serializes the block-parallel pipeline."
    );
}
