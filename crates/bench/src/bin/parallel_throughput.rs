//! Parallel compression throughput — blocks/s and MB/s vs thread count.
//!
//! Seeds the perf trajectory for the paper's Sec. IV-C/Fig. 9cd
//! throughput claims now that the runtime is genuinely parallel:
//! compresses the `(dd|dd)` and `(ff|ff)` model datasets under crews of
//! 1/2/4/8 threads (the in-memory container fan-out, the streaming
//! pipeline, and the crash-safe durable file path — so the JSON also
//! records what the fsync'd checkpoint batches cost) and writes
//! `BENCH_parallel.json`.
//!
//! Numbers are *measured on this machine* — the JSON records
//! `available_parallelism` so a reader can tell a 1-core container
//! (where every speedup is ~1.0 and the pool only adds overhead) from
//! real parallel hardware. `PASTRI_BENCH_SCALE` scales the dataset;
//! `PASTRI_BENCH_REPS` the repetitions per measurement (default 3,
//! best-of).

use std::fmt::Write as _;
use std::time::Instant;

use bench::{bench_scale, geometry_of, print_header, print_row, DD_BLOCKS, FF_BLOCKS};
use pastri::durable_stream::DurableFileWriter;
use pastri::stream::ParallelStreamWriter;
use pastri::Compressor;
use qchem::basis::BfConfig;
use qchem::dataset::EriDataset;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EB: f64 = 1e-10;

struct Measurement {
    threads: usize,
    container_blocks_per_s: f64,
    container_mb_per_s: f64,
    stream_blocks_per_s: f64,
    stream_mb_per_s: f64,
    /// Durable streaming to a real file: fsync'd checkpoint batches
    /// through the `<path>.journal` write path (`DurableFileWriter`).
    durable_blocks_per_s: f64,
    durable_mb_per_s: f64,
}

impl Measurement {
    /// Durable-mode slowdown vs the in-memory streaming pipeline, in
    /// percent — the price of crash safety (file I/O + fsync batches).
    fn durable_overhead_pct(&self) -> f64 {
        (self.stream_blocks_per_s / self.durable_blocks_per_s - 1.0) * 100.0
    }
}

fn reps() -> usize {
    std::env::var("PASTRI_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Best-of-`reps` wall time for `op`, in seconds.
fn best_secs(reps: usize, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        op();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn measure(config: BfConfig, num_blocks: usize) -> (usize, Vec<Measurement>) {
    let ds = EriDataset::generate_model(config, num_blocks, 0x5eed);
    let compressor = Compressor::new(geometry_of(config), EB);
    let mb = (ds.values.len() * 8) as f64 / 1e6;
    let reps = reps();
    let rows = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let container_secs = best_secs(reps, || {
                let bytes = pool.install(|| compressor.compress(&ds.values));
                std::hint::black_box(bytes);
            });
            let stream_secs = best_secs(reps, || {
                let mut w =
                    ParallelStreamWriter::new(std::io::sink(), compressor, 8, threads).unwrap();
                for chunk in ds.values.chunks(8 * compressor.geometry().block_size()) {
                    w.write_values(chunk).unwrap();
                }
                w.finish().unwrap();
            });
            let durable_path = std::env::temp_dir().join(format!(
                "pastri-bench-durable-{}-{threads}.pstrs",
                std::process::id()
            ));
            let durable_secs = best_secs(reps, || {
                // The batch crew comes from the installed pool.
                pool.install(|| {
                    let mut w =
                        DurableFileWriter::create(&durable_path, compressor, 8, 8).unwrap();
                    for chunk in ds.values.chunks(8 * compressor.geometry().block_size()) {
                        w.write_values(chunk).unwrap();
                    }
                    w.finish().unwrap();
                });
            });
            let _ = std::fs::remove_file(&durable_path);
            Measurement {
                threads,
                container_blocks_per_s: num_blocks as f64 / container_secs,
                container_mb_per_s: mb / container_secs,
                stream_blocks_per_s: num_blocks as f64 / stream_secs,
                stream_mb_per_s: mb / stream_secs,
                durable_blocks_per_s: num_blocks as f64 / durable_secs,
                durable_mb_per_s: mb / durable_secs,
            }
        })
        .collect();
    (num_blocks, rows)
}

fn dataset_json(label: &str, num_blocks: usize, rows: &[Measurement]) -> String {
    let base = rows
        .iter()
        .find(|m| m.threads == 1)
        .expect("thread count 1 is always measured");
    let mut s = String::new();
    let _ = write!(s, "    {{\n      \"dataset\": \"{label}\",\n");
    let _ = write!(s, "      \"blocks\": {num_blocks},\n      \"runs\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "        {{\"threads\": {}, \"container_blocks_per_s\": {:.1}, \
             \"container_mb_per_s\": {:.2}, \"stream_blocks_per_s\": {:.1}, \
             \"stream_mb_per_s\": {:.2}, \"durable_blocks_per_s\": {:.1}, \
             \"durable_mb_per_s\": {:.2}, \"durable_overhead_pct\": {:.1}, \
             \"container_speedup_vs_1\": {:.3}, \
             \"stream_speedup_vs_1\": {:.3}}}{}",
            m.threads,
            m.container_blocks_per_s,
            m.container_mb_per_s,
            m.stream_blocks_per_s,
            m.stream_mb_per_s,
            m.durable_blocks_per_s,
            m.durable_mb_per_s,
            m.durable_overhead_pct(),
            m.container_blocks_per_s / base.container_blocks_per_s,
            m.stream_blocks_per_s / base.stream_blocks_per_s,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("      ]\n    }");
    s
}

fn main() {
    let hw_threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!("Parallel compression throughput (EB = {EB:.0e}, best of {} reps)", reps());
    println!("available_parallelism on this machine: {hw_threads}\n");

    let scale = bench_scale();
    let datasets = [
        ("(dd|dd)", BfConfig::dd_dd(), ((DD_BLOCKS as f64 * scale).max(4.0)) as usize),
        ("(ff|ff)", BfConfig::ff_ff(), ((FF_BLOCKS as f64 * scale).max(4.0)) as usize),
    ];

    let widths = [9usize, 8, 16, 12, 16, 12, 13, 12];
    let mut json_sections = Vec::new();
    for (label, config, blocks) in datasets {
        let (num_blocks, rows) = measure(config, blocks);
        println!("{label} — {num_blocks} blocks of {}", config.block_size());
        print_header(
            &[
                "",
                "threads",
                "cont blk/s",
                "cont MB/s",
                "strm blk/s",
                "strm MB/s",
                "durbl MB/s",
                "dur ovh %",
            ],
            &widths,
        );
        for m in &rows {
            print_row(
                &[
                    String::new(),
                    m.threads.to_string(),
                    format!("{:.0}", m.container_blocks_per_s),
                    format!("{:.1}", m.container_mb_per_s),
                    format!("{:.0}", m.stream_blocks_per_s),
                    format!("{:.1}", m.stream_mb_per_s),
                    format!("{:.1}", m.durable_mb_per_s),
                    format!("{:.1}", m.durable_overhead_pct()),
                ],
                &widths,
            );
        }
        let base = &rows[0];
        let at4 = rows.iter().find(|m| m.threads == 4).unwrap();
        println!(
            "  container speedup at 4 threads: {:.2}x\n",
            at4.container_blocks_per_s / base.container_blocks_per_s
        );
        json_sections.push(dataset_json(label, num_blocks, &rows));
    }

    let json = format!(
        "{{\n  \"bench\": \"parallel_throughput\",\n  \"error_bound\": {EB:e},\n  \
         \"available_parallelism\": {hw_threads},\n  \"reps\": {},\n  \
         \"scale\": {scale},\n  \"datasets\": [\n{}\n  ]\n}}\n",
        reps(),
        json_sections.join(",\n")
    );
    std::fs::write("BENCH_parallel.json", &json).expect("writing BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
    if hw_threads < 4 {
        println!(
            "note: only {hw_threads} hardware thread(s) available — speedups near 1.0 \
             reflect the hardware, not the runtime"
        );
    }
}
