//! Fig. 3 — the latent pattern in ERI blocks.
//!
//! Regenerates the paper's demonstration: a `(dd|dd)` block from a real
//! molecule, printed as (a) the raw 1-D view showing six repeating
//! sub-blocks, (b) the first two sub-blocks overlapped, (c) the second
//! sub-block rescaled onto the first, and (d) the deviation and the
//! post-compression absolute error at EB = 1e-10.

use bench::{benchmark_molecule, geometry_of};
use pastri::Compressor;
use qchem::basis::BfConfig;
use qchem::dataset::{DatasetSpec, EriDataset};

fn ascii_plot(label: &str, series: &[(&str, Vec<f64>)], height: usize) {
    println!("\n{label}");
    let all: Vec<f64> = series.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    let width = series[0].1.len();
    let mut grid = vec![vec![b' '; width]; height];
    for (si, (_, v)) in series.iter().enumerate() {
        let glyph = [b'*', b'o', b'.'][si % 3];
        for (x, &val) in v.iter().enumerate() {
            let y = ((val - lo) / span * (height - 1) as f64).round() as usize;
            grid[height - 1 - y.min(height - 1)][x] = glyph;
        }
    }
    for row in grid {
        println!("  {}", String::from_utf8_lossy(&row));
    }
    println!(
        "  range [{lo:+.3e}, {hi:+.3e}]   series: {}",
        series
            .iter()
            .enumerate()
            .map(|(i, (n, _))| format!("{} = {n}", ['*', 'o', '.'][i % 3]))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn main() {
    let config = BfConfig::dd_dd();
    let spec = DatasetSpec {
        molecule: benchmark_molecule("alanine"),
        config,
        max_blocks: 24,
        seed: 0x5eed,
    };
    let ds = EriDataset::generate(&spec);
    let sbs = config.subblock_size();

    // Pick the block whose first two sub-blocks match best under scaling
    // (the paper hand-picked a representative far-field block).
    let mut best_block = 0usize;
    let mut best_dev = f64::INFINITY;
    for b in 0..ds.num_blocks() {
        let block = ds.block(b);
        let ext = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        if ext < 1e-9 {
            continue;
        }
        let (s0, s1) = (&block[..sbs], &block[sbs..2 * sbs]);
        let anchor = (0..sbs)
            .max_by(|&x, &y| s0[x].abs().partial_cmp(&s0[y].abs()).unwrap())
            .unwrap();
        if s0[anchor] == 0.0 {
            continue;
        }
        let scale = s1[anchor] / s0[anchor];
        let dev: f64 = (0..sbs)
            .map(|i| (s1[i] - scale * s0[i]).abs())
            .fold(0.0, f64::max)
            / ext;
        if dev < best_dev {
            best_dev = dev;
            best_block = b;
        }
    }
    let block = ds.block(best_block);

    println!("Fig. 3 reproduction — pattern structure of a (dd|dd) ERI block");
    println!("molecule: tri-alanine cluster, block {best_block} of {}", ds.num_blocks());

    // (a) full block: 36 sub-blocks of 36 (paper shows the first 6).
    let first6: Vec<f64> = block[..6 * sbs].to_vec();
    ascii_plot("(a) first six sub-blocks of the block (1-D view)", &[("data", first6)], 12);

    // (b) first two sub-blocks overlapped.
    let s0: Vec<f64> = block[..sbs].to_vec();
    let s1: Vec<f64> = block[sbs..2 * sbs].to_vec();
    ascii_plot(
        "(b) sub-blocks [0:35] and [36:71] overlapped",
        &[("sub-block 0", s0.clone()), ("sub-block 1", s1.clone())],
        12,
    );

    // (c) sub-block 1 rescaled onto sub-block 0.
    let anchor = (0..sbs)
        .max_by(|&x, &y| s0[x].abs().partial_cmp(&s0[y].abs()).unwrap())
        .unwrap();
    let scale = s1[anchor] / s0[anchor];
    let rescaled: Vec<f64> = s1.iter().map(|v| v / scale).collect();
    ascii_plot(
        "(c) sub-block 1 rescaled to match sub-block 0",
        &[("sub-block 0", s0.clone()), ("rescaled 1", rescaled.clone())],
        12,
    );

    // (d) deviation + compression error at EB = 1e-10.
    let eb = 1e-10;
    let compressor = Compressor::new(geometry_of(config), eb);
    let bytes = compressor.compress(block);
    let back = compressor.decompress(&bytes).unwrap();
    println!("\n(d) |deviation| of scaled match and |compression error| at EB = 1e-10");
    println!("      idx   |sub1 - scale*sub0|   |orig - decompressed|");
    let mut max_dev = 0.0f64;
    let mut max_err = 0.0f64;
    for i in 0..sbs {
        let dev = (s1[i] - scale * s0[i]).abs();
        let err = (block[sbs + i] - back[sbs + i]).abs();
        max_dev = max_dev.max(dev);
        max_err = max_err.max(err);
        if i % 6 == 0 {
            println!("      {i:3}   {dev:18.3e}   {err:20.3e}");
        }
    }
    println!("      max   {max_dev:18.3e}   {max_err:20.3e}");
    assert!(max_err <= eb, "error bound violated");
    println!(
        "\nblock compressed {} B -> {} B (CR {:.1})",
        block.len() * 8,
        bytes.len(),
        (block.len() * 8) as f64 / bytes.len() as f64
    );
}
