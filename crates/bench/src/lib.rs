//! Shared harness for the figure/table reproduction binaries.
//!
//! Every `fig*`/`tab*` binary in `src/bin/` regenerates one figure or
//! table of the paper. This library provides the common pieces: the
//! standard dataset catalog (three molecules × two BF configurations, as
//! in Sec. V-A), dataset caching so repeated runs don't re-integrate,
//! compressor profiling, and table formatting.
//!
//! Dataset sizing: the paper samples production GAMESS files "down to at
//! least 2 GB". A 2 GB integral run is hours of single-core analytic
//! integration, so the default harness scale is a few MB per dataset —
//! enough for stable ratios — and every binary honours the
//! `PASTRI_BENCH_SCALE` environment variable (a float multiplier on block
//! counts) for larger runs.

use std::io::Write as _;
use std::time::Instant;

use pastri::{BlockGeometry, Compressor};
use pfs_sim::CompressorProfile;
use qchem::basis::BfConfig;
use qchem::dataset::{DatasetSpec, EriDataset};
use qchem::molecule::Molecule;

/// The paper's evaluation datasets (Sec. V-A): tri-alanine, benzene, and
/// glutamine, each with `(dd|dd)` and `(ff|ff)` configurations.
pub const MOLECULES: [&str; 3] = ["alanine", "benzene", "glutamine"];

/// Error bounds used throughout the evaluation (Fig. 9).
pub const ERROR_BOUNDS: [f64; 3] = [1e-11, 1e-10, 1e-9];

/// Baseline block counts at scale 1.0.
pub const DD_BLOCKS: usize = 400;
pub const FF_BLOCKS: usize = 48;

/// Cluster parameters representing the production-scale quartet
/// population (see DESIGN.md §2): four monomer images at 4.5 Å.
pub const CLUSTER_COPIES: usize = 4;
pub const CLUSTER_SPACING: f64 = 4.5;

/// Scale multiplier from `PASTRI_BENCH_SCALE` (default 1.0).
#[must_use]
pub fn bench_scale() -> f64 {
    std::env::var("PASTRI_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The benchmark form of a molecule: a small van-der-Waals cluster.
#[must_use]
pub fn benchmark_molecule(name: &str) -> Molecule {
    Molecule::by_name(name)
        .unwrap_or_else(|| panic!("unknown molecule {name}"))
        .cluster(CLUSTER_COPIES, CLUSTER_SPACING)
}

/// Generates (or loads from the on-disk cache) one standard dataset.
#[must_use]
pub fn standard_dataset(molecule: &str, config: BfConfig) -> EriDataset {
    let blocks = ((if config == BfConfig::ff_ff() {
        FF_BLOCKS
    } else {
        DD_BLOCKS
    }) as f64
        * bench_scale())
    .max(4.0) as usize;
    let key = format!(
        "{molecule}-{}-{blocks}-c{CLUSTER_COPIES}",
        config.label().replace(['(', ')', '|'], "")
    );
    if let Some(values) = cache_read(&key) {
        return EriDataset {
            config,
            values,
            label: format!("{molecule} {} analytic [cached]", config.label()),
        };
    }
    let spec = DatasetSpec {
        molecule: benchmark_molecule(molecule),
        config,
        max_blocks: blocks,
        seed: 0x5eed + molecule.len() as u64,
    };
    let ds = EriDataset::generate(&spec);
    cache_write(&key, &ds.values);
    ds
}

fn cache_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pastri-bench-cache");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn cache_read(key: &str) -> Option<Vec<f64>> {
    let path = cache_dir().join(format!("{key}.f64"));
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() % 8 != 0 {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

fn cache_write(key: &str, values: &[f64]) {
    let path = cache_dir().join(format!("{key}.f64"));
    if let Ok(mut f) = std::fs::File::create(path) {
        for v in values {
            let _ = f.write_all(&v.to_le_bytes());
        }
    }
}

/// A dataset paired with its PaSTRI block geometry.
#[must_use]
pub fn geometry_of(config: BfConfig) -> BlockGeometry {
    BlockGeometry::from_dims(config.dims())
}

/// Which compressor to profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    Pastri,
    Sz,
    Zfp,
}

impl Codec {
    pub const ALL: [Codec; 3] = [Codec::Sz, Codec::Zfp, Codec::Pastri];

    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Pastri => "PaSTRI",
            Codec::Sz => "SZ",
            Codec::Zfp => "ZFP",
        }
    }

    /// Compress; returns the container bytes.
    #[must_use]
    pub fn compress(&self, data: &[f64], config: BfConfig, eb: f64) -> Vec<u8> {
        match self {
            Codec::Pastri => Compressor::new(geometry_of(config), eb).compress(data),
            Codec::Sz => sz_lossy::SzCompressor::new(eb).compress(data),
            Codec::Zfp => zfp_lossy::ZfpCompressor::new(eb).compress(data),
        }
    }

    /// Decompress container bytes.
    #[must_use]
    pub fn decompress(&self, bytes: &[u8]) -> Vec<f64> {
        match self {
            Codec::Pastri => pastri::decompress(bytes).expect("pastri decompress"),
            Codec::Sz => sz_lossy::decompress(bytes).expect("sz decompress"),
            Codec::Zfp => zfp_lossy::decompress(bytes).expect("zfp decompress"),
        }
    }

    /// Measures ratio and single-core throughputs on `data`.
    #[must_use]
    pub fn profile(&self, data: &[f64], config: BfConfig, eb: f64) -> CompressorProfile {
        let mb = (data.len() * 8) as f64 / 1e6;
        let t = Instant::now();
        let compressed = self.compress(data, config, eb);
        let compress_mbs = mb / t.elapsed().as_secs_f64();
        let t = Instant::now();
        let back = self.decompress(&compressed);
        let decompress_mbs = mb / t.elapsed().as_secs_f64();
        assert_eq!(back.len(), data.len());
        CompressorProfile {
            name: self.name().to_string(),
            ratio: (data.len() * 8) as f64 / compressed.len() as f64,
            compress_mbs,
            decompress_mbs,
        }
    }
}

/// Prints a labelled markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("| {} |", row.join(" | "));
}

/// Prints a table header with separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip_smoke() {
        let config = BfConfig::dd_dd();
        let ds = EriDataset::generate_model(config, 4, 3);
        for codec in Codec::ALL {
            let bytes = codec.compress(&ds.values, config, 1e-10);
            let back = codec.decompress(&bytes);
            assert_eq!(back.len(), ds.values.len(), "{}", codec.name());
            for (a, b) in ds.values.iter().zip(&back) {
                assert!((a - b).abs() <= 1e-10, "{}", codec.name());
            }
        }
    }

    #[test]
    fn profile_has_sane_fields() {
        let config = BfConfig::dd_dd();
        let ds = EriDataset::generate_model(config, 8, 9);
        let p = Codec::Pastri.profile(&ds.values, config, 1e-10);
        assert!(p.ratio > 1.0);
        assert!(p.compress_mbs > 0.0);
        assert!(p.decompress_mbs > 0.0);
    }

    #[test]
    fn bench_scale_default() {
        // Unless the env var is set in the test environment, default 1.0.
        if std::env::var("PASTRI_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), 1.0);
        }
    }
}
