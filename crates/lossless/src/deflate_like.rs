//! DEFLATE-like lossless codec: LZSS dictionary stage + canonical Huffman
//! entropy stage, built from the `codecs` substrates. Stands in for
//! Gzip/DEFLATE in the paper's related-work comparison.
//!
//! Token encoding: the LZSS stream is split into three symbol streams —
//! a literal/length alphabet (literals 0–255, length symbol 256+len-3),
//! and a raw distance stream (15-bit fixed fields, since ERI byte streams
//! yield few matches and a distance Huffman table would not pay for
//! itself). Both literal and length symbols share one Huffman table, as
//! in DEFLATE.

use bitio::{BitReader, BitWriter};
use codecs::huffman::{HuffmanCode, MAX_CODE_LEN};
use codecs::lzss::{self, Token, MAX_MATCH, MIN_MATCH};
use codecs::varint;

use crate::LosslessError;

const MAGIC: [u8; 4] = *b"DFL0";
/// Literal/length alphabet: 256 literals + match lengths 3..=258.
const ALPHABET: usize = 256 + (MAX_MATCH - MIN_MATCH + 1);
const DIST_BITS: u32 = 15; // window = 32 KiB

/// Compresses arbitrary bytes.
#[must_use]
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lzss::tokenize(data);
    // Build the literal/length symbol stream.
    let mut freqs = vec![0u64; ALPHABET];
    for t in &tokens {
        let sym = match *t {
            Token::Literal(b) => usize::from(b),
            Token::Match { len, .. } => 256 + (len as usize - MIN_MATCH),
        };
        freqs[sym] += 1;
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    varint::write_u64(&mut out, data.len() as u64);
    varint::write_u64(&mut out, tokens.len() as u64);
    if tokens.is_empty() {
        return out;
    }
    let code = HuffmanCode::from_frequencies(&freqs).expect("nonempty token stream");
    code.write_table(&mut out);
    let mut w = BitWriter::with_capacity(data.len() / 2);
    for t in &tokens {
        match *t {
            Token::Literal(b) => code.encode_symbol(usize::from(b), &mut w),
            Token::Match { dist, len } => {
                code.encode_symbol(256 + (len as usize - MIN_MATCH), &mut w);
                // Distances are 1..=WINDOW (32768); dist-1 fits 15 bits.
                w.write_bits(u64::from(dist - 1), DIST_BITS);
            }
        }
    }
    let payload = w.into_bytes();
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, LosslessError> {
    let mut pos = 0usize;
    if bytes.get(..4) != Some(&MAGIC) {
        return Err(LosslessError::Corrupt("bad magic"));
    }
    pos += 4;
    let out_len =
        varint::read_u64(bytes, &mut pos).ok_or(LosslessError::Corrupt("bad length"))? as usize;
    let n_tokens =
        varint::read_u64(bytes, &mut pos).ok_or(LosslessError::Corrupt("bad token count"))? as usize;
    // Each token costs at least one payload bit.
    if n_tokens > bytes.len().saturating_mul(8) {
        return Err(LosslessError::Corrupt("declared token count exceeds payload"));
    }
    if n_tokens == 0 {
        return if out_len == 0 {
            Ok(Vec::new())
        } else {
            Err(LosslessError::Corrupt("empty tokens, nonzero length"))
        };
    }
    let code = HuffmanCode::read_table(bytes, &mut pos)?;
    if code.alphabet_size() > ALPHABET || code.lengths().iter().any(|&l| l > MAX_CODE_LEN) {
        return Err(LosslessError::Corrupt("bad huffman table"));
    }
    let plen =
        varint::read_u64(bytes, &mut pos).ok_or(LosslessError::Corrupt("bad payload len"))? as usize;
    let payload = bytes
        .get(pos..pos + plen)
        .ok_or(LosslessError::Corrupt("payload truncated"))?;
    let dec = code.decoder();
    let mut r = BitReader::new(payload);
    let mut tokens = Vec::with_capacity(n_tokens);
    for _ in 0..n_tokens {
        let sym = dec.decode_symbol(&mut r)? as usize;
        if sym < 256 {
            tokens.push(Token::Literal(sym as u8));
        } else {
            let len = (sym - 256 + MIN_MATCH) as u32;
            let dist = r.read_bits(DIST_BITS)? as u32 + 1;
            tokens.push(Token::Match { dist, len });
        }
    }
    let out = lzss::detokenize(&tokens).map_err(LosslessError::Codec)?;
    if out.len() != out_len {
        return Err(LosslessError::Corrupt("length mismatch after expansion"));
    }
    Ok(out)
}

/// Convenience: compress a double array by its byte image.
#[must_use]
pub fn compress_doubles(data: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(data.len() * 8);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    compress(&bytes)
}

/// Inverse of [`compress_doubles`].
pub fn decompress_doubles(bytes: &[u8]) -> Result<Vec<f64>, LosslessError> {
    let raw = decompress(bytes)?;
    if raw.len() % 8 != 0 {
        return Err(LosslessError::Corrupt("byte length not a multiple of 8"));
    }
    Ok(raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let bytes = compress(data);
        let back = decompress(&bytes).unwrap();
        assert_eq!(back, data);
        bytes.len()
    }

    #[test]
    fn empty_tiny_repetitive() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"banana banana banana banana banana");
    }

    #[test]
    fn text_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(100);
        let len = roundtrip(&data);
        assert!(len < data.len() / 4, "len {len} of {}", data.len());
    }

    #[test]
    fn doubles_roundtrip_bit_exact() {
        let data: Vec<f64> = (0..5000)
            .map(|i| (i as f64 * 0.001).sin() * 1e-6)
            .chain([f64::NAN, f64::INFINITY, -0.0])
            .collect();
        let bytes = compress_doubles(&data);
        let back = decompress_doubles(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn match_at_exact_window_distance() {
        // Regression: LZSS emits distances up to WINDOW = 32768, which
        // only fits the 15-bit field as dist-1. Force a repeat exactly
        // one window apart.
        let mut data = vec![0u8; lzss::WINDOW + 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let pattern = *b"UNIQUEPATTERN!";
        data[..pattern.len()].copy_from_slice(&pattern);
        let at = lzss::WINDOW;
        data[at..at + pattern.len()].copy_from_slice(&pattern);
        roundtrip(&data);
    }

    #[test]
    fn rejects_corrupt() {
        assert!(decompress(b"xxxx").is_err());
        // Truncation must surface as an error or decode cleanly — either
        // way it must not panic.
        let bytes = compress(b"hello hello hello hello");
        let _ = decompress(&bytes[..bytes.len() - 1]);
    }
}
