//! FPC: fast lossless compression of double-precision data
//! (Burtscher & Ratanaworabhan, IEEE Transactions on Computers 2009).
//!
//! Two hash-table value predictors run in parallel over the bit images of
//! the doubles:
//!
//! * **FCM** (finite context method) — predicts the next value from a hash
//!   of recent values,
//! * **DFCM** (differential FCM) — predicts the next *delta* from a hash
//!   of recent deltas.
//!
//! The better predictor is chosen per value (1 bit), the prediction is
//! XORed with the truth, and the residual is stored as a leading-zero-byte
//! count (3 bits) plus the surviving bytes. Incompressible data costs
//! ~0.5 % overhead; well-predicted data approaches 8× (never more, by
//! construction — which is the paper's point about lossless limits).

use bitio::{BitReader, BitWriter};
use codecs::varint;

use crate::LosslessError;

const MAGIC: [u8; 4] = *b"FPC0";
/// log2 of predictor table size (FPC's default table of 2^16 entries).
const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// FPC compressor state (both predictor tables).
struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictors {
    fn new() -> Self {
        Self {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Returns (fcm_prediction, dfcm_prediction) for the next value.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Updates tables and hashes with the actual value.
    #[inline]
    fn update(&mut self, actual: u64) {
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash = ((self.fcm_hash << 6) ^ (actual >> 48) as usize) & (TABLE_SIZE - 1);
        let delta = actual.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40) as usize) & (TABLE_SIZE - 1);
        self.last = actual;
    }
}

/// Compresses doubles losslessly with FPC.
#[must_use]
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8 / 2 + 16);
    out.extend_from_slice(&MAGIC);
    varint::write_u64(&mut out, data.len() as u64);
    let mut w = BitWriter::with_capacity(data.len() * 8);
    let mut pred = Predictors::new();
    for &v in data {
        let bits = v.to_bits();
        let (fcm, dfcm) = pred.predict();
        let xf = bits ^ fcm;
        let xd = bits ^ dfcm;
        let (sel, residual) = if xf.leading_zeros() >= xd.leading_zeros() {
            (false, xf)
        } else {
            (true, xd)
        };
        // Leading-zero BYTES. As in real FPC, the 3-bit count encodes
        // {0,1,2,3,4,5,6,8}: code 7 means a fully-zero residual (8 bytes),
        // and an actual count of 7 is rounded down to 6 — perfect
        // predictions then cost only the 4-bit header.
        let lzb = residual.leading_zeros() / 8;
        let code = match lzb {
            8 => 7u32,
            7 => 6,
            l => l,
        };
        w.write_bit(sel);
        w.write_bits(u64::from(code), 3);
        let keep_bytes = if code == 7 { 0 } else { 8 - code };
        w.write_bits(residual, keep_bytes * 8);
        pred.update(bits);
    }
    let payload = w.into_bytes();
    out.extend_from_slice(&payload);
    out
}

/// Decompresses an FPC stream.
pub fn decompress(bytes: &[u8]) -> Result<Vec<f64>, LosslessError> {
    let mut pos = 0usize;
    if bytes.get(..4) != Some(&MAGIC) {
        return Err(LosslessError::Corrupt("bad magic"));
    }
    pos += 4;
    let n = varint::read_u64(bytes, &mut pos).ok_or(LosslessError::Corrupt("bad length"))? as usize;
    let payload = bytes.get(pos..).ok_or(LosslessError::Corrupt("no payload"))?;
    // Every value costs at least 4 bits, so a valid count is bounded by
    // the payload size — reject inflated headers before allocating.
    if n > payload.len() * 2 {
        return Err(LosslessError::Corrupt("declared count exceeds payload"));
    }
    let mut r = BitReader::new(payload);
    let mut pred = Predictors::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let sel = r.read_bit()?;
        let code = r.read_bits(3)? as u32;
        let keep_bytes = if code == 7 { 0 } else { 8 - code };
        let residual = r.read_bits(keep_bytes * 8)?;
        let (fcm, dfcm) = pred.predict();
        let bits = residual ^ if sel { dfcm } else { fcm };
        pred.update(bits);
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) -> usize {
        let bytes = compress(data);
        let back = decompress(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        bytes.len()
    }

    #[test]
    fn empty_and_small() {
        roundtrip(&[]);
        roundtrip(&[0.0]);
        roundtrip(&[f64::NAN, f64::INFINITY, -0.0, 1e-300]);
    }

    #[test]
    fn constant_data_compresses_well() {
        let data = vec![std::f64::consts::PI; 10_000];
        let len = roundtrip(&data);
        // Repeated value -> FCM hits after warmup -> ~4 bits/value.
        assert!(len < 10_000, "len {len}");
    }

    #[test]
    fn linear_ramp_compresses_via_dfcm() {
        // Constant integer stride in the bit patterns: DFCM's home turf.
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let len = roundtrip(&data);
        assert!(len < 30_000, "len {len}");
    }

    #[test]
    fn random_data_overhead_bounded() {
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<f64> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits((x >> 12) | (1023u64 << 52))
            })
            .collect();
        let len = roundtrip(&data);
        // Incompressible: at most 4 bits/value overhead.
        assert!(len <= 4096 * 8 + 4096 / 2 + 16, "len {len}");
    }

    #[test]
    fn rejects_corrupt() {
        assert!(decompress(b"xxxx").is_err());
        let bytes = compress(&[1.0, 2.0, 3.0]);
        assert!(decompress(&bytes[..bytes.len() - 2]).is_err());
    }
}
