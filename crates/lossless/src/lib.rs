//! Lossless floating-point compressor baselines.
//!
//! The paper's related-work section (Sec. II) claims lossless compressors
//! achieve only ~1.1–2× on scientific floating-point data, which is the
//! motivation for error-bounded *lossy* compression. This crate provides
//! the two baselines needed to reproduce that claim:
//!
//! * [`fpc`] — FPC (Burtscher & Ratanaworabhan, IEEE ToC 2009): FCM and
//!   DFCM hash predictors, XOR residuals, leading-zero-byte coding.
//! * [`deflate_like`] — a DEFLATE-style pipeline built from the workspace
//!   substrates: LZSS tokens entropy-coded with canonical Huffman
//!   (stand-in for Gzip).

pub mod deflate_like;
pub mod fpc;

/// Errors from the lossless decoders.
#[derive(Debug)]
pub enum LosslessError {
    Corrupt(&'static str),
    Codec(codecs::CodecError),
}

impl std::fmt::Display for LosslessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LosslessError::Corrupt(m) => write!(f, "corrupt stream: {m}"),
            LosslessError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for LosslessError {}

impl From<codecs::CodecError> for LosslessError {
    fn from(e: codecs::CodecError) -> Self {
        LosslessError::Codec(e)
    }
}

impl From<bitio::ReadError> for LosslessError {
    fn from(_: bitio::ReadError) -> Self {
        LosslessError::Corrupt("bit stream truncated")
    }
}
