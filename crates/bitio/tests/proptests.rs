//! Property tests: arbitrary sequences of field writes round-trip exactly.

use bitio::{bits_for, signed_width, BitReader, BitWriter};
use proptest::prelude::*;

/// One field in a random write schedule.
#[derive(Debug, Clone)]
enum Field {
    Bit(bool),
    Unsigned { value: u64, width: u32 },
    Signed { value: i64, width: u32 },
    Align,
}

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<bool>().prop_map(Field::Bit),
        (1u32..=64).prop_flat_map(|width| {
            let max = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            (0..=max).prop_map(move |value| Field::Unsigned { value, width })
        }),
        (1u32..=64).prop_flat_map(|width| {
            let hi = if width == 64 {
                i64::MAX
            } else {
                (1i64 << (width - 1)) - 1
            };
            let lo = if width == 64 {
                i64::MIN
            } else {
                -(1i64 << (width - 1))
            };
            (lo..=hi).prop_map(move |value| Field::Signed { value, width })
        }),
        Just(Field::Align),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_field_schedule(fields in proptest::collection::vec(field_strategy(), 0..200)) {
        let mut w = BitWriter::new();
        for f in &fields {
            match *f {
                Field::Bit(b) => w.write_bit(b),
                Field::Unsigned { value, width } => w.write_bits(value, width),
                Field::Signed { value, width } => w.write_signed(value, width),
                Field::Align => w.align_to_byte(),
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for f in &fields {
            match *f {
                Field::Bit(b) => prop_assert_eq!(r.read_bit().unwrap(), b),
                Field::Unsigned { value, width } => {
                    prop_assert_eq!(r.read_bits(width).unwrap(), value)
                }
                Field::Signed { value, width } => {
                    prop_assert_eq!(r.read_signed(width).unwrap(), value)
                }
                Field::Align => r.align_to_byte(),
            }
        }
    }

    #[test]
    fn bits_for_is_tight(v in 2u64..) {
        let b = bits_for(v);
        // b bits can index v values...
        prop_assert!(b == 64 || (1u128 << b) >= u128::from(v));
        // ...and b-1 bits cannot.
        prop_assert!((1u128 << (b - 1)) < u128::from(v));
    }

    #[test]
    fn signed_width_is_tight(v in any::<i64>()) {
        let w = signed_width(v);
        prop_assert!((1..=64).contains(&w));
        if w < 64 {
            let lo = -(1i64 << (w - 1));
            let hi = (1i64 << (w - 1)) - 1;
            prop_assert!(v >= lo && v <= hi);
        }
        if w > 1 {
            // One fewer bit must not fit.
            let wm = w - 1;
            let lo = -(1i64 << (wm - 1));
            let hi = (1i64 << (wm - 1)) - 1;
            prop_assert!(v < lo || v > hi);
        }
    }

    #[test]
    fn bit_len_matches_written(widths in proptest::collection::vec(0u32..=64, 0..50)) {
        let mut w = BitWriter::new();
        let mut expected = 0u64;
        for &width in &widths {
            w.write_bits(0, width);
            expected += u64::from(width);
        }
        prop_assert_eq!(w.bit_len(), expected);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len() as u64, expected.div_ceil(8));
    }
}
