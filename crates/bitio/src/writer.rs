/// Append-only MSB-first bit sink backed by a `Vec<u8>`.
///
/// Writes are buffered in a 64-bit accumulator and flushed to the byte
/// vector whole bytes at a time, which keeps the per-bit cost low in the
/// hot encoding loops of the compressors.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bit accumulator; pending bits live in the *low* `pending` bits.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_acc`).
    pending: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` output bytes.
    #[must_use]
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            pending: 0,
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u64::from(bit);
        self.pending += 1;
        if self.pending == 8 {
            self.flush_acc();
        }
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// `width` must be ≤ 64. Bits of `value` above `width` are ignored.
    #[inline]
    pub fn write_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        if width == 0 {
            return;
        }
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        // Split so that acc never holds more than 64 bits.
        let room = 64 - self.pending;
        if width <= room {
            self.acc = if width == 64 { value } else { (self.acc << width) | value };
            self.pending += width;
        } else {
            let hi = width - room;
            self.acc = (self.acc << room) | (value >> hi);
            self.pending = 64;
            self.drain_acc();
            self.acc = value & ((1u64 << hi) - 1);
            self.pending = hi;
        }
        self.drain_acc();
    }

    /// Appends `value` as a two's-complement field of `width` bits.
    ///
    /// The caller must ensure the value fits, i.e.
    /// `bitio::signed_width(value) <= width` (checked in debug builds).
    #[inline]
    pub fn write_signed(&mut self, value: i64, width: u32) {
        debug_assert!((1..=64).contains(&width));
        debug_assert!(
            crate::signed_width(value) <= width,
            "value {value} does not fit in {width} signed bits"
        );
        self.write_bits(value as u64, width);
    }

    /// Pads with zero bits to the next byte boundary (no-op if aligned).
    pub fn align_to_byte(&mut self) {
        let rem = self.pending % 8;
        if rem != 0 {
            self.write_bits(0, 8 - rem);
        }
        self.drain_acc();
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.pending)
    }

    /// Finalizes the stream, zero-padding the final partial byte.
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }

    /// Resets to empty while keeping the byte buffer's allocation, so a
    /// writer can be reused across many blocks without reallocating.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.pending = 0;
    }

    /// Byte-aligns (zero-padding the final partial byte) and returns the
    /// encoded bytes without consuming the writer. Identical contents to
    /// [`into_bytes`](Self::into_bytes); pair with [`clear`](Self::clear)
    /// for allocation reuse.
    pub fn aligned_bytes(&mut self) -> &[u8] {
        self.align_to_byte();
        &self.bytes
    }

    /// Flush whole bytes out of the accumulator.
    #[inline]
    fn drain_acc(&mut self) {
        while self.pending >= 8 {
            self.flush_acc_byte();
        }
    }

    #[inline]
    fn flush_acc(&mut self) {
        self.flush_acc_byte();
    }

    #[inline]
    fn flush_acc_byte(&mut self) {
        debug_assert!(self.pending >= 8);
        let shift = self.pending - 8;
        let byte = if shift == 64 { 0 } else { (self.acc >> shift) as u8 };
        self.bytes.push(byte);
        self.pending -= 8;
        // Mask off the emitted bits so acc stays canonical.
        if self.pending == 0 {
            self.acc = 0;
        } else {
            self.acc &= (1u64 << self.pending) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_is_empty() {
        assert!(BitWriter::new().into_bytes().is_empty());
    }

    #[test]
    fn bit_len_counts_pending_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0, 14);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn long_field_spanning_accumulator() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(u64::MAX, 64); // forces the split path
        w.write_bits(0, 7);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes[0], 0b1111_1111);
        assert_eq!(bytes[8], 0b1000_0000);
    }

    #[test]
    fn partial_final_byte_zero_padded() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.into_bytes(), vec![0b1100_0000]);
    }

    #[test]
    fn clear_and_aligned_bytes_reuse_matches_fresh_writer() {
        let mut reused = BitWriter::new();
        reused.write_bits(0xDEAD, 16); // dirty it, then reset
        reused.clear();
        assert_eq!(reused.bit_len(), 0);

        let mut fresh = BitWriter::new();
        for w in [&mut reused, &mut fresh] {
            w.write_bits(0b101, 3);
            w.write_bits(u64::MAX, 64);
        }
        assert_eq!(reused.aligned_bytes(), fresh.into_bytes().as_slice());
    }
}
