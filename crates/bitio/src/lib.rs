//! MSB-first bit-level I/O.
//!
//! Every compressor in this workspace (PaSTRI, the SZ-style and ZFP-style
//! baselines, the lossless codecs) serializes variable-width fields into a
//! byte stream. This crate provides the two shared primitives:
//!
//! * [`BitWriter`] — append bits/fields to a growable byte buffer,
//! * [`BitReader`] — consume them back in the same order.
//!
//! Bits are packed MSB-first within each byte: the first bit written becomes
//! the most significant bit of the first byte. Multi-bit fields are written
//! most-significant-bit first, so a field value `0b101` written with width 3
//! appears in the stream as the bit sequence `1, 0, 1`.
//!
//! Signed fields use two's-complement truncated to the field width; the
//! reader sign-extends. Widths of 0 are legal no-ops for unsigned fields and
//! write/read nothing.
//!
//! # Example
//!
//! ```
//! use bitio::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bit(true);
//! w.write_bits(0b1011, 4);
//! w.write_signed(-3, 5);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bit().unwrap(), true);
//! assert_eq!(r.read_bits(4).unwrap(), 0b1011);
//! assert_eq!(r.read_signed(5).unwrap(), -3);
//! ```

mod reader;
mod writer;

pub use reader::{BitReader, ReadError};
pub use writer::BitWriter;

/// Number of bits needed to represent `v` distinct values (`ceil(log2(v))`),
/// with `bits_for(0) == 0` and `bits_for(1) == 0`.
///
/// Used by the compressors to size index fields (e.g. sparse-outlier indices
/// within a block of known size).
#[inline]
#[must_use]
pub fn bits_for(v: u64) -> u32 {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    }
}

/// Minimum field width (in bits) that can hold the signed value `v` in
/// two's complement, including the sign bit. `signed_width(0) == 1`.
#[inline]
#[must_use]
pub fn signed_width(v: i64) -> u32 {
    if v >= 0 {
        // need one extra bit for the sign
        64 - (v as u64).leading_zeros() + 1
    } else {
        64 - (!(v as u64)).leading_zeros() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn signed_width_edge_cases() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(-1), 1);
        assert_eq!(signed_width(-2), 2);
        assert_eq!(signed_width(3), 3);
        assert_eq!(signed_width(-4), 3);
        assert_eq!(signed_width(i64::MAX), 64);
        assert_eq!(signed_width(i64::MIN), 64);
    }

    #[test]
    fn roundtrip_mixed_fields() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0xdead, 16);
        w.write_signed(-12345, 17);
        w.write_bits(0, 0); // zero-width no-op
        w.write_bit(false);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(16).unwrap(), 0xdead);
        assert_eq!(r.read_signed(17).unwrap(), -12345);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        // 1, then 0b0000001 -> byte should be 0b1000_0001
        w.write_bit(true);
        w.write_bits(1, 7);
        assert_eq!(w.into_bytes(), vec![0b1000_0001]);
    }

    #[test]
    fn align_to_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.align_to_byte();
        w.write_bits(0xff, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_0000, 0xff]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        r.align_to_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
    }

    #[test]
    fn reader_eof() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(1).is_err());
    }
}
