use std::fmt;

/// Error returned when a read runs past the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadError {
    /// Bit offset at which the failed read started.
    pub at_bit: u64,
    /// Number of bits requested.
    pub wanted: u32,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit stream exhausted: wanted {} bits at bit offset {}",
            self.wanted, self.at_bit
        )
    }
}

impl std::error::Error for ReadError {}

/// MSB-first bit source over a byte slice; the inverse of
/// [`BitWriter`](crate::BitWriter).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor from the start of `bytes`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at the first bit.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Total number of bits in the underlying buffer.
    #[must_use]
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Current bit offset from the start of the stream.
    #[must_use]
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining until the end of the buffer.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.bit_len() - self.pos
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, ReadError> {
        if self.pos >= self.bit_len() {
            return Err(ReadError {
                at_bit: self.pos,
                wanted: 1,
            });
        }
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads an unsigned field of `width` bits (MSB first). `width` ≤ 64.
    #[inline]
    pub fn read_bits(&mut self, width: u32) -> Result<u64, ReadError> {
        debug_assert!(width <= 64);
        if width == 0 {
            return Ok(0);
        }
        if self.remaining() < u64::from(width) {
            return Err(ReadError {
                at_bit: self.pos,
                wanted: width,
            });
        }
        let mut out: u64 = 0;
        let mut left = width;
        while left > 0 {
            let byte_idx = (self.pos / 8) as usize;
            let bit_in_byte = (self.pos % 8) as u32;
            let avail = 8 - bit_in_byte;
            let take = avail.min(left);
            let byte = u64::from(self.bytes[byte_idx]);
            // Extract `take` bits starting at `bit_in_byte` (from MSB).
            let chunk = (byte >> (avail - take)) & ((1u64 << take) - 1);
            out = if take == 64 { chunk } else { (out << take) | chunk };
            self.pos += u64::from(take);
            left -= take;
        }
        Ok(out)
    }

    /// Reads a two's-complement signed field of `width` bits and
    /// sign-extends it. `width` must be in `1..=64`.
    #[inline]
    pub fn read_signed(&mut self, width: u32) -> Result<i64, ReadError> {
        debug_assert!((1..=64).contains(&width));
        let raw = self.read_bits(width)?;
        if width == 64 {
            return Ok(raw as i64);
        }
        let sign_bit = 1u64 << (width - 1);
        if raw & sign_bit != 0 {
            Ok((raw | !((1u64 << width) - 1)) as i64)
        } else {
            Ok(raw as i64)
        }
    }

    /// Advances to the next byte boundary (no-op if already aligned).
    pub fn align_to_byte(&mut self) {
        let rem = self.pos % 8;
        if rem != 0 {
            self.pos += 8 - rem;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn read_across_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write_bits(0b10110, 5);
        w.write_bits(0x1234_5678_9abc_def0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(5).unwrap(), 0b10110);
        assert_eq!(r.read_bits(64).unwrap(), 0x1234_5678_9abc_def0);
    }

    #[test]
    fn signed_extremes() {
        for width in 1..=64u32 {
            let lo = if width == 64 {
                i64::MIN
            } else {
                -(1i64 << (width - 1))
            };
            let hi = if width == 64 {
                i64::MAX
            } else {
                (1i64 << (width - 1)) - 1
            };
            for &v in &[lo, hi, 0.min(hi).max(lo)] {
                let mut w = BitWriter::new();
                w.write_signed(v, width);
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes);
                assert_eq!(r.read_signed(width).unwrap(), v, "width={width}");
            }
        }
    }

    #[test]
    fn position_tracking() {
        let mut r = BitReader::new(&[0xab, 0xcd]);
        assert_eq!(r.bit_len(), 16);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_pos(), 5);
        r.align_to_byte();
        assert_eq!(r.bit_pos(), 8);
        assert_eq!(r.read_bits(8).unwrap(), 0xcd);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn error_reports_position() {
        let mut r = BitReader::new(&[0xff]);
        r.read_bits(6).unwrap();
        let err = r.read_bits(10).unwrap_err();
        assert_eq!(err.at_bit, 6);
        assert_eq!(err.wanted, 10);
        assert!(err.to_string().contains("exhausted"));
    }
}
