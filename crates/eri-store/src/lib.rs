//! Disk-backed, PaSTRI-compressed ERI block store with per-block random
//! access.
//!
//! This is the storage infrastructure the paper proposes around the
//! compressor (Sec. III: store compressed ERIs on disk — or in memory —
//! instead of recomputing them every SCF iteration). Each shell-quartet
//! block is compressed independently (PaSTRI's "block-level scope"), so a
//! consumer can fetch exactly the quartets it needs without touching the
//! rest of the file — the access pattern of integral-direct Fock builds.
//!
//! File layout:
//!
//! ```text
//! magic            8 bytes  "ERISTOR1"
//! error bound      8 bytes  f64 LE
//! num_subblocks    8 bytes  u64 LE
//! subblock_size    8 bytes  u64 LE
//! num_blocks       8 bytes  u64 LE
//! index offset     8 bytes  u64 LE  (absolute file offset of the index)
//! blocks           num_blocks × PaSTRI containers, back to back
//! index            num_blocks × (offset u64 LE, length u64 LE)
//! ```
//!
//! The index is written last (after all blocks), so a writer streams
//! blocks without knowing their sizes in advance; the fixed-size header
//! slot for the index offset is patched on close.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use pastri::{BlockGeometry, Compressor};

const MAGIC: [u8; 8] = *b"ERISTOR1";
const HEADER_LEN: u64 = 8 + 8 + 8 + 8 + 8 + 8;

/// Errors from the block store.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Corrupt(&'static str),
    Decompress(pastri::DecompressError),
    /// Requested block index ≥ number of blocks.
    OutOfRange { index: usize, blocks: usize },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Decompress(e) => write!(f, "decompress error: {e}"),
            StoreError::OutOfRange { index, blocks } => {
                write!(f, "block {index} out of range (store has {blocks})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<pastri::DecompressError> for StoreError {
    fn from(e: pastri::DecompressError) -> Self {
        StoreError::Decompress(e)
    }
}

/// Writes a block store: append blocks, then [`finish`](StoreWriter::finish).
pub struct StoreWriter {
    file: File,
    compressor: Compressor,
    index: Vec<(u64, u64)>,
    cursor: u64,
}

impl StoreWriter {
    /// Creates a store at `path` for blocks of `geometry` at error bound
    /// `eb` (truncates any existing file).
    pub fn create(path: &Path, geometry: BlockGeometry, eb: f64) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&eb.to_le_bytes())?;
        file.write_all(&(geometry.num_subblocks as u64).to_le_bytes())?;
        file.write_all(&(geometry.subblock_size as u64).to_le_bytes())?;
        file.write_all(&0u64.to_le_bytes())?; // num_blocks, patched later
        file.write_all(&0u64.to_le_bytes())?; // index offset, patched later
        Ok(Self {
            file,
            compressor: Compressor::new(geometry, eb),
            index: Vec::new(),
            cursor: HEADER_LEN,
        })
    }

    /// Compresses and appends one full block.
    ///
    /// # Panics
    /// Panics if `block.len() != geometry.block_size()`.
    pub fn append_block(&mut self, block: &[f64]) -> Result<(), StoreError> {
        assert_eq!(
            block.len(),
            self.compressor.geometry().block_size(),
            "append_block needs exactly one block"
        );
        let payload = self.compressor.compress(block);
        self.file.write_all(&payload)?;
        self.index.push((self.cursor, payload.len() as u64));
        self.cursor += payload.len() as u64;
        Ok(())
    }

    /// Writes the index and patches the header. Returns the block count.
    pub fn finish(mut self) -> Result<usize, StoreError> {
        let index_offset = self.cursor;
        for &(off, len) in &self.index {
            self.file.write_all(&off.to_le_bytes())?;
            self.file.write_all(&len.to_le_bytes())?;
        }
        self.file.seek(SeekFrom::Start(8 + 8 + 8 + 8))?;
        self.file
            .write_all(&(self.index.len() as u64).to_le_bytes())?;
        self.file.write_all(&index_offset.to_le_bytes())?;
        self.file.flush()?;
        Ok(self.index.len())
    }
}

/// Read side: random access to stored blocks.
pub struct StoreReader {
    file: File,
    geometry: BlockGeometry,
    error_bound: f64,
    index: Vec<(u64, u64)>,
}

impl StoreReader {
    /// Opens a store and loads its index.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if header[..8] != MAGIC {
            return Err(StoreError::Corrupt("bad magic"));
        }
        let rd_u64 = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
        let eb = f64::from_le_bytes(header[8..16].try_into().unwrap());
        if !(eb.is_finite() && eb > 0.0) {
            return Err(StoreError::Corrupt("invalid error bound"));
        }
        let num_sb = rd_u64(16) as usize;
        let sb_size = rd_u64(24) as usize;
        if num_sb == 0 || sb_size == 0 || num_sb.saturating_mul(sb_size) > (1 << 28) {
            return Err(StoreError::Corrupt("implausible geometry"));
        }
        let num_blocks = rd_u64(32) as usize;
        let index_offset = rd_u64(40);
        // Index plausibility: 16 bytes per entry must fit in the file.
        let index_bytes = (num_blocks as u64).saturating_mul(16);
        if index_offset < HEADER_LEN || index_offset.saturating_add(index_bytes) > file_len {
            return Err(StoreError::Corrupt("index out of bounds"));
        }
        file.seek(SeekFrom::Start(index_offset))?;
        let mut index = Vec::with_capacity(num_blocks);
        let mut entry = [0u8; 16];
        for _ in 0..num_blocks {
            file.read_exact(&mut entry)?;
            let off = u64::from_le_bytes(entry[..8].try_into().unwrap());
            let len = u64::from_le_bytes(entry[8..].try_into().unwrap());
            if off < HEADER_LEN || off.saturating_add(len) > index_offset {
                return Err(StoreError::Corrupt("block entry out of bounds"));
            }
            index.push((off, len));
        }
        Ok(Self {
            file,
            geometry: BlockGeometry::new(num_sb, sb_size),
            error_bound: eb,
            index,
        })
    }

    /// Number of stored blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    /// Block geometry.
    #[must_use]
    pub fn geometry(&self) -> BlockGeometry {
        self.geometry
    }

    /// The error bound the store was written with.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// Reads and decompresses block `i` (random access: one seek + one
    /// read of the compressed payload).
    pub fn read_block(&mut self, i: usize) -> Result<Vec<f64>, StoreError> {
        let &(off, len) = self.index.get(i).ok_or(StoreError::OutOfRange {
            index: i,
            blocks: self.index.len(),
        })?;
        self.file.seek(SeekFrom::Start(off))?;
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload)?;
        Ok(pastri::decompress(&payload)?)
    }

    /// Reads the whole store back as one stream (iteration order).
    pub fn read_all(&mut self) -> Result<Vec<f64>, StoreError> {
        let mut out = Vec::with_capacity(self.num_blocks() * self.geometry.block_size());
        for i in 0..self.num_blocks() {
            out.extend(self.read_block(i)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("eri-store-{}-{name}", std::process::id()))
    }

    fn patterned_block(geom: BlockGeometry, seed: usize) -> Vec<f64> {
        let mut block = Vec::with_capacity(geom.block_size());
        for sb in 0..geom.num_subblocks {
            let s = ((sb + seed) as f64 * 0.61).cos();
            for i in 0..geom.subblock_size {
                block.push(s * ((i as f64 + seed as f64) * 0.37).sin() * 1e-6);
            }
        }
        block
    }

    #[test]
    fn write_read_roundtrip_random_access() {
        let path = tmp("roundtrip");
        let geom = BlockGeometry::new(6, 8);
        let eb = 1e-10;
        let blocks: Vec<Vec<f64>> = (0..12).map(|b| patterned_block(geom, b)).collect();
        {
            let mut w = StoreWriter::create(&path, geom, eb).unwrap();
            for b in &blocks {
                w.append_block(b).unwrap();
            }
            assert_eq!(w.finish().unwrap(), 12);
        }
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.num_blocks(), 12);
        assert_eq!(r.geometry(), geom);
        assert_eq!(r.error_bound(), eb);
        // Random access, out of order.
        for &i in &[7usize, 0, 11, 3, 7] {
            let got = r.read_block(i).unwrap();
            assert_eq!(got.len(), geom.block_size());
            for (a, b) in blocks[i].iter().zip(&got) {
                assert!((a - b).abs() <= eb);
            }
        }
        // Full stream.
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 12 * geom.block_size());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_store() {
        let path = tmp("empty");
        let geom = BlockGeometry::new(2, 2);
        StoreWriter::create(&path, geom, 1e-8)
            .unwrap()
            .finish()
            .unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.num_blocks(), 0);
        assert!(matches!(
            r.read_block(0),
            Err(StoreError::OutOfRange { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unfinished_store_rejected() {
        // Without finish(), the header still says 0 blocks / 0 index.
        let path = tmp("unfinished");
        let geom = BlockGeometry::new(2, 2);
        {
            let mut w = StoreWriter::create(&path, geom, 1e-8).unwrap();
            w.append_block(&[1e-5; 4]).unwrap();
            // dropped without finish()
        }
        let err = StoreReader::open(&path);
        assert!(err.is_err(), "index offset 0 must be rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTASTORE_______________________________________").unwrap();
        assert!(matches!(
            StoreReader::open(&path),
            Err(StoreError::Corrupt("bad magic"))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_block_size_panics() {
        let path = tmp("wrongsize");
        let geom = BlockGeometry::new(2, 2);
        let mut w = StoreWriter::create(&path, geom, 1e-8).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = w.append_block(&[0.0; 3]);
        }));
        assert!(result.is_err());
        let _ = std::fs::remove_file(&path);
    }
}
