//! Disk-backed, PaSTRI-compressed ERI block store with per-block random
//! access.
//!
//! This is the storage infrastructure the paper proposes around the
//! compressor (Sec. III: store compressed ERIs on disk — or in memory —
//! instead of recomputing them every SCF iteration). Each shell-quartet
//! block is compressed independently (PaSTRI's "block-level scope"), so a
//! consumer can fetch exactly the quartets it needs without touching the
//! rest of the file — the access pattern of integral-direct Fock builds.
//!
//! File layout (version 2, current):
//!
//! ```text
//! magic            8 bytes  "ERISTOR2"
//! error bound      8 bytes  f64 LE
//! num_subblocks    8 bytes  u64 LE
//! subblock_size    8 bytes  u64 LE
//! num_blocks       8 bytes  u64 LE
//! index offset     8 bytes  u64 LE  (absolute file offset of the index)
//! header_crc32     4 bytes  u32 LE  (CRC32 of the 48 bytes above)
//! blocks           num_blocks × PaSTRI containers, back to back
//! index            num_blocks × (offset u64 LE, length u64 LE,
//!                                payload_crc32 u32 LE)
//! index_crc32      4 bytes  u32 LE  (CRC32 of the index bytes above)
//! ```
//!
//! Version 1 (`"ERISTOR1"`) is the same layout minus the three CRC32
//! fields (48-byte header, 16-byte index entries); the reader keeps it
//! decodable. The per-entry `payload_crc32` covers the block's container
//! bytes as written, so [`StoreReader::verify`] can certify the whole
//! store — and [`StoreReader::read_block`] can pin damage to one block —
//! without decompressing anything.
//!
//! The index is written last (after all blocks), so a writer streams
//! blocks without knowing their sizes in advance; the fixed-size header
//! slots for block count and index offset are patched on close (along
//! with the header CRC, which is computed over the final header bytes).
//!
//! Reads run through a [`RetryPolicy`]: transient `Interrupted` /
//! `WouldBlock` / `TimedOut` errors — routine on congested parallel file
//! systems — are retried with bounded exponential backoff instead of
//! failing an SCF iteration. The reader is generic over `Read + Seek`,
//! so tests inject faults without touching the filesystem.

use std::fs::{File, OpenOptions};
use std::io::{self, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use checksum::crc32;
use durable::retry::RetryStats;
use durable::{journal_path, remove_journal, scan_journal, Checkpoint, JournalWriter};
use pastri::{BlockGeometry, Compressor};
use rayon::prelude::*;

/// Re-exported from [`durable::retry`]: the shared transient-I/O backoff
/// policy (this crate's read path and the soak workload generator share
/// one definition).
pub use durable::retry::RetryPolicy;

const MAGIC_V2: [u8; 8] = *b"ERISTOR2";
const MAGIC_V1: [u8; 8] = *b"ERISTOR1";
/// Header bytes covered by the v2 header CRC (everything before it).
const HEADER_BODY_LEN: u64 = 8 + 8 + 8 + 8 + 8 + 8;
const HEADER_LEN_V1: u64 = HEADER_BODY_LEN;
/// Total v2 header length (body + header CRC32). Public so tooling and
/// fault injectors can locate block spans without re-deriving the
/// layout.
pub const HEADER_LEN_V2: u64 = HEADER_BODY_LEN + 4;
const INDEX_ENTRY_V1: u64 = 16;
/// Size of one v2 index entry: offset u64 + len u64 + payload CRC32.
pub const INDEX_ENTRY_V2: u64 = 20;

/// Errors from the block store.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Structurally invalid store. `block`/`offset` localize the damage
    /// when it is attributable to one block's index entry or payload.
    Corrupt {
        /// Zero-based block index, when the damage is per-block.
        block: Option<usize>,
        /// Absolute file offset of the damaged region, if known.
        offset: Option<u64>,
        /// What check failed.
        reason: &'static str,
    },
    /// A stored CRC32 did not match the bytes on disk.
    Checksum {
        /// Damaged block, or `None` for the header/index checksums.
        block: Option<usize>,
        /// Absolute file offset of the checksummed region, if known.
        offset: Option<u64>,
        /// CRC32 recorded in the store.
        expected: u32,
        /// CRC32 of the bytes actually read.
        actual: u32,
    },
    Decompress(pastri::DecompressError),
    /// Requested block index ≥ number of blocks.
    OutOfRange { index: usize, blocks: usize },
}

impl StoreError {
    /// Corruption with no location attached yet.
    #[must_use]
    pub const fn corrupt(reason: &'static str) -> Self {
        StoreError::Corrupt {
            block: None,
            offset: None,
            reason,
        }
    }

    /// Attributes a corruption/checksum error to block `b`.
    #[must_use]
    pub fn with_block(self, b: usize) -> Self {
        match self {
            StoreError::Corrupt { offset, reason, .. } => StoreError::Corrupt {
                block: Some(b),
                offset,
                reason,
            },
            StoreError::Checksum {
                offset,
                expected,
                actual,
                ..
            } => StoreError::Checksum {
                block: Some(b),
                offset,
                expected,
                actual,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Corrupt { block, offset, reason } => {
                write!(f, "corrupt store: {reason}")?;
                if let Some(b) = block {
                    write!(f, " (block {b})")?;
                }
                if let Some(o) = offset {
                    write!(f, " at offset {o}")?;
                }
                Ok(())
            }
            StoreError::Checksum {
                block,
                offset,
                expected,
                actual,
            } => {
                match block {
                    Some(b) => write!(f, "checksum mismatch in block {b}")?,
                    None => write!(f, "store metadata checksum mismatch")?,
                }
                if let Some(o) = offset {
                    write!(f, " at offset {o}")?;
                }
                write!(f, ": stored {expected:#010x}, computed {actual:#010x}")
            }
            StoreError::Decompress(e) => write!(f, "decompress error: {e}"),
            StoreError::OutOfRange { index, blocks } => {
                write!(f, "block {index} out of range (store has {blocks})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<pastri::DecompressError> for StoreError {
    fn from(e: pastri::DecompressError) -> Self {
        StoreError::Decompress(e)
    }
}

/// Counters a [`StoreReader`] accumulates across its lifetime:
/// transient-fault handling and self-healing activity. Query with
/// [`StoreReader::read_stats`] to see what a run's reads actually cost.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReadStats {
    /// Transient I/O errors absorbed by the retry policy.
    pub transient_retries: u64,
    /// Total microseconds slept in retry backoff.
    pub backoff_micros: u64,
    /// Blocks whose checksum failed but that were rebuilt from their
    /// container's parity section (and re-certified against the index
    /// CRC) before being served.
    pub blocks_repaired: u64,
    /// Blocks that failed terminally: damaged beyond the parity budget
    /// (or carrying no parity at all).
    pub blocks_dropped: u64,
}

/// Fills `buf` completely via the shared [`durable::retry`] loop, then
/// folds the call's retry cost into this reader's [`ReadStats`] and the
/// `store.transient_retries` / `store.backoff_us` telemetry counters —
/// the per-store attribution the shared loop deliberately leaves to its
/// callers. Accounted even when the read ultimately fails.
fn read_exact_retry<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    policy: &RetryPolicy,
    stats: &mut ReadStats,
) -> io::Result<()> {
    let mut rs = RetryStats::default();
    let result = durable::retry::read_exact_retry(r, buf, policy, &mut rs);
    if rs.transient_retries > 0 {
        stats.transient_retries += rs.transient_retries;
        telemetry::counter_add("store.transient_retries", rs.transient_retries);
    }
    if rs.backoff_micros > 0 {
        stats.backoff_micros += rs.backoff_micros;
        telemetry::counter_add("store.backoff_us", rs.backoff_micros);
    }
    result
}

/// Durable-mode state of a [`StoreWriter`]: the checkpoint journal and
/// its batching policy.
struct Durability {
    journal: JournalWriter<File>,
    path: PathBuf,
    checkpoint_every: usize,
    /// Blocks appended since the last checkpoint.
    uncheckpointed: usize,
}

/// Writes a block store: append blocks, then [`finish`](StoreWriter::finish).
///
/// Two modes: [`create`](Self::create) is the plain volatile writer (a
/// crash loses the whole store, since the header is only finalized on
/// finish); [`create_durable`](Self::create_durable) additionally
/// maintains a `<path>.journal` checkpoint sidecar — every
/// `checkpoint_every` blocks the data is fsync'd and a journal record
/// commits the prefix, so after a crash
/// [`open_for_append`](Self::open_for_append) can truncate back to the
/// last checkpoint, rebuild the index by re-walking the committed
/// containers, and continue. Both modes emit byte-identical files.
pub struct StoreWriter {
    file: File,
    compressor: Compressor,
    index: Vec<(u64, u64, u32)>,
    cursor: u64,
    durability: Option<Durability>,
}

impl StoreWriter {
    /// Creates a store at `path` for blocks of `geometry` at error bound
    /// `eb` (truncates any existing file).
    pub fn create(path: &Path, geometry: BlockGeometry, eb: f64) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        // Placeholder header; rewritten with final values (and CRC) on
        // finish().
        file.write_all(&header_bytes(eb, geometry, 0, 0))?;
        file.write_all(&0u32.to_le_bytes())?;
        Ok(Self {
            file,
            compressor: Compressor::new(geometry, eb),
            index: Vec::new(),
            cursor: HEADER_LEN_V2,
            durability: None,
        })
    }

    /// Like [`create`](Self::create), but journaled: every
    /// `checkpoint_every` appended blocks, the file is fsync'd and a
    /// checkpoint record is durably appended to `<path>.journal`. A
    /// crash then loses at most the blocks since the last checkpoint —
    /// recover with [`open_for_append`](Self::open_for_append).
    ///
    /// # Errors
    /// `InvalidInput` (as `StoreError::Io`) if `checkpoint_every` is 0.
    pub fn create_durable(
        path: &Path,
        geometry: BlockGeometry,
        eb: f64,
        checkpoint_every: usize,
    ) -> Result<Self, StoreError> {
        if checkpoint_every == 0 {
            return Err(StoreError::Io(io::Error::new(
                ErrorKind::InvalidInput,
                "checkpoint_every must be at least 1",
            )));
        }
        let mut w = Self::create(path, geometry, eb)?;
        // The placeholder header must be durable before the journal can
        // describe byte offsets past it.
        w.file.sync_all()?;
        let jfile = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(journal_path(path))?;
        durable::fsync_dir(&parent_of(path))?;
        w.durability = Some(Durability {
            journal: JournalWriter::new(jfile),
            path: path.to_path_buf(),
            checkpoint_every,
            uncheckpointed: 0,
        });
        Ok(w)
    }

    /// Resumes an interrupted durable write at `path`: loads the last
    /// valid checkpoint from `<path>.journal`, truncates the store to
    /// the committed prefix, and rebuilds the index by re-walking the
    /// committed containers. Returns the writer plus the checkpoint —
    /// `checkpoint.segments` blocks are already in the store, so the
    /// producer resumes appending from block `checkpoint.segments`.
    ///
    /// With no usable journal the store restarts from scratch (the
    /// checkpoint comes back all-zero).
    ///
    /// # Errors
    /// `Corrupt` if the journal claims more bytes than the file holds,
    /// if the header disagrees with `geometry`/`eb`, or if the committed
    /// prefix does not parse back into `checkpoint.segments` containers.
    pub fn open_for_append(
        path: &Path,
        geometry: BlockGeometry,
        eb: f64,
        checkpoint_every: usize,
    ) -> Result<(Self, Checkpoint), StoreError> {
        if checkpoint_every == 0 {
            return Err(StoreError::Io(io::Error::new(
                ErrorKind::InvalidInput,
                "checkpoint_every must be at least 1",
            )));
        }
        let jp = journal_path(path);
        let journal_bytes = match std::fs::read(&jp) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (cp, valid_len) = scan_journal(&journal_bytes);
        let Some(cp) = cp else {
            // No committed prefix at all: restart from scratch.
            let w = Self::create_durable(path, geometry, eb, checkpoint_every)?;
            return Ok((w, Checkpoint::default()));
        };

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if file.metadata()?.len() < cp.bytes {
            return Err(StoreError::corrupt(
                "journal claims more durable bytes than the store holds",
            ));
        }
        // Lenient header check: count/index/CRC slots hold placeholders
        // until finish(), but magic, error bound, and geometry must
        // already match what the resume asks for.
        let mut header = [0u8; HEADER_BODY_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if header[..8] != MAGIC_V2 {
            return Err(StoreError::corrupt("bad magic"));
        }
        let h_eb = f64::from_le_bytes(header[8..16].try_into().unwrap());
        let h_num_sb = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let h_sb_size = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if h_eb != eb
            || h_num_sb != geometry.num_subblocks as u64
            || h_sb_size != geometry.subblock_size as u64
        {
            return Err(StoreError::corrupt(
                "resume parameters do not match the store header",
            ));
        }
        // Drop everything past the committed prefix (possibly torn).
        file.set_len(cp.bytes)?;
        file.sync_all()?;

        // Rebuild the index: the committed prefix is exactly
        // `cp.segments` whole containers back to back.
        file.seek(SeekFrom::Start(HEADER_LEN_V2))?;
        let mut blocks_bytes = vec![0u8; (cp.bytes - HEADER_LEN_V2) as usize];
        file.read_exact(&mut blocks_bytes)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < blocks_bytes.len() {
            let (_, consumed) = pastri::inspect_prefix(&blocks_bytes[pos..]).map_err(|_| {
                StoreError::corrupt("unparseable container inside the committed prefix")
                    .with_block(index.len())
            })?;
            let payload = &blocks_bytes[pos..pos + consumed];
            index.push((HEADER_LEN_V2 + pos as u64, consumed as u64, crc32(payload)));
            pos += consumed;
        }
        if index.len() as u64 != cp.segments {
            return Err(StoreError::corrupt(
                "committed block count does not match the journal",
            ));
        }

        // Journal: drop any torn tail record, then append to it.
        let mut jfile = OpenOptions::new().read(true).write(true).open(&jp)?;
        jfile.set_len(valid_len as u64)?;
        jfile.sync_all()?;
        jfile.seek(SeekFrom::Start(valid_len as u64))?;
        file.seek(SeekFrom::Start(cp.bytes))?;
        Ok((
            Self {
                file,
                compressor: Compressor::new(geometry, eb),
                index,
                cursor: cp.bytes,
                durability: Some(Durability {
                    journal: JournalWriter::resume(jfile),
                    path: path.to_path_buf(),
                    checkpoint_every,
                    uncheckpointed: 0,
                }),
            },
            cp,
        ))
    }

    /// In durable mode: commits a checkpoint if enough blocks have
    /// accumulated. Data fsync strictly precedes the journal record, so
    /// the journal never describes bytes that could still be lost.
    fn maybe_checkpoint(&mut self) -> Result<(), StoreError> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if d.uncheckpointed < d.checkpoint_every {
            return Ok(());
        }
        self.file.sync_all()?;
        let bs = self.compressor.geometry().block_size() as u64;
        d.journal.record(Checkpoint {
            segments: self.index.len() as u64,
            values: self.index.len() as u64 * bs,
            bytes: self.cursor,
        })?;
        d.uncheckpointed = 0;
        Ok(())
    }

    /// Compresses and appends one full block.
    ///
    /// # Panics
    /// Panics if `block.len() != geometry.block_size()`.
    pub fn append_block(&mut self, block: &[f64]) -> Result<(), StoreError> {
        assert_eq!(
            block.len(),
            self.compressor.geometry().block_size(),
            "append_block needs exactly one block"
        );
        let payload = self.compressor.compress(block);
        self.file.write_all(&payload)?;
        self.index
            .push((self.cursor, payload.len() as u64, crc32(&payload)));
        self.cursor += payload.len() as u64;
        if let Some(d) = &mut self.durability {
            d.uncheckpointed += 1;
        }
        self.maybe_checkpoint()
    }

    /// Compresses and appends a batch of full blocks, fanning the
    /// compression out across the parallel runtime (the file writes stay
    /// sequential, so the store is byte-identical to appending the same
    /// blocks one at a time).
    ///
    /// # Panics
    /// Panics if `values.len()` is not a multiple of
    /// `geometry.block_size()`.
    pub fn append_blocks(&mut self, values: &[f64]) -> Result<(), StoreError> {
        let bs = self.compressor.geometry().block_size();
        assert_eq!(
            values.len() % bs,
            0,
            "append_blocks needs whole blocks ({bs} values each)"
        );
        let compressor = &self.compressor;
        let payloads: Vec<Vec<u8>> = values
            .par_chunks(bs)
            .map(|block| compressor.compress(block))
            .collect();
        for payload in payloads {
            self.file.write_all(&payload)?;
            self.index
                .push((self.cursor, payload.len() as u64, crc32(&payload)));
            self.cursor += payload.len() as u64;
            if let Some(d) = &mut self.durability {
                d.uncheckpointed += 1;
            }
            self.maybe_checkpoint()?;
        }
        Ok(())
    }

    /// Writes the checksummed index and the final header. Returns the
    /// block count.
    pub fn finish(mut self) -> Result<usize, StoreError> {
        let index_offset = self.cursor;
        let mut index_bytes = Vec::with_capacity(self.index.len() * INDEX_ENTRY_V2 as usize);
        for &(off, len, crc) in &self.index {
            index_bytes.extend_from_slice(&off.to_le_bytes());
            index_bytes.extend_from_slice(&len.to_le_bytes());
            index_bytes.extend_from_slice(&crc.to_le_bytes());
        }
        self.file.write_all(&index_bytes)?;
        self.file.write_all(&crc32(&index_bytes).to_le_bytes())?;

        let header = header_bytes(
            self.compressor.error_bound(),
            self.compressor.geometry(),
            self.index.len() as u64,
            index_offset,
        );
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.write_all(&crc32(&header).to_le_bytes())?;
        self.file.flush()?;
        if let Some(d) = self.durability.take() {
            // The finished store must be durable before the journal — the
            // "write in progress" marker — disappears.
            self.file.sync_all()?;
            drop(d.journal);
            remove_journal(&d.path)?;
        }
        Ok(self.index.len())
    }
}

/// Splits `num_blocks` into at most `shards` contiguous, near-even,
/// non-empty ranges covering `0..num_blocks` — the shard layout the
/// cache server routes shell-quartet block indices through. The first
/// `num_blocks % shards` ranges are one block longer, so any two ranges
/// differ in length by at most one.
#[must_use]
pub fn shard_ranges(num_blocks: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if num_blocks == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, num_blocks);
    let base = num_blocks / shards;
    let extra = num_blocks % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The parent directory of `path`, defaulting to `.` for bare names.
fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// The 48 checksummed header bytes (magic through index offset).
fn header_bytes(eb: f64, geometry: BlockGeometry, num_blocks: u64, index_offset: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_BODY_LEN as usize);
    h.extend_from_slice(&MAGIC_V2);
    h.extend_from_slice(&eb.to_le_bytes());
    h.extend_from_slice(&(geometry.num_subblocks as u64).to_le_bytes());
    h.extend_from_slice(&(geometry.subblock_size as u64).to_le_bytes());
    h.extend_from_slice(&num_blocks.to_le_bytes());
    h.extend_from_slice(&index_offset.to_le_bytes());
    h
}

/// One index entry: where the block's container lives, and (v2) the
/// CRC32 of those bytes.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    offset: u64,
    len: u64,
    /// `None` for v1 stores (no stored checksum).
    crc: Option<u32>,
}

/// One damaged block found by [`StoreReader::verify`].
#[derive(Debug)]
pub struct BlockDamage {
    /// Zero-based block index.
    pub block: usize,
    /// Absolute file offset of the block's container.
    pub offset: u64,
    /// What was wrong with it.
    pub error: StoreError,
}

/// Result of a full-store scan.
#[derive(Debug)]
pub struct VerifyReport {
    /// Blocks scanned (the store's block count).
    pub blocks: usize,
    /// Every block that failed verification.
    pub damaged: Vec<BlockDamage>,
}

impl VerifyReport {
    /// Did every block verify?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// Read side: random access to stored blocks. Generic over the byte
/// source so tests can inject I/O faults; production code uses
/// [`StoreReader::open`], which reads from a [`File`].
#[derive(Debug)]
pub struct StoreReader<R: Read + Seek = File> {
    source: R,
    retry: RetryPolicy,
    version: u8,
    geometry: BlockGeometry,
    error_bound: f64,
    index: Vec<IndexEntry>,
    stats: ReadStats,
}

impl StoreReader<File> {
    /// Opens a store and loads its index.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::from_source(File::open(path)?, RetryPolicy::default())
    }

    /// Opens a store with an explicit transient-retry policy. Each call
    /// owns an independent file handle, so a sharded server can open one
    /// reader per shard of the same store and read them concurrently.
    pub fn open_with_retry(path: &Path, retry: RetryPolicy) -> Result<Self, StoreError> {
        Self::from_source(File::open(path)?, retry)
    }
}

impl<R: Read + Seek> StoreReader<R> {
    /// Opens a store from any seekable byte source, retrying transient
    /// read errors per `retry`. Validates the header (and, for v2, the
    /// header and index checksums) and loads the index.
    pub fn from_source(mut source: R, retry: RetryPolicy) -> Result<Self, StoreError> {
        let mut stats = ReadStats::default();
        let file_len = source.seek(SeekFrom::End(0))?;
        source.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_BODY_LEN as usize];
        read_exact_retry(&mut source, &mut header, &retry, &mut stats)?;
        let version = if header[..8] == MAGIC_V2 {
            2
        } else if header[..8] == MAGIC_V1 {
            1
        } else {
            return Err(StoreError::corrupt("bad magic"));
        };
        if version == 2 {
            let mut crc_buf = [0u8; 4];
            read_exact_retry(&mut source, &mut crc_buf, &retry, &mut stats)?;
            let stored = u32::from_le_bytes(crc_buf);
            let actual = crc32(&header);
            if stored != actual {
                return Err(StoreError::Checksum {
                    block: None,
                    offset: Some(HEADER_BODY_LEN),
                    expected: stored,
                    actual,
                });
            }
        }
        let header_len = if version == 2 { HEADER_LEN_V2 } else { HEADER_LEN_V1 };
        let entry_len = if version == 2 { INDEX_ENTRY_V2 } else { INDEX_ENTRY_V1 };

        let rd_u64 = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
        let eb = f64::from_le_bytes(header[8..16].try_into().unwrap());
        if !(eb.is_finite() && eb > 0.0) {
            return Err(StoreError::corrupt("invalid error bound"));
        }
        let num_sb = rd_u64(16) as usize;
        let sb_size = rd_u64(24) as usize;
        if num_sb == 0 || sb_size == 0 || num_sb.saturating_mul(sb_size) > (1 << 28) {
            return Err(StoreError::corrupt("implausible geometry"));
        }
        let num_blocks = rd_u64(32) as usize;
        let index_offset = rd_u64(40);
        // Index plausibility: every entry must fit in the file — checked
        // against the real file size *before* the index allocation, so a
        // hostile block count cannot request more memory than the file
        // could hold.
        let index_bytes_len = (num_blocks as u64).saturating_mul(entry_len);
        if index_offset < header_len || index_offset.saturating_add(index_bytes_len) > file_len {
            return Err(StoreError::corrupt("index out of bounds"));
        }
        source.seek(SeekFrom::Start(index_offset))?;
        let mut index_bytes = vec![0u8; index_bytes_len as usize];
        read_exact_retry(&mut source, &mut index_bytes, &retry, &mut stats)?;
        if version == 2 {
            let mut crc_buf = [0u8; 4];
            read_exact_retry(&mut source, &mut crc_buf, &retry, &mut stats)?;
            let stored = u32::from_le_bytes(crc_buf);
            let actual = crc32(&index_bytes);
            if stored != actual {
                return Err(StoreError::Checksum {
                    block: None,
                    offset: Some(index_offset),
                    expected: stored,
                    actual,
                });
            }
        }
        let mut index = Vec::with_capacity(num_blocks);
        for (i, entry) in index_bytes.chunks_exact(entry_len as usize).enumerate() {
            let off = u64::from_le_bytes(entry[..8].try_into().unwrap());
            let len = u64::from_le_bytes(entry[8..16].try_into().unwrap());
            let crc = (version == 2).then(|| u32::from_le_bytes(entry[16..20].try_into().unwrap()));
            if off < header_len || off.saturating_add(len) > index_offset {
                return Err(StoreError::corrupt("block entry out of bounds").with_block(i));
            }
            index.push(IndexEntry { offset: off, len, crc });
        }
        Ok(Self {
            source,
            retry,
            version,
            geometry: BlockGeometry::new(num_sb, sb_size),
            error_bound: eb,
            index,
            stats,
        })
    }

    /// Store format version (1 = legacy checksum-free, 2 = checksummed).
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Number of stored blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    /// Block geometry.
    #[must_use]
    pub fn geometry(&self) -> BlockGeometry {
        self.geometry
    }

    /// The error bound the store was written with.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// Total compressed payload bytes across all blocks (container
    /// bytes as indexed, excluding header and index overhead) — the
    /// numerator a server needs to report an effective compression
    /// ratio without re-reading the file.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.index.iter().map(|e| e.len).sum()
    }

    /// Lifetime counters: transient retries absorbed, backoff slept,
    /// blocks repaired from parity, blocks lost.
    #[must_use]
    pub fn read_stats(&self) -> ReadStats {
        self.stats
    }

    /// Reads block `i`'s raw container bytes, unverified.
    fn read_block_raw(&mut self, i: usize) -> Result<(IndexEntry, Vec<u8>), StoreError> {
        let entry = *self.index.get(i).ok_or(StoreError::OutOfRange {
            index: i,
            blocks: self.index.len(),
        })?;
        self.source.seek(SeekFrom::Start(entry.offset))?;
        let mut payload = vec![0u8; entry.len as usize];
        read_exact_retry(&mut self.source, &mut payload, &self.retry, &mut self.stats)?;
        Ok((entry, payload))
    }

    /// Reads block `i`'s raw container bytes and verifies its stored
    /// CRC32 (v2).
    fn read_block_bytes(&mut self, i: usize) -> Result<Vec<u8>, StoreError> {
        let (entry, payload) = self.read_block_raw(i)?;
        if let Some(stored) = entry.crc {
            let actual = crc32(&payload);
            if stored != actual {
                return Err(StoreError::Checksum {
                    block: Some(i),
                    offset: Some(entry.offset),
                    expected: stored,
                    actual,
                });
            }
        }
        Ok(payload)
    }

    /// Attempts to rebuild block `i`'s container from its own parity
    /// section. The repair is accepted only if the rebuilt bytes match
    /// the index CRC — i.e. they are bit-for-bit what the writer stored
    /// — so a wrong repair can never masquerade as a right one.
    fn try_repair_block(&mut self, i: usize) -> Option<Vec<u8>> {
        let (entry, payload) = self.read_block_raw(i).ok()?;
        let stored = entry.crc?;
        let (repaired, report) = pastri::repair_container(&payload).ok()?;
        if report.is_fully_repaired() && crc32(&repaired) == stored {
            Some(repaired)
        } else {
            None
        }
    }

    /// Reads and decompresses block `i` (random access: one seek + one
    /// read of the compressed payload). A block whose checksum fails is
    /// transparently rebuilt from its container's parity section when
    /// possible (counted in [`ReadStats::blocks_repaired`]); damage
    /// beyond the parity budget is reported with the block index and
    /// file offset attached (and counted in
    /// [`ReadStats::blocks_dropped`]).
    pub fn read_block(&mut self, i: usize) -> Result<Vec<f64>, StoreError> {
        let payload = match self.read_block_bytes(i) {
            Ok(p) => p,
            Err(e @ StoreError::Checksum { .. }) => match self.try_repair_block(i) {
                Some(repaired) => {
                    self.stats.blocks_repaired += 1;
                    telemetry::counter_add("store.blocks_repaired", 1);
                    repaired
                }
                None => {
                    self.stats.blocks_dropped += 1;
                    telemetry::counter_add("store.blocks_dropped", 1);
                    return Err(e);
                }
            },
            Err(e) => return Err(e),
        };
        match pastri::decompress(&payload) {
            Ok(values) => Ok(values),
            Err(e) => {
                self.stats.blocks_dropped += 1;
                telemetry::counter_add("store.blocks_dropped", 1);
                Err(e.into())
            }
        }
    }

    /// Reads the whole store back as one stream (iteration order).
    pub fn read_all(&mut self) -> Result<Vec<f64>, StoreError> {
        let mut out = Vec::with_capacity(self.num_blocks() * self.geometry.block_size());
        for i in 0..self.num_blocks() {
            out.extend(self.read_block(i)?);
        }
        Ok(out)
    }

    /// Scans every block and reports all damage, instead of stopping at
    /// the first bad block like [`read_all`](Self::read_all).
    ///
    /// v2 blocks are certified by their stored CRC32 — bit-exact payload
    /// bytes are exactly what the writer produced, so decodability
    /// follows without paying for decompression. v1 blocks carry no
    /// checksum, so they are strictly decompressed instead.
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport {
            blocks: self.num_blocks(),
            damaged: Vec::new(),
        };
        for i in 0..self.num_blocks() {
            let offset = self.index[i].offset;
            let outcome = match self.read_block_bytes(i) {
                Ok(payload) if self.version == 1 => {
                    pastri::decompress(&payload).map(|_| ()).map_err(StoreError::from)
                }
                Ok(_) => Ok(()),
                Err(e @ StoreError::Io(_)) => return Err(e), // the medium, not the data
                Err(e) => Err(e),
            };
            if let Err(error) = outcome {
                report.damaged.push(BlockDamage {
                    block: i,
                    offset,
                    error,
                });
            }
        }
        Ok(report)
    }

    /// Scrub pass: scans every block like [`verify`](Self::verify), then
    /// tries to rebuild each damaged one from its container's parity
    /// section. Returns the classification plus, for every successful
    /// rebuild, the `(absolute file offset, repaired container bytes)`
    /// patch — byte-identical to what the writer stored (certified by
    /// the index CRC), so a caller can splice the patches into a copy of
    /// the store file and atomically swap it in.
    pub fn scrub(&mut self) -> Result<(ScrubOutcome, Vec<ScrubPatch>), StoreError> {
        let report = self.verify()?;
        let mut outcome = ScrubOutcome {
            blocks: report.blocks,
            repaired: Vec::new(),
            unrepairable: Vec::new(),
        };
        let mut patches = Vec::new();
        for damage in report.damaged {
            let i = damage.block;
            match self.try_repair_block(i) {
                Some(repaired) => {
                    outcome.repaired.push(i);
                    patches.push((self.index[i].offset, repaired));
                }
                None => outcome.unrepairable.push(i),
            }
        }
        Ok((outcome, patches))
    }
}

/// One successful rebuild from a scrub pass: the damaged container's
/// absolute file offset and its byte-identical replacement.
pub type ScrubPatch = (u64, Vec<u8>);

/// Classification from a [`StoreReader::scrub`] pass.
#[derive(Debug)]
pub struct ScrubOutcome {
    /// Blocks scanned.
    pub blocks: usize,
    /// Damaged blocks whose containers rebuilt byte-identical.
    pub repaired: Vec<usize>,
    /// Damaged blocks beyond their parity budget (quarantine these).
    pub unrepairable: Vec<usize>,
}

impl ScrubOutcome {
    /// No damage at all?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.repaired.is_empty() && self.unrepairable.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::{FaultConfig, FaultyReader};
    use std::io::Cursor;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("eri-store-{}-{name}", std::process::id()))
    }

    fn patterned_block(geom: BlockGeometry, seed: usize) -> Vec<f64> {
        let mut block = Vec::with_capacity(geom.block_size());
        for sb in 0..geom.num_subblocks {
            let s = ((sb + seed) as f64 * 0.61).cos();
            for i in 0..geom.subblock_size {
                block.push(s * ((i as f64 + seed as f64) * 0.37).sin() * 1e-6);
            }
        }
        block
    }

    #[test]
    fn shard_ranges_cover_contiguously_and_near_evenly() {
        for (nb, shards) in [(0, 4), (1, 4), (7, 3), (12, 4), (5, 8), (100, 7), (9, 1)] {
            let ranges = shard_ranges(nb, shards);
            if nb == 0 {
                assert!(ranges.is_empty());
                continue;
            }
            assert_eq!(ranges.len(), shards.min(nb), "nb={nb} shards={shards}");
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous: nb={nb} shards={shards}");
                assert!(!r.is_empty(), "no empty shard: nb={nb} shards={shards}");
                next = r.end;
            }
            assert_eq!(next, nb, "full cover: nb={nb} shards={shards}");
            let lens: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "near-even: {lens:?}");
        }
    }

    /// A finished store as raw bytes, plus each block's (offset, len).
    fn store_bytes(geom: BlockGeometry, eb: f64, blocks: &[Vec<f64>]) -> (Vec<u8>, Vec<(u64, u64)>) {
        let path = tmp(&format!("mk-{:p}", blocks.as_ptr()));
        let mut w = StoreWriter::create(&path, geom, eb).unwrap();
        for b in blocks {
            w.append_block(b).unwrap();
        }
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let r = StoreReader::from_source(Cursor::new(bytes.clone()), RetryPolicy::none()).unwrap();
        let spans = r.index.iter().map(|e| (e.offset, e.len)).collect();
        (bytes, spans)
    }

    #[test]
    fn batch_append_is_byte_identical_to_single_appends() {
        let geom = BlockGeometry::new(6, 8);
        let blocks: Vec<Vec<f64>> = (0..16).map(|b| patterned_block(geom, b)).collect();
        let flat: Vec<f64> = blocks.iter().flatten().copied().collect();
        let (expected, _) = store_bytes(geom, 1e-10, &blocks);

        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let path = tmp(&format!("batch-{threads}"));
            let mut w = StoreWriter::create(&path, geom, 1e-10).unwrap();
            pool.install(|| w.append_blocks(&flat)).unwrap();
            assert_eq!(w.finish().unwrap(), 16);
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            assert_eq!(bytes, expected, "threads={threads}");
        }
    }

    #[test]
    fn durable_store_is_byte_identical_and_drops_journal_on_finish() {
        let geom = BlockGeometry::new(6, 8);
        let blocks: Vec<Vec<f64>> = (0..11).map(|b| patterned_block(geom, b)).collect();
        let (expected, _) = store_bytes(geom, 1e-10, &blocks);

        let path = tmp("durable-identical");
        let mut w = StoreWriter::create_durable(&path, geom, 1e-10, 3).unwrap();
        for b in &blocks {
            w.append_block(b).unwrap();
        }
        assert!(journal_path(&path).exists(), "journal alive mid-write");
        assert_eq!(w.finish().unwrap(), 11);
        assert!(!journal_path(&path).exists(), "journal removed on finish");
        assert_eq!(std::fs::read(&path).unwrap(), expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_durable_store_resumes_byte_identical() {
        let geom = BlockGeometry::new(6, 8);
        let eb = 1e-10;
        let blocks: Vec<Vec<f64>> = (0..17).map(|b| patterned_block(geom, b)).collect();
        let (expected, _) = store_bytes(geom, eb, &blocks);

        let path = tmp("durable-resume");
        {
            let mut w = StoreWriter::create_durable(&path, geom, eb, 4).unwrap();
            for b in &blocks[..10] {
                w.append_block(b).unwrap();
            }
            // "Crash": dropped without finish. Blocks 8..10 were never
            // checkpointed and will be truncated away on resume.
        }
        let (mut w, cp) = StoreWriter::open_for_append(&path, geom, eb, 4).unwrap();
        assert_eq!(cp.segments, 8, "two full batches of 4 committed");
        assert_eq!(cp.values, 8 * geom.block_size() as u64);
        for b in &blocks[cp.segments as usize..] {
            w.append_block(b).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 17);
        assert_eq!(std::fs::read(&path).unwrap(), expected);
        assert!(!journal_path(&path).exists());

        // And the resumed store verifies clean.
        let mut r = StoreReader::open(&path).unwrap();
        assert!(r.verify().unwrap().is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_for_append_without_journal_restarts() {
        let geom = BlockGeometry::new(4, 4);
        let path = tmp("durable-nojournal");
        {
            let mut w = StoreWriter::create_durable(&path, geom, 1e-9, 2).unwrap();
            w.append_block(&patterned_block(geom, 0)).unwrap();
        }
        let _ = std::fs::remove_file(journal_path(&path));
        let (mut w, cp) = StoreWriter::open_for_append(&path, geom, 1e-9, 2).unwrap();
        assert_eq!(cp, Checkpoint::default());
        for b in 0..3 {
            w.append_block(&patterned_block(geom, b)).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 3);
        assert!(StoreReader::open(&path).unwrap().verify().unwrap().is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_for_append_rejects_mismatched_parameters() {
        let geom = BlockGeometry::new(4, 4);
        let path = tmp("durable-mismatch");
        {
            let mut w = StoreWriter::create_durable(&path, geom, 1e-9, 1).unwrap();
            w.append_block(&patterned_block(geom, 0)).unwrap();
        }
        let other_geom = BlockGeometry::new(8, 2);
        assert!(matches!(
            StoreWriter::open_for_append(&path, other_geom, 1e-9, 1),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            StoreWriter::open_for_append(&path, geom, 1e-6, 1),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(journal_path(&path));
    }

    #[test]
    fn write_read_roundtrip_random_access() {
        let path = tmp("roundtrip");
        let geom = BlockGeometry::new(6, 8);
        let eb = 1e-10;
        let blocks: Vec<Vec<f64>> = (0..12).map(|b| patterned_block(geom, b)).collect();
        {
            let mut w = StoreWriter::create(&path, geom, eb).unwrap();
            for b in &blocks {
                w.append_block(b).unwrap();
            }
            assert_eq!(w.finish().unwrap(), 12);
        }
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.version(), 2);
        assert_eq!(r.num_blocks(), 12);
        assert_eq!(r.geometry(), geom);
        assert_eq!(r.error_bound(), eb);
        // Random access, out of order.
        for &i in &[7usize, 0, 11, 3, 7] {
            let got = r.read_block(i).unwrap();
            assert_eq!(got.len(), geom.block_size());
            for (a, b) in blocks[i].iter().zip(&got) {
                assert!((a - b).abs() <= eb);
            }
        }
        // Full stream.
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 12 * geom.block_size());
        assert!(r.verify().unwrap().is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_store() {
        let path = tmp("empty");
        let geom = BlockGeometry::new(2, 2);
        StoreWriter::create(&path, geom, 1e-8)
            .unwrap()
            .finish()
            .unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.num_blocks(), 0);
        assert!(matches!(
            r.read_block(0),
            Err(StoreError::OutOfRange { .. })
        ));
        assert!(r.verify().unwrap().is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unfinished_store_rejected() {
        // Without finish(), the header still says 0 blocks / 0 index.
        let path = tmp("unfinished");
        let geom = BlockGeometry::new(2, 2);
        {
            let mut w = StoreWriter::create(&path, geom, 1e-8).unwrap();
            w.append_block(&[1e-5; 4]).unwrap();
            // dropped without finish()
        }
        let err = StoreReader::open(&path);
        assert!(err.is_err(), "index offset 0 must be rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTASTORE_______________________________________").unwrap();
        assert!(matches!(
            StoreReader::open(&path),
            Err(StoreError::Corrupt {
                reason: "bad magic",
                ..
            })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_block_size_panics() {
        let path = tmp("wrongsize");
        let geom = BlockGeometry::new(2, 2);
        let mut w = StoreWriter::create(&path, geom, 1e-8).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = w.append_block(&[0.0; 3]);
        }));
        assert!(result.is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_flip_detected() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..3).map(|b| patterned_block(geom, b)).collect();
        let (mut bytes, _) = store_bytes(geom, 1e-9, &blocks);
        bytes[10] ^= 0x02; // inside the error-bound field
        let err = StoreReader::from_source(Cursor::new(bytes), RetryPolicy::none()).unwrap_err();
        assert!(
            matches!(err, StoreError::Checksum { block: None, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn payload_flip_repairs_on_read() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..6).map(|b| patterned_block(geom, b)).collect();
        let (clean_bytes, spans) = store_bytes(geom, 1e-9, &blocks);
        let mut bytes = clean_bytes.clone();
        let (off, len) = spans[4];
        bytes[(off + len / 2) as usize] ^= 0x01;

        let mut clean_r =
            StoreReader::from_source(Cursor::new(clean_bytes.clone()), RetryPolicy::none())
                .unwrap();
        let expected = clean_r.read_block(4).unwrap();

        let mut r =
            StoreReader::from_source(Cursor::new(bytes), RetryPolicy::none()).unwrap();
        // Undamaged blocks still read, and don't touch the repair stats.
        for i in [0usize, 1, 2, 3, 5] {
            r.read_block(i).unwrap();
        }
        assert_eq!(r.read_stats().blocks_repaired, 0);
        // The damaged one is rebuilt from its container's parity section
        // and served bit-exact — and the repair is accounted for.
        let got = r.read_block(4).unwrap();
        assert_eq!(got, expected, "repaired read must match the clean read");
        assert_eq!(r.read_stats().blocks_repaired, 1);
        assert_eq!(r.read_stats().blocks_dropped, 0);

        // verify() still reports the on-disk damage (it certifies bytes,
        // not serveability)...
        let report = r.verify().unwrap();
        assert_eq!(report.blocks, 6);
        assert_eq!(report.damaged.len(), 1);
        assert_eq!(report.damaged[0].block, 4);
        assert_eq!(report.damaged[0].offset, off);
        // ...and scrub() classifies it repairable, with a patch that is
        // byte-identical to what the writer originally stored.
        let (outcome, patches) = r.scrub().unwrap();
        assert_eq!(outcome.repaired, vec![4]);
        assert!(outcome.unrepairable.is_empty());
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].0, off);
        assert_eq!(
            patches[0].1,
            clean_bytes[off as usize..(off + len) as usize].to_vec()
        );
    }

    #[test]
    fn damage_beyond_parity_budget_pinned_to_block() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..6).map(|b| patterned_block(geom, b)).collect();
        let (mut bytes, spans) = store_bytes(geom, 1e-9, &blocks);
        let (off, len) = spans[4];
        // Shred the whole container — payload and both parity shards —
        // so the damage exceeds the per-group parity budget.
        for p in (off + 8..off + len).step_by(7) {
            bytes[p as usize] ^= 0x55;
        }
        let mut r =
            StoreReader::from_source(Cursor::new(bytes), RetryPolicy::none()).unwrap();
        for i in [0usize, 1, 2, 3, 5] {
            r.read_block(i).unwrap();
        }
        // Pinned by index and offset, and counted as dropped.
        match r.read_block(4).unwrap_err() {
            StoreError::Checksum { block, offset, .. } => {
                assert_eq!(block, Some(4));
                assert_eq!(offset, Some(off));
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
        assert_eq!(r.read_stats().blocks_dropped, 1);
        assert_eq!(r.read_stats().blocks_repaired, 0);
        // scrub() agrees: damaged, and beyond repair.
        let (outcome, patches) = r.scrub().unwrap();
        assert_eq!(outcome.unrepairable, vec![4]);
        assert!(outcome.repaired.is_empty());
        assert!(patches.is_empty());
    }

    #[test]
    fn index_flip_detected() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..3).map(|b| patterned_block(geom, b)).collect();
        let (mut bytes, _) = store_bytes(geom, 1e-9, &blocks);
        // The index sits between the last block and the trailing 4-byte
        // index CRC; flip a bit in its first entry.
        let index_offset =
            u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
        bytes[index_offset + 2] ^= 0x20;
        let err = StoreReader::from_source(Cursor::new(bytes), RetryPolicy::none()).unwrap_err();
        assert!(
            matches!(err, StoreError::Checksum { block: None, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn v1_stores_still_read() {
        // Hand-build the legacy layout: 48-byte header, no CRCs, 16-byte
        // index entries — byte-for-byte what the pre-v2 writer emitted.
        let geom = BlockGeometry::new(4, 4);
        let eb = 1e-9;
        let blocks: Vec<Vec<f64>> = (0..5).map(|b| patterned_block(geom, b)).collect();
        let c = Compressor::new(geom, eb);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_V1);
        bytes.extend_from_slice(&eb.to_le_bytes());
        bytes.extend_from_slice(&(geom.num_subblocks as u64).to_le_bytes());
        bytes.extend_from_slice(&(geom.subblock_size as u64).to_le_bytes());
        bytes.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // index offset, patched below
        let mut spans = Vec::new();
        for b in &blocks {
            let payload = c.compress(b);
            spans.push((bytes.len() as u64, payload.len() as u64));
            bytes.extend_from_slice(&payload);
        }
        let index_offset = bytes.len() as u64;
        for &(off, len) in &spans {
            bytes.extend_from_slice(&off.to_le_bytes());
            bytes.extend_from_slice(&len.to_le_bytes());
        }
        bytes[40..48].copy_from_slice(&index_offset.to_le_bytes());

        let mut r = StoreReader::from_source(Cursor::new(bytes.clone()), RetryPolicy::none()).unwrap();
        assert_eq!(r.version(), 1);
        assert_eq!(r.num_blocks(), 5);
        for (i, b) in blocks.iter().enumerate() {
            let got = r.read_block(i).unwrap();
            for (a, g) in b.iter().zip(&got) {
                assert!((a - g).abs() <= eb);
            }
        }
        assert!(r.verify().unwrap().is_clean());

        // v1 damage is still caught — by decompression (container CRCs),
        // not the (absent) index checksum.
        let (off, len) = spans[2];
        let mut damaged = bytes.clone();
        damaged[(off + len / 2) as usize] ^= 0x08;
        let mut r =
            StoreReader::from_source(Cursor::new(damaged), RetryPolicy::none()).unwrap();
        let report = r.verify().unwrap();
        assert_eq!(report.damaged.len(), 1);
        assert_eq!(report.damaged[0].block, 2);
    }

    #[test]
    fn transient_errors_are_retried() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..8).map(|b| patterned_block(geom, b)).collect();
        let (bytes, _) = store_bytes(geom, 1e-9, &blocks);
        let flaky = FaultyReader::new(
            Cursor::new(bytes),
            1234,
            FaultConfig {
                transient_rate: 0.4,
                max_transient_errors: 50,
                transient_kind: ErrorKind::WouldBlock,
                short_reads: true,
                ..Default::default()
            },
        );
        let retry = RetryPolicy {
            max_retries: 4, // keep the test instant: zero backoff from none()
            ..RetryPolicy::none()
        };
        let mut r = StoreReader::from_source(flaky, retry).unwrap();
        assert_eq!(r.num_blocks(), 8);
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 8 * geom.block_size());
        assert!(r.verify().unwrap().is_clean());
        assert!(
            r.source.transient_errors_injected() > 0,
            "the fault injector must actually have fired"
        );
        assert!(
            r.read_stats().transient_retries > 0,
            "absorbed retries must be visible in the read stats"
        );
        assert_eq!(r.read_stats().blocks_repaired, 0);
        assert_eq!(r.read_stats().blocks_dropped, 0);
    }

    #[test]
    fn transient_errors_surface_without_retry() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..8).map(|b| patterned_block(geom, b)).collect();
        let (bytes, _) = store_bytes(geom, 1e-9, &blocks);
        let flaky = FaultyReader::new(
            Cursor::new(bytes),
            1234,
            FaultConfig {
                transient_rate: 0.9,
                max_transient_errors: 1000,
                transient_kind: ErrorKind::WouldBlock,
                ..Default::default()
            },
        );
        let result = StoreReader::from_source(flaky, RetryPolicy::none())
            .and_then(|mut r| r.read_all());
        assert!(
            matches!(result, Err(StoreError::Io(ref e)) if e.kind() == ErrorKind::WouldBlock),
            "without retries the transient error must surface: {result:?}"
        );
    }

    #[test]
    fn hostile_block_count_rejected_before_allocation() {
        let geom = BlockGeometry::new(4, 4);
        let blocks: Vec<Vec<f64>> = (0..2).map(|b| patterned_block(geom, b)).collect();
        let (mut bytes, _) = store_bytes(geom, 1e-9, &blocks);
        // Claim ~10^15 blocks; the index could never fit in the file, so
        // open() must fail on the bounds check (the header CRC also
        // breaks, but either way: no giant allocation).
        bytes[32..40].copy_from_slice(&(1u64 << 50).to_le_bytes());
        let err = StoreReader::from_source(Cursor::new(bytes), RetryPolicy::none()).unwrap_err();
        assert!(
            matches!(err, StoreError::Checksum { .. } | StoreError::Corrupt { .. }),
            "got {err:?}"
        );
    }
}
