//! Model-based proptests for the client circuit breaker as a
//! standalone unit (DESIGN §14), mirroring `cache_model.rs`.
//!
//! An independent reference model — a three-state machine over a plain
//! `Vec` of failure timestamps, pruned by filtering rather than the
//! breaker's deque arithmetic — is replayed op-for-op against the real
//! [`Breaker`]. Divergence anywhere (a probe the model would refuse, a
//! transition the model didn't see, a drifted transition tally) fails
//! the case. On top of op-level agreement, the suite pins the
//! documented invariants:
//!
//! * an open breaker refuses every attempt until its cooldown elapses,
//!   and `retry_in_us` plus the elapsed cooldown always equals the
//!   configured cooldown,
//! * transition algebra: every half-open needs a prior open and every
//!   close needs a prior half-open (`half_opened <= opened`,
//!   `closed <= half_opened`),
//! * the only transition `allow` can report is `HalfOpened`, and the
//!   only time it does so is when it returns `true` from `Open`,
//! * a same-seed replay yields bit-identical transition counts — the
//!   determinism the soak overload storm gates on.
//!
//! Timestamps are monotone non-decreasing, matching the breaker's
//! contract (the client feeds it a monotone clock).

use durable::retry::splitmix64;
use eri_server::{Breaker, BreakerConfig, BreakerState, Transition};

/// Independent reference: failures kept in a `Vec`, window applied by
/// filtering, state held as a plain enum.
struct Model {
    cfg: BreakerConfig,
    state: RefState,
    fails: Vec<u64>,
    opened: u64,
    half_opened: u64,
    closed: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RefState {
    Closed,
    Open(u64),
    HalfOpen,
}

impl Model {
    fn new(cfg: BreakerConfig) -> Self {
        Model { cfg, state: RefState::Closed, fails: Vec::new(), opened: 0, half_opened: 0, closed: 0 }
    }

    fn state(&self) -> BreakerState {
        match self.state {
            RefState::Closed => BreakerState::Closed,
            RefState::Open(_) => BreakerState::Open,
            RefState::HalfOpen => BreakerState::HalfOpen,
        }
    }

    fn allow(&mut self, now: u64) -> (bool, Option<Transition>) {
        match self.state {
            RefState::Closed | RefState::HalfOpen => (true, None),
            RefState::Open(since) => {
                if now.saturating_sub(since) >= self.cfg.cooldown_us {
                    self.state = RefState::HalfOpen;
                    self.half_opened += 1;
                    (true, Some(Transition::HalfOpened))
                } else {
                    (false, None)
                }
            }
        }
    }

    fn retry_in(&self, now: u64) -> u64 {
        match self.state {
            RefState::Open(since) => self.cfg.cooldown_us.saturating_sub(now.saturating_sub(since)),
            _ => 0,
        }
    }

    fn record(&mut self, success: bool, now: u64) -> Option<Transition> {
        match self.state {
            RefState::HalfOpen => {
                if success {
                    self.state = RefState::Closed;
                    self.fails.clear();
                    self.closed += 1;
                    Some(Transition::Closed)
                } else {
                    self.state = RefState::Open(now);
                    self.opened += 1;
                    Some(Transition::Opened)
                }
            }
            RefState::Closed => {
                if success {
                    return None;
                }
                self.fails.push(now);
                let horizon = now.saturating_sub(self.cfg.window_us);
                self.fails.retain(|&t| t >= horizon);
                if self.fails.len() as u32 >= self.cfg.failure_threshold {
                    self.state = RefState::Open(now);
                    self.fails.clear();
                    self.opened += 1;
                    Some(Transition::Opened)
                } else {
                    None
                }
            }
            RefState::Open(_) => None, // late outcomes from pre-trip attempts
        }
    }
}

/// Replays `ops` seeded operations against a fresh breaker, checking
/// the model at every step when `check`, and returns the final
/// transition tally.
fn replay(seed: u64, cfg: &BreakerConfig, ops: usize, check: bool) -> (u64, u64, u64) {
    let mut b = Breaker::new(cfg.clone());
    let mut m = Model::new(cfg.clone());
    let mut now = 0u64;
    for i in 0..ops {
        let r = splitmix64(seed ^ splitmix64(i as u64 + 1));
        now += r % 600; // monotone clock, 0..599 µs steps
        match (r >> 32) % 3 {
            0 => {
                let got = b.allow(now);
                let want = m.allow(now);
                if check {
                    assert_eq!(got, want, "op {i}: allow({now}) diverged (seed {seed})");
                    // `allow` may only ever report the probe admission,
                    // and only alongside a `true`.
                    if let (ok, Some(t)) = got {
                        assert!(ok && t == Transition::HalfOpened, "op {i}: bogus allow transition");
                    }
                }
            }
            1 => {
                let success = r >> 48 & 1 == 0;
                let got = b.record(success, now);
                let want = m.record(success, now);
                if check {
                    assert_eq!(got, want, "op {i}: record({success}, {now}) diverged (seed {seed})");
                }
            }
            _ => {
                if check {
                    assert_eq!(
                        b.retry_in_us(now),
                        m.retry_in(now),
                        "op {i}: retry_in_us({now}) diverged (seed {seed})"
                    );
                }
            }
        }
        if check {
            assert_eq!(b.state(), m.state(), "op {i}: state diverged (seed {seed})");
            let c = b.counts();
            assert_eq!((c.opened, c.half_opened, c.closed), (m.opened, m.half_opened, m.closed));
            // Transition algebra: every half-open needs a prior open,
            // every close a prior half-open.
            assert!(c.half_opened <= c.opened, "half-opened without an open");
            assert!(c.closed <= c.half_opened, "closed without a half-open");
            // An open breaker is honest about when it will probe: a
            // positive retry-in means the cooldown has not elapsed.
            if b.state() == BreakerState::Open {
                assert!(b.retry_in_us(now) <= cfg.cooldown_us, "retry_in past the cooldown");
            }
        }
    }
    let c = b.counts();
    if check {
        let m2 = (m.opened, m.half_opened, m.closed);
        assert_eq!((c.opened, c.half_opened, c.closed), m2);
    }
    (c.opened, c.half_opened, c.closed)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    #[test]
    fn breaker_agrees_with_the_reference_model(
        seed in proptest::prelude::any::<u64>(),
        failure_threshold in 1u32..6,
        window_us in 1u64..5_000,
        cooldown_us in 0u64..2_000,
        ops in 1usize..500,
    ) {
        let cfg = BreakerConfig { failure_threshold, window_us, cooldown_us };
        replay(seed, &cfg, ops, true);
    }

    #[test]
    fn same_seed_replay_has_identical_transition_counts(
        seed in proptest::prelude::any::<u64>(),
        failure_threshold in 1u32..6,
        window_us in 1u64..5_000,
        cooldown_us in 0u64..2_000,
        ops in 1usize..500,
    ) {
        let cfg = BreakerConfig { failure_threshold, window_us, cooldown_us };
        let a = replay(seed, &cfg, ops, false);
        let b = replay(seed, &cfg, ops, false);
        assert_eq!(a, b, "same seed must replay to bit-identical transition counts");
    }
}
