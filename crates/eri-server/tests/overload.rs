//! Integration tests for the overload-control layer (DESIGN §14):
//! graceful drain books and PTRF version negotiation.
//!
//! * **Drain, don't drop.** A server with slow (injected-delay)
//!   handlers is drained while concurrent clients hammer it. The
//!   admission books must balance (`admitted == completed`, drain
//!   complete) and every response a client *did* receive must be
//!   byte-identical to the store — an admitted request is never
//!   dropped or torn, and every refusal is a structured error.
//! * **v1 peer ↔ v2 server.** A raw client speaking only v1 frames
//!   (kinds 2/4) gets correct data, v1-kind replies, and — when the
//!   server sheds — structured per-block `Io` errors instead of the
//!   v2 `Overloaded` frame it could not parse.
//! * **v2 client ↔ v1 server.** A `RemoteClient` handshaking with a
//!   version-1 server must send only v1 request kinds and still
//!   complete reads and stats calls.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eri_server::protocol::{
    self, BlockErrorKind, Hello, Message, ReadRequest, ReadResponse, WireBlock, WireStats,
    MIN_PROTO_VERSION, PROTO_VERSION,
};
use eri_server::transport::{Conn, ServeOptions};
use eri_server::{
    ClientConfig, Endpoint, InjectedLoad, OverloadInject, RemoteClient, ServerConfig, ServerHandle,
    TransportServer,
};

const BLOCKS: usize = 8;
const SUBBLOCKS: usize = 4;
const SUBBLOCK_SIZE: usize = 16;

/// Same patterned-block fixture the CLI integration tests use, so a
/// fetched block can be recomputed and compared value-for-value.
fn expected_block(b: usize) -> Vec<f64> {
    let mut block = Vec::with_capacity(SUBBLOCKS * SUBBLOCK_SIZE);
    for sb in 0..SUBBLOCKS {
        let s = ((sb + b) as f64 * 0.61).cos();
        for i in 0..SUBBLOCK_SIZE {
            block.push(s * ((i + b) as f64 * 0.37).sin() * 1e-6);
        }
    }
    block
}

fn build_store(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("overload.eristore");
    let geom = pastri::BlockGeometry::new(SUBBLOCKS, SUBBLOCK_SIZE);
    let mut w = eri_store::StoreWriter::create(&path, geom, 1e-10).unwrap();
    for b in 0..BLOCKS {
        w.append_block(&expected_block(b)).unwrap();
    }
    w.finish().unwrap();
    path
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pastri-eri-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The decompressed values are lossy-compressed under eb 1e-10; a
/// served block must match the original within that bound.
fn assert_block_close(got: &[f64], b: usize) {
    let want = expected_block(b);
    assert_eq!(got.len(), want.len(), "block {b}: wrong length");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!((g - w).abs() <= 1e-9, "block {b} value {i}: {g} vs {w}");
    }
}

fn bind_server(store: &std::path::Path, opts: ServeOptions) -> (TransportServer, Endpoint) {
    let cfg = ServerConfig::default();
    let handle = ServerHandle::open(&[&store], &cfg).unwrap();
    let srv = TransportServer::bind_with(
        &Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
        Arc::new(handle),
        opts,
    )
    .unwrap();
    let ep = srv.local_endpoint();
    (srv, ep)
}

/// Drain books balance under concurrent load with slow handlers: no
/// admitted request is dropped, no received response is torn, every
/// refusal is structured.
#[test]
fn drain_books_prove_no_admitted_request_was_dropped() {
    let dir = tmpdir("drain-books");
    let store = build_store(&dir);

    // Every request's handler sleeps 2 ms, so the drain reliably
    // catches requests mid-service.
    let opts = ServeOptions {
        inject: Some(Arc::new(|_key: u64, _attempt: u32| InjectedLoad {
            shed: false,
            retry_after: Duration::ZERO,
            delay: Duration::from_millis(2),
        }) as Arc<dyn OverloadInject>),
        ..Default::default()
    };
    let (srv, ep) = bind_server(&store, opts);
    let stop = srv.stop_handle();
    let server = std::thread::spawn(move || srv.run(None));

    let ok_reads = Arc::new(AtomicU64::new(0));
    let refusals = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for c in 0..4u64 {
        let ep = ep.clone();
        let ok_reads = Arc::clone(&ok_reads);
        let refusals = Arc::clone(&refusals);
        clients.push(std::thread::spawn(move || {
            let cfg = ClientConfig {
                deadline: Duration::from_secs(2),
                ..ClientConfig::default()
            };
            let Ok(mut client) = RemoteClient::connect(&[ep], cfg) else {
                // The drain may land before this client's handshake;
                // a structured connect error is a fine outcome.
                return;
            };
            for round in 0..200u64 {
                let ids: Vec<u64> = (0..3).map(|i| (c + round + i) % BLOCKS as u64).collect();
                match client.read_blocks(&ids) {
                    Ok(blocks) => {
                        // An accepted request is never torn: every
                        // delivered block is the store's block.
                        assert_eq!(blocks.len(), ids.len());
                        for (slot, id) in blocks.iter().zip(&ids) {
                            let vals = slot.as_ref().expect("clean store block errored");
                            assert_block_close(vals, *id as usize);
                        }
                        ok_reads.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Draining/stopped: structured refusal by
                        // construction (it reached us as a typed
                        // ClientError, not a torn response).
                        refusals.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }));
    }

    // Let the clients get in flight, then drain.
    std::thread::sleep(Duration::from_millis(60));
    let outcome = stop.drain(Duration::from_secs(10));
    for t in clients {
        t.join().unwrap();
    }
    server.join().unwrap().unwrap();

    assert!(outcome.complete, "drain must finish within its deadline: {outcome:?}");
    assert_eq!(outcome.in_flight_at_deadline, 0);
    assert_eq!(
        outcome.stats.admitted, outcome.stats.completed,
        "admitted requests must all complete: {outcome:?}"
    );
    assert!(outcome.stats.admitted > 0, "the storm admitted nothing");
    assert!(ok_reads.load(Ordering::SeqCst) > 0, "no client ever succeeded");
}

/// A v1-only peer gets v1-kind replies (never `Overloaded` /
/// `StatsResponseV2`), correct data, and — when shed — structured
/// per-block `Io` errors carrying the retry hint.
#[test]
fn v1_peer_never_sees_v2_frames() {
    let dir = tmpdir("v1-peer");
    let store = build_store(&dir);

    // Clean server first: v1 reads and stats round-trip with v1 kinds.
    let (srv, ep) = bind_server(&store, ServeOptions::default());
    let server = std::thread::spawn(move || srv.run(Some(1)));
    let mut conn = Conn::connect(&ep, Duration::from_secs(2)).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let hello = match protocol::read_frame(&mut conn).unwrap() {
        Message::Hello(h) => h,
        other => panic!("expected Hello, got {other:?}"),
    };
    assert_eq!(hello.version, PROTO_VERSION, "server announces its highest version");

    protocol::write_frame(
        &mut conn,
        &Message::ReadRequest(ReadRequest {
            request_id: 7,
            deadline_ms: 2_000,
            budget_ms: 0, // not encoded in a v1 frame
            priority: 0,  // not encoded in a v1 frame
            ids: vec![0, 3],
        }),
    )
    .unwrap();
    match protocol::read_frame(&mut conn).unwrap() {
        Message::ReadResponse(rr) => {
            assert_eq!(rr.request_id, 7);
            assert_eq!(rr.blocks.len(), 2);
            for (slot, id) in rr.blocks.iter().zip([0usize, 3]) {
                match slot {
                    WireBlock::Values(v) => assert_block_close(v, id),
                    WireBlock::Error { kind, message } => {
                        panic!("clean block {id} errored: {kind:?} {message}")
                    }
                }
            }
        }
        other => panic!("v1 read must get a ReadResponse, got {other:?}"),
    }

    protocol::write_frame(&mut conn, &Message::StatsRequest).unwrap();
    match protocol::read_frame(&mut conn).unwrap() {
        Message::StatsResponse(_) => {}
        other => panic!("v1 stats must get a v1 StatsResponse, got {other:?}"),
    }
    drop(conn);
    server.join().unwrap().unwrap();

    // Shedding server: the v1 peer must get per-block Io errors with
    // the retry hint folded into the message — never a kind-7 frame.
    let opts = ServeOptions {
        inject: Some(Arc::new(|_key: u64, _attempt: u32| InjectedLoad {
            shed: true,
            retry_after: Duration::from_millis(9),
            delay: Duration::ZERO,
        }) as Arc<dyn OverloadInject>),
        ..Default::default()
    };
    let (srv, ep) = bind_server(&store, opts);
    let server = std::thread::spawn(move || srv.run(Some(1)));
    let mut conn = Conn::connect(&ep, Duration::from_secs(2)).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let Message::Hello(_) = protocol::read_frame(&mut conn).unwrap() else {
        panic!("expected Hello")
    };
    protocol::write_frame(
        &mut conn,
        &Message::ReadRequest(ReadRequest {
            request_id: 8,
            deadline_ms: 2_000,
            budget_ms: 0,
            priority: 0,
            ids: vec![1, 2],
        }),
    )
    .unwrap();
    match protocol::read_frame(&mut conn).unwrap() {
        Message::ReadResponse(rr) => {
            assert_eq!(rr.request_id, 8);
            assert_eq!(rr.blocks.len(), 2, "every requested slot answered");
            let WireBlock::Error { kind, message } = &rr.blocks[0] else {
                panic!("a shed must surface as a structured per-block error")
            };
            assert_eq!(*kind, BlockErrorKind::Io, "shed is availability, not corruption");
            assert!(
                message.contains("retry after 9 ms"),
                "retry hint must survive the v1 downgrade: {message:?}"
            );
        }
        Message::Overloaded(o) => panic!("v1 peer got a v2 Overloaded frame: {o:?}"),
        other => panic!("unexpected reply {other:?}"),
    }
    drop(conn);
    server.join().unwrap().unwrap();
}

/// A v2 `RemoteClient` handshaking with a v1 server speaks only v1
/// request kinds and still completes reads and stats.
#[test]
fn v2_client_downgrades_to_a_v1_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Mock v1 server: one connection, replies to v1 kinds only, and
    // records any v2 frame kind the client (wrongly) sends.
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::Tcp(stream);
        protocol::write_frame(
            &mut conn,
            &Message::Hello(Hello {
                version: 1,
                num_blocks: 4,
                num_subblocks: 1,
                subblock_size: 4,
                error_bound: 1e-10,
            }),
        )
        .unwrap();
        conn.flush().unwrap();
        let mut v2_frames = 0u32;
        let mut served = 0u32;
        // Loop ends when the client hangs up and the read errors out.
        while let Ok(msg) = protocol::read_frame(&mut conn) {
            match msg {
                Message::ReadRequest(rq) => {
                    // A v1 decode carries the deadline as the budget.
                    assert_eq!(rq.budget_ms, rq.deadline_ms);
                    assert_eq!(rq.priority, 0);
                    let blocks = rq
                        .ids
                        .iter()
                        .map(|&id| WireBlock::Values(vec![id as f64 + 0.5; 4]))
                        .collect();
                    protocol::write_frame(
                        &mut conn,
                        &Message::ReadResponse(ReadResponse { request_id: rq.request_id, blocks }),
                    )
                    .unwrap();
                    served += 1;
                }
                Message::StatsRequest => {
                    protocol::write_frame(
                        &mut conn,
                        &Message::StatsResponse(WireStats { requests: 11, ..WireStats::default() }),
                    )
                    .unwrap();
                }
                Message::ReadRequestV2(_) | Message::StatsRequestV2 => v2_frames += 1,
                other => panic!("mock v1 server got {other:?}"),
            }
            conn.flush().unwrap();
        }
        (v2_frames, served)
    });

    let ep = Endpoint::parse(&format!("tcp:{addr}")).unwrap();
    let mut client = RemoteClient::connect(&[ep], ClientConfig::default()).unwrap();
    assert_eq!(client.negotiated_version(), MIN_PROTO_VERSION);

    let blocks = client.read_blocks(&[0, 2, 3]).unwrap();
    assert_eq!(blocks.len(), 3);
    for (slot, id) in blocks.iter().zip([0u64, 2, 3]) {
        assert_eq!(slot.as_ref().unwrap(), &vec![id as f64 + 0.5; 4]);
    }
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.requests, 11);
    assert_eq!((stats.shed, stats.refused_draining, stats.admitted), (0, 0, 0));
    drop(client);

    let (v2_frames, served) = server.join().unwrap();
    assert_eq!(v2_frames, 0, "a v2 client must never send v2 kinds to a v1 server");
    assert!(served >= 1);
}
