//! Model-based proptests for the hot-block cache as a standalone unit.
//!
//! A naive reference model — per-shard MRU-first `Vec`s with the exact
//! same shard hash, entry-cost arithmetic, LRU recency rule, and
//! admission policy — is replayed op-for-op against the real
//! [`BlockCache`]. Divergence anywhere (a hit the model calls a miss,
//! a survivor the model evicted, a byte of accounting drift) fails the
//! case. On top of the op-level agreement, the suite pins the
//! documented invariants:
//!
//! * resident bytes never exceed the byte budget (globally or per
//!   shard),
//! * eviction order is exactly per-shard LRU (checked by predicting
//!   every get's hit/miss and every op's surviving key set),
//! * `hits + misses == lookups` and
//!   `insertions + admission_rejects == distinct admission attempts`,
//! * a same-seed replay yields a bit-identical deterministic tally
//!   line (soak-style determinism).
//!
//! Keys map to block lengths deterministically (`len(key)`), mirroring
//! the server's invariant that a block id always denotes the same
//! decompressed block.

use std::sync::Arc;

use durable::retry::splitmix64;
use eri_server::cache::{entry_cost, BlockCache};
use proptest::{proptest, ProptestConfig};

/// Deterministic block length for a key: 1..=64 values.
fn len_of(key: u64) -> usize {
    1 + (splitmix64(key ^ 0xdead_beef_cafe_f00d) % 64) as usize
}

/// Reference model: per shard, an MRU-first list of keys plus the
/// cache's own cost arithmetic.
struct Model {
    shards: Vec<Vec<u64>>, // index 0 = most recently used
    per_shard_budget: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    admission_rejects: u64,
}

impl Model {
    fn new(byte_budget: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Model {
            shards: vec![Vec::new(); shards],
            per_shard_budget: byte_budget / shards,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            admission_rejects: 0,
        }
    }

    fn shard_of(&self, key: u64) -> usize {
        (splitmix64(key) % self.shards.len() as u64) as usize
    }

    fn shard_bytes(&self, s: usize) -> usize {
        self.shards[s].iter().map(|&k| entry_cost(len_of(k))).sum()
    }

    fn total_bytes(&self) -> usize {
        (0..self.shards.len()).map(|s| self.shard_bytes(s)).sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Predicts a lookup: true = hit (and refreshes recency).
    fn get(&mut self, key: u64) -> bool {
        let s = self.shard_of(key);
        if let Some(i) = self.shards[s].iter().position(|&k| k == key) {
            let k = self.shards[s].remove(i);
            self.shards[s].insert(0, k);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Predicts an insert: true = admitted.
    fn insert(&mut self, key: u64) -> bool {
        let s = self.shard_of(key);
        if let Some(i) = self.shards[s].iter().position(|&k| k == key) {
            let k = self.shards[s].remove(i);
            self.shards[s].insert(0, k);
            self.insertions += 1; // a refresh counts as an admission
            return true;
        }
        let cost = entry_cost(len_of(key));
        if cost > self.per_shard_budget {
            self.admission_rejects += 1;
            return false;
        }
        while self.shard_bytes(s) + cost > self.per_shard_budget {
            self.shards[s].pop(); // strict LRU: back of the list goes first
            self.evictions += 1;
        }
        self.shards[s].insert(0, key);
        self.insertions += 1;
        true
    }
}

fn block_for(key: u64) -> Arc<Vec<f64>> {
    Arc::new(vec![f64::from_bits(splitmix64(key)); len_of(key)])
}

/// Replays `ops` seeded operations against a fresh cache, checking the
/// model at every step, and returns the final tally line.
fn replay(seed: u64, byte_budget: usize, shards: usize, ops: usize, check: bool) -> String {
    let cache = BlockCache::new(byte_budget, shards);
    let mut model = Model::new(byte_budget, shards);
    for i in 0..ops {
        let r = splitmix64(seed ^ splitmix64(i as u64 + 1));
        let key = r % 96; // small key space so reuse and eviction both happen
        if r >> 32 & 1 == 0 {
            let want_hit = model.get(key);
            let got = cache.get(key);
            if check {
                assert_eq!(
                    got.is_some(),
                    want_hit,
                    "op {i}: get({key}) diverged from the LRU model (seed {seed})"
                );
                if let Some(b) = &got {
                    assert_eq!(b.len(), len_of(key), "op {i}: wrong block for {key}");
                }
            }
        } else {
            let want_admit = model.insert(key);
            let admitted = cache.insert(key, block_for(key));
            if check {
                assert_eq!(admitted, want_admit, "op {i}: insert({key}) admission diverged");
            }
        }
        if check {
            let s = cache.stats();
            assert!(
                s.bytes <= s.capacity_bytes,
                "op {i}: budget exceeded: {} > {}",
                s.bytes,
                s.capacity_bytes
            );
            assert_eq!(s.bytes as usize, model.total_bytes(), "op {i}: byte accounting drift");
        }
    }

    let s = cache.stats();
    if check {
        // Survivors are exactly the model's survivors — this is what
        // pins the eviction *order*, not just the eviction count.
        assert_eq!(cache.len(), model.len(), "resident count diverged");
        for shard in &model.shards {
            for &k in shard {
                assert!(cache.peek(k), "model says {k} is resident, cache disagrees");
            }
        }
        // Counter algebra.
        assert_eq!(s.hits + s.misses, s.lookups, "hits+misses must equal lookups");
        assert_eq!(s.hits, model.hits);
        assert_eq!(s.misses, model.misses);
        assert_eq!(s.insertions, model.insertions);
        assert_eq!(s.evictions, model.evictions);
        assert_eq!(s.admission_rejects, model.admission_rejects);
        assert!(s.high_water_bytes >= s.bytes);
    }
    s.tally_line()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_agrees_with_the_lru_model(
        seed in proptest::any::<u64>(),
        byte_budget in 256usize..12_288,
        shards in 1usize..5,
        ops in 1usize..400,
    ) {
        replay(seed, byte_budget, shards, ops, true);
    }

    #[test]
    fn same_seed_replay_is_tally_identical(
        seed in proptest::any::<u64>(),
        byte_budget in 256usize..12_288,
        shards in 1usize..5,
        ops in 1usize..400,
    ) {
        let a = replay(seed, byte_budget, shards, ops, false);
        let b = replay(seed, byte_budget, shards, ops, false);
        assert_eq!(a, b, "same seed must replay to a bit-identical tally line");
        // And the line is well-formed for the CI diff: one JSON object.
        assert!(a.starts_with('{') && a.ends_with('}') && !a.contains('\n'));
    }
}
