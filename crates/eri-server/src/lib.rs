//! Sharded cache server over `eri-store`: the serve-many-readers layer
//! of the PaSTRI reuse story.
//!
//! The paper's payoff is compress-once / decompress-many — two-electron
//! integrals are generated once, then re-read every SCF iteration. This
//! crate turns the single-process `StoreReader` into a concurrent,
//! read-mostly service:
//!
//! * **Shard router** — each store's shell-quartet block range is split
//!   into contiguous shards ([`eri_store::shard_ranges`]); every shard
//!   owns an independent file handle behind its own lock, so a batch
//!   fanned across shards reads genuinely in parallel. Multiple stores
//!   mount side by side under one global block index space.
//! * **Hot-block cache** — a byte-budgeted, sharded-lock LRU/admission
//!   cache ([`cache::BlockCache`]) holding *decompressed* blocks, so a
//!   popular quartet pays decompression once, not once per reuse.
//! * **Batched reads** — [`ServerHandle::read_blocks`] takes one
//!   request's block ids, serves hits from memory, fans the misses
//!   across shards on the rayon pool, and reassembles results in
//!   request order.
//! * **Repair-on-read preserved** — misses go through
//!   [`eri_store::StoreReader::read_block`], so an injected fault heals
//!   from container parity and counts `store.blocks_repaired` exactly
//!   like a direct read; only the *post-repair* block is ever admitted
//!   to the cache (there is no pre-repair value to leak: insertion
//!   happens strictly after `read_block` returns the certified block).
//!
//! Telemetry contract (all under the global recorder, off by default):
//! counters `server.requests`, `server.blocks`, `server.store_reads`;
//! histograms `server.read_us` (per-block service time, hits included)
//! and `server.miss_us` (store fetch + decompress path only); span
//! `server.batch`. The cache layer adds `cache.hits` / `cache.misses` /
//! `cache.evictions` / `cache.admission_rejects` and the `cache.bytes`
//! gauge.
//!
//! Two front ends share this handle: the in-process API used by tests
//! and the pfs-sim reuse projection, and the `pastri serve` /
//! `pastri bench-server` CLI pair (see `replay` for the seeded traffic
//! generator behind BENCH_server.json).

use std::fs::File;
use std::io::{Read, Seek};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use eri_store::{shard_ranges, ReadStats, RetryPolicy, StoreError, StoreReader};
use pastri::BlockGeometry;
use rayon::prelude::*;

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod client;
pub mod protocol;
pub mod replay;
pub mod transport;

pub use admission::{AdmissionConfig, AdmissionController, DrainOutcome, InjectedLoad, OverloadInject};
pub use breaker::{Breaker, BreakerConfig, BreakerState, Transition};
pub use cache::{BlockCache, CacheStats};
pub use client::{BlockError, BlockErrorKind, ClientConfig, ClientError, ClientStats, RemoteClient};
pub use transport::{Endpoint, StopHandle, TransportServer};

/// Byte source a shard reader can be built over. File-backed in
/// production; tests substitute `faults::FaultyReader` (transient-retry
/// parity) or a panicking reader (poison recovery).
pub trait ShardSource: Read + Seek + Send {}
impl<T: Read + Seek + Send> ShardSource for T {}

/// Boxed shard source, as produced by an [`ServerHandle::open_with_sources`] factory.
pub type BoxedSource = Box<dyn ShardSource>;

/// Recovers a shard lock even if a previous holder panicked mid-read.
/// The guarded state is a read-only file handle plus retry/repair
/// counters — nothing is left half-written by an unwind — so serving
/// must continue rather than brick the shard (the old `.unwrap()` here
/// turned one injected panic into permanent `PoisonError`s).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Anything the server can fail with.
#[derive(Debug)]
pub enum ServerError {
    /// A shard read failed; `block` is the *global* block id.
    Store { block: usize, source: StoreError },
    /// The mounted stores cannot form one coherent index space.
    Config(String),
    /// A requested global block id past the end of the mounted stores.
    OutOfRange { index: usize, blocks: usize },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Store { block, source } => {
                write!(f, "block {block}: {source}")
            }
            ServerError::Config(msg) => write!(f, "server config: {msg}"),
            ServerError::OutOfRange { index, blocks } => {
                write!(f, "block {index} out of range (store has {blocks})")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Store { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ServerError {
    /// Does this error mean the *artifact* is bad (CLI exit 2), as
    /// opposed to an I/O / usage problem (exit 1)? Mirrors the
    /// `verify` command's classification of [`StoreError`].
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        match self {
            ServerError::Store { source, .. } => !matches!(source, StoreError::Io(_)),
            ServerError::Config(_) | ServerError::OutOfRange { .. } => false,
        }
    }
}

/// Tunables for [`ServerHandle::open`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Contiguous shards each mounted store is split into (each shard =
    /// one independent file handle + lock).
    pub shards_per_store: usize,
    /// Hot-block cache byte budget (decompressed payload + overhead).
    pub cache_bytes: usize,
    /// Lock shards inside the cache.
    pub cache_shards: usize,
    /// Transient-retry policy handed to every shard reader.
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards_per_store: 4,
            cache_bytes: 8 << 20,
            cache_shards: 8,
            retry: RetryPolicy::default(),
        }
    }
}

/// Batch positions paired with the blocks served into them.
type FetchedBlocks = Vec<(usize, Arc<Vec<f64>>)>;

/// One request slot's outcome: the position in the caller's id list
/// paired with the served block or its structured error.
type SlotResult = (usize, Result<Arc<Vec<f64>>, ServerError>);

/// One shard: a contiguous global block range served by its own reader.
struct Shard {
    /// First global block id this shard serves.
    global_start: usize,
    /// Number of blocks in the shard.
    len: usize,
    /// The shard's range start *within its own store*.
    local_start: usize,
    reader: Mutex<StoreReader<BoxedSource>>,
}

/// Aggregated serving counters, independent of whether the global
/// telemetry recorder is enabled. `reads` carries the transient-retry /
/// repair attribution for the server miss path — the same numbers a
/// direct `StoreReader` would have accumulated for the same reads (the
/// differential battery asserts exact parity under injected faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Batches served via `read_blocks` / `read_blocks_each`.
    pub requests: u64,
    /// Block positions served (hits + misses).
    pub blocks: u64,
    /// Blocks that went to a store shard (cache misses, post-dedup).
    pub store_reads: u64,
    /// Transient-retry + repair counters summed across shard readers.
    pub reads: ReadStats,
}

/// An open server: mounted stores, shard router, and hot-block cache.
/// All read methods take `&self` and are safe to call from many threads
/// (tests drive it from rayon workers).
pub struct ServerHandle {
    shards: Vec<Shard>,
    cache: BlockCache,
    geometry: BlockGeometry,
    error_bound: f64,
    num_blocks: usize,
    stores: usize,
    compressed_bytes: u64,
    served_requests: AtomicU64,
    served_blocks: AtomicU64,
    store_reads: AtomicU64,
}

impl ServerHandle {
    /// Mounts `paths` (in order) as one global block index space:
    /// store 0's blocks come first, then store 1's, and so on. Every
    /// store must share one block geometry and error bound — a server
    /// serves one dataset, not a grab bag.
    pub fn open(paths: &[impl AsRef<Path>], cfg: &ServerConfig) -> Result<Self, ServerError> {
        Self::open_with_sources(paths, cfg, &mut |path| {
            File::open(path).map(|f| Box::new(f) as BoxedSource)
        })
    }

    /// [`ServerHandle::open`] with an injectable byte-source factory:
    /// `source_for(path)` is called once per probe and once per shard,
    /// each call producing an independent seekable handle over that
    /// store's bytes. Production uses plain `File`s; the differential
    /// tests wrap files in seeded `FaultyReader`s (retry attribution
    /// parity) or panic-once readers (shard-lock poison recovery).
    pub fn open_with_sources(
        paths: &[impl AsRef<Path>],
        cfg: &ServerConfig,
        source_for: &mut dyn FnMut(&Path) -> std::io::Result<BoxedSource>,
    ) -> Result<Self, ServerError> {
        if paths.is_empty() {
            return Err(ServerError::Config("no stores to mount".into()));
        }
        let mut shards = Vec::new();
        let mut geometry: Option<BlockGeometry> = None;
        let mut error_bound = 0.0f64;
        let mut base = 0usize;
        let mut compressed_bytes = 0u64;
        for (si, path) in paths.iter().enumerate() {
            let path = path.as_ref();
            let open_source = |e: std::io::Error, block: usize| ServerError::Store {
                block,
                source: StoreError::Io(e),
            };
            let probe = StoreReader::from_source(
                source_for(path).map_err(|e| open_source(e, base))?,
                cfg.retry,
            )
            .map_err(|e| ServerError::Store { block: base, source: e })?;
            match geometry {
                None => {
                    geometry = Some(probe.geometry());
                    error_bound = probe.error_bound();
                }
                Some(g) => {
                    if probe.geometry() != g || probe.error_bound() != error_bound {
                        return Err(ServerError::Config(format!(
                            "store {} ({}) disagrees on geometry or error bound",
                            si,
                            path.display()
                        )));
                    }
                }
            }
            let nb = probe.num_blocks();
            compressed_bytes += probe.payload_bytes();
            for range in shard_ranges(nb, cfg.shards_per_store) {
                // Each shard gets a private file handle so shard reads
                // never serialize on one seek position.
                let source = source_for(path).map_err(|e| open_source(e, base + range.start))?;
                let reader = StoreReader::from_source(source, cfg.retry).map_err(|e| {
                    ServerError::Store { block: base + range.start, source: e }
                })?;
                shards.push(Shard {
                    global_start: base + range.start,
                    len: range.len(),
                    local_start: range.start,
                    reader: Mutex::new(reader),
                });
            }
            base += nb;
        }
        Ok(ServerHandle {
            shards,
            cache: BlockCache::new(cfg.cache_bytes, cfg.cache_shards),
            // Filled on the first iteration; `paths` was checked
            // non-empty above, so this can only be a logic error — but
            // mount paths return structured errors, never panic.
            geometry: geometry
                .ok_or_else(|| ServerError::Config("no store produced a geometry".into()))?,
            error_bound,
            num_blocks: base,
            stores: paths.len(),
            compressed_bytes,
            served_requests: AtomicU64::new(0),
            served_blocks: AtomicU64::new(0),
            store_reads: AtomicU64::new(0),
        })
    }

    /// Total blocks across all mounted stores.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Shared block geometry of the mounted stores.
    #[must_use]
    pub fn geometry(&self) -> BlockGeometry {
        self.geometry
    }

    /// Shared error bound of the mounted stores.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// Number of store shards behind the router.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of mounted stores.
    #[must_use]
    pub fn num_stores(&self) -> usize {
        self.stores
    }

    /// Compressed payload bytes across all mounted stores.
    #[must_use]
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Decompressed size of the full dataset in bytes.
    #[must_use]
    pub fn raw_bytes(&self) -> u64 {
        (self.num_blocks * self.geometry.block_size() * 8) as u64
    }

    /// Hot-block cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregated transient-retry / repair counters across every shard
    /// reader — `blocks_repaired` here must match what the same reads
    /// would have cost a direct `StoreReader` (the differential tests
    /// hold the server to that).
    #[must_use]
    pub fn read_stats(&self) -> ReadStats {
        let mut total = ReadStats::default();
        for s in &self.shards {
            let st = lock_recover(&s.reader).read_stats();
            total.transient_retries += st.transient_retries;
            total.backoff_micros += st.backoff_micros;
            total.blocks_repaired += st.blocks_repaired;
            total.blocks_dropped += st.blocks_dropped;
        }
        total
    }

    /// Serving counters plus the aggregated shard [`ReadStats`] — the
    /// numbers `pastri serve` prints and the wire `StatsResponse`
    /// carries, live whether or not telemetry is enabled.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.served_requests.load(Ordering::Relaxed),
            blocks: self.served_blocks.load(Ordering::Relaxed),
            store_reads: self.store_reads.load(Ordering::Relaxed),
            reads: self.read_stats(),
        }
    }

    /// Shard index serving global block `id` (ids are contiguous per
    /// shard, in order, so this is a binary search).
    fn shard_of_block(&self, id: usize) -> usize {
        self.shards.partition_point(|s| s.global_start + s.len <= id)
    }

    /// Serves one batch: block `ids` (duplicates and any order allowed)
    /// → decompressed blocks in the same positions. Hits come straight
    /// from the cache; misses are grouped per shard and fetched in
    /// parallel on the rayon pool, each through the repair-on-read
    /// path, then admitted to the cache post-repair.
    ///
    /// Fails fast on the first shard error (lowest shard index wins,
    /// deterministically), tagged with the global block id.
    pub fn read_blocks(&self, ids: &[usize]) -> Result<Vec<Arc<Vec<f64>>>, ServerError> {
        telemetry::counter_add("server.requests", 1);
        self.served_requests.fetch_add(1, Ordering::Relaxed);
        let _batch = telemetry::span("server.batch");
        let mut out: Vec<Option<Arc<Vec<f64>>>> = vec![None; ids.len()];
        let mut by_shard: Vec<Vec<(usize, usize)>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (pos, &id) in ids.iter().enumerate() {
            if id >= self.num_blocks {
                return Err(ServerError::OutOfRange { index: id, blocks: self.num_blocks });
            }
            let t = Instant::now();
            match self.cache.get(id as u64) {
                Some(hit) => {
                    telemetry::observe_us("server.read_us", t.elapsed().as_micros() as u64);
                    out[pos] = Some(hit);
                }
                None => by_shard[self.shard_of_block(id)].push((pos, id)),
            }
        }

        let groups: Vec<(usize, Vec<(usize, usize)>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let fetched: Vec<Result<FetchedBlocks, ServerError>> = groups
            .into_par_iter()
            .map(|(sid, items)| self.fetch_from_shard(sid, &items))
            .collect();
        for group in fetched {
            for (pos, block) in group? {
                out[pos] = Some(block);
            }
        }
        telemetry::counter_add("server.blocks", ids.len() as u64);
        self.served_blocks.fetch_add(ids.len() as u64, Ordering::Relaxed);
        Ok(out.into_iter().map(|b| b.expect("every position filled")).collect())
    }

    /// Degraded-mode batch: like [`ServerHandle::read_blocks`] but one
    /// bad block never sinks the batch — every position gets its own
    /// `Result`, so a corrupt or out-of-range block id yields a
    /// structured per-position error while the rest of the batch is
    /// served normally. This is the transport serving path: a remote
    /// client asked for 64 blocks deserves 63 good blocks and one
    /// per-block error frame, not a connection reset.
    pub fn read_blocks_each(&self, ids: &[usize]) -> Vec<Result<Arc<Vec<f64>>, ServerError>> {
        telemetry::counter_add("server.requests", 1);
        self.served_requests.fetch_add(1, Ordering::Relaxed);
        let _batch = telemetry::span("server.batch");
        let mut out: Vec<Option<Result<Arc<Vec<f64>>, ServerError>>> =
            (0..ids.len()).map(|_| None).collect();
        let mut by_shard: Vec<Vec<(usize, usize)>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (pos, &id) in ids.iter().enumerate() {
            if id >= self.num_blocks {
                out[pos] = Some(Err(ServerError::OutOfRange { index: id, blocks: self.num_blocks }));
                continue;
            }
            let t = Instant::now();
            match self.cache.get(id as u64) {
                Some(hit) => {
                    telemetry::observe_us("server.read_us", t.elapsed().as_micros() as u64);
                    out[pos] = Some(Ok(hit));
                }
                None => by_shard[self.shard_of_block(id)].push((pos, id)),
            }
        }

        let groups: Vec<(usize, Vec<(usize, usize)>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let fetched: Vec<Vec<SlotResult>> = groups
            .into_par_iter()
            .map(|(sid, items)| self.fetch_from_shard_each(sid, &items))
            .collect();
        for group in fetched {
            for (pos, res) in group {
                out[pos] = Some(res);
            }
        }
        telemetry::counter_add("server.blocks", ids.len() as u64);
        self.served_blocks.fetch_add(ids.len() as u64, Ordering::Relaxed);
        out.into_iter().map(|b| b.expect("every position filled")).collect()
    }

    /// Convenience wrapper: one block.
    pub fn read_block(&self, id: usize) -> Result<Arc<Vec<f64>>, ServerError> {
        Ok(self.read_blocks(&[id])?.pop().expect("one result"))
    }

    /// One cache-miss store read under the shard lock: repair-on-read
    /// via `StoreReader::read_block`, telemetry, and strictly
    /// post-repair cache admission (`read_block` only returns certified
    /// — checksum-verified, parity-rebuilt if needed — values, so
    /// nothing stale can be admitted).
    fn read_miss(
        &self,
        shard: &Shard,
        reader: &mut StoreReader<BoxedSource>,
        id: usize,
    ) -> Result<Arc<Vec<f64>>, ServerError> {
        let t = Instant::now();
        let local = id - shard.global_start + shard.local_start;
        let repaired_before = reader.read_stats().blocks_repaired;
        let values = reader
            .read_block(local)
            .map_err(|e| ServerError::Store { block: id, source: e })?;
        let repaired = reader.read_stats().blocks_repaired - repaired_before;
        if repaired > 0 {
            // Repair-on-read healed this block mid-serve: a journal
            // event ties the heal to the block id (and, when the read
            // came over the wire, to the originating trace).
            telemetry::journal("store.repair", id as u64, repaired);
        }
        let us = t.elapsed().as_micros() as u64;
        telemetry::observe_us("server.miss_us", us);
        telemetry::observe_us("server.read_us", us);
        telemetry::counter_add("server.store_reads", 1);
        self.store_reads.fetch_add(1, Ordering::Relaxed);
        let block = Arc::new(values);
        self.cache.insert(id as u64, Arc::clone(&block));
        Ok(block)
    }

    /// Fetches a batch's misses that all route to shard `sid`. Runs on
    /// a rayon worker; holds the shard lock across the group so one
    /// seek pass serves it. Duplicate ids within the group are read
    /// once and fanned to every position. Fail-fast: the group stops at
    /// its first error (lowest-shard-first determinism for
    /// `read_blocks`).
    fn fetch_from_shard(
        &self,
        sid: usize,
        items: &[(usize, usize)],
    ) -> Result<FetchedBlocks, ServerError> {
        let shard = &self.shards[sid];
        let mut reader = lock_recover(&shard.reader);
        let mut got: FetchedBlocks = Vec::with_capacity(items.len());
        let mut this_batch: FetchedBlocks = Vec::new(); // id → block, tiny
        for &(pos, id) in items {
            if let Some((_, b)) = this_batch.iter().find(|(bid, _)| *bid == id) {
                got.push((pos, Arc::clone(b)));
                continue;
            }
            let block = self.read_miss(shard, &mut reader, id)?;
            this_batch.push((id, Arc::clone(&block)));
            got.push((pos, block));
        }
        Ok(got)
    }

    /// Degraded sibling of [`ServerHandle::fetch_from_shard`]: an error
    /// is recorded against its own position and the rest of the group
    /// is still served. Duplicates of a *failed* id are re-read rather
    /// than memoized — errors carry non-clonable I/O sources, and a
    /// block that just failed may well heal on the retry path anyway.
    fn fetch_from_shard_each(
        &self,
        sid: usize,
        items: &[(usize, usize)],
    ) -> Vec<SlotResult> {
        let shard = &self.shards[sid];
        let mut reader = lock_recover(&shard.reader);
        let mut got: Vec<SlotResult> = Vec::with_capacity(items.len());
        let mut this_batch: FetchedBlocks = Vec::new();
        for &(pos, id) in items {
            if let Some((_, b)) = this_batch.iter().find(|(bid, _)| *bid == id) {
                got.push((pos, Ok(Arc::clone(b))));
                continue;
            }
            match self.read_miss(shard, &mut reader, id) {
                Ok(block) => {
                    this_batch.push((id, Arc::clone(&block)));
                    got.push((pos, Ok(block)));
                }
                Err(e) => got.push((pos, Err(e))),
            }
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eri_store::StoreWriter;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("eri-server-{}-{name}", std::process::id()))
    }

    fn patterned_block(geom: BlockGeometry, seed: usize) -> Vec<f64> {
        let mut block = Vec::with_capacity(geom.block_size());
        for sb in 0..geom.num_subblocks {
            let s = ((sb + seed) as f64 * 0.61).cos();
            for i in 0..geom.subblock_size {
                block.push(s * ((i as f64 + seed as f64) * 0.37).sin() * 1e-6);
            }
        }
        block
    }

    fn build(path: &Path, geom: BlockGeometry, n: usize, seed: usize) {
        let mut w = StoreWriter::create(path, geom, 1e-10).unwrap();
        for b in 0..n {
            w.append_block(&patterned_block(geom, seed + b)).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn batched_reads_reassemble_in_request_order() {
        let geom = BlockGeometry::new(4, 16);
        let path = tmp("order.eristore");
        build(&path, geom, 10, 0);
        let srv = ServerHandle::open(&[&path], &ServerConfig::default()).unwrap();
        let mut direct = StoreReader::open(&path).unwrap();

        // Shuffled, with duplicates — positions must still line up.
        let ids = [7usize, 0, 7, 3, 9, 1, 1];
        let got = srv.read_blocks(&ids).unwrap();
        assert_eq!(got.len(), ids.len());
        for (pos, &id) in ids.iter().enumerate() {
            assert_eq!(*got[pos], direct.read_block(id).unwrap(), "position {pos}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_stores_mount_as_one_index_space() {
        let geom = BlockGeometry::new(4, 16);
        let (pa, pb) = (tmp("multi-a.eristore"), tmp("multi-b.eristore"));
        build(&pa, geom, 5, 100);
        build(&pb, geom, 7, 200);
        let srv = ServerHandle::open(&[&pa, &pb], &ServerConfig::default()).unwrap();
        assert_eq!(srv.num_blocks(), 12);
        assert_eq!(srv.num_stores(), 2);

        let mut da = StoreReader::open(&pa).unwrap();
        let mut db = StoreReader::open(&pb).unwrap();
        for id in 0..12 {
            let want = if id < 5 {
                da.read_block(id).unwrap()
            } else {
                db.read_block(id - 5).unwrap()
            };
            assert_eq!(*srv.read_block(id).unwrap(), want, "global id {id}");
        }
        let _ = std::fs::remove_file(&pa);
        let _ = std::fs::remove_file(&pb);
    }

    #[test]
    fn mismatched_stores_refuse_to_mount() {
        let (pa, pb) = (tmp("mis-a.eristore"), tmp("mis-b.eristore"));
        build(&pa, BlockGeometry::new(4, 16), 3, 0);
        build(&pb, BlockGeometry::new(2, 16), 3, 0);
        let err = match ServerHandle::open(&[&pa, &pb], &ServerConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched stores must not mount"),
        };
        assert!(matches!(err, ServerError::Config(_)), "{err}");
        assert!(!err.is_corruption());
        let _ = std::fs::remove_file(&pa);
        let _ = std::fs::remove_file(&pb);
    }

    #[test]
    fn out_of_range_is_not_corruption() {
        let geom = BlockGeometry::new(4, 16);
        let path = tmp("oor.eristore");
        build(&path, geom, 3, 0);
        let srv = ServerHandle::open(&[&path], &ServerConfig::default()).unwrap();
        let err = srv.read_block(3).unwrap_err();
        assert!(matches!(err, ServerError::OutOfRange { index: 3, blocks: 3 }), "{err}");
        assert!(!err.is_corruption());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn second_read_of_a_block_is_a_cache_hit() {
        let geom = BlockGeometry::new(4, 16);
        let path = tmp("hit.eristore");
        build(&path, geom, 4, 0);
        let srv = ServerHandle::open(&[&path], &ServerConfig::default()).unwrap();
        let a = srv.read_block(2).unwrap();
        let b = srv.read_block(2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second read must come from the cache");
        let s = srv.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        let _ = std::fs::remove_file(&path);
    }
}
