//! Hot-block cache: sharded-lock LRU with byte budget and admission.
//!
//! The server's read path is decompress-many (PaSTRI Fig. 11): the same
//! shell-quartet blocks are re-read every SCF iteration, with a skewed
//! popularity distribution. This cache holds *decompressed* blocks —
//! trading memory for the decode cost the reuse model charges per miss
//! — under a hard byte budget so a server never balloons past what the
//! operator provisioned.
//!
//! Design:
//!
//! * **Sharded locks** — keys hash (splitmix64) onto `shards`
//!   independent `Mutex<Shard>`s, each owning `budget / shards` bytes,
//!   so concurrent readers of different blocks rarely contend. A key
//!   always maps to the same shard, so per-shard LRU order is
//!   deterministic for a deterministic op sequence.
//! * **Strict LRU per shard** — an intrusive doubly-linked list over a
//!   slot arena (indices, not pointers); eviction pops the list tail
//!   until the new entry fits.
//! * **Admission** — an entry costing more than its whole shard budget
//!   is rejected outright instead of flushing the shard for a block
//!   that can never stay resident.
//!
//! Every outcome feeds both the local [`CacheStats`] (exact, used by
//! the deterministic tally line) and the global telemetry contract:
//! counters `cache.hits` / `cache.misses` / `cache.evictions` /
//! `cache.admission_rejects`, gauge `cache.bytes` (current occupancy;
//! its high-water mark is the BENCH occupancy figure).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use durable::retry::splitmix64;

/// Fixed bookkeeping cost charged per entry on top of the payload
/// (map slot + arena slot + list links, order-of-magnitude).
pub const ENTRY_OVERHEAD: usize = 64;

/// Sentinel "no slot" index for the intrusive list.
const NIL: usize = usize::MAX;

/// Bytes an entry of `len` decompressed f64 values is charged against
/// the budget. Public so the model-based proptests can mirror the
/// arithmetic exactly.
#[must_use]
pub fn entry_cost(len: usize) -> usize {
    len * 8 + ENTRY_OVERHEAD
}

struct Slot {
    key: u64,
    block: Arc<Vec<f64>>,
    cost: usize,
    prev: usize,
    next: usize,
}

/// One lock's worth of cache: an LRU list over an arena of slots.
struct Shard {
    budget: usize,
    bytes: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot, or `NIL` when empty.
    head: usize,
    /// Least recently used slot — the eviction victim.
    tail: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            budget,
            bytes: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touches `key` and returns its block, or `None` on miss.
    fn get(&mut self, key: u64) -> Option<Arc<Vec<f64>>> {
        let i = *self.map.get(&key)?;
        self.detach(i);
        self.push_front(i);
        Some(Arc::clone(&self.slots[i].block))
    }

    /// Evicts the LRU entry; returns the bytes released.
    fn evict_tail(&mut self) -> usize {
        let i = self.tail;
        debug_assert_ne!(i, NIL, "evict on empty shard");
        self.detach(i);
        let cost = self.slots[i].cost;
        self.map.remove(&self.slots[i].key);
        self.slots[i].block = Arc::new(Vec::new()); // release the payload now
        self.free.push(i);
        self.bytes -= cost;
        cost
    }

    /// Inserts (or refreshes) `key`. Returns `(admitted, evictions,
    /// net_bytes_delta)` so the caller can fold counters without
    /// holding the lock longer than the structural update.
    fn insert(&mut self, key: u64, block: Arc<Vec<f64>>) -> (bool, u64, isize) {
        let cost = entry_cost(block.len());
        if let Some(&i) = self.map.get(&key) {
            // Same key ⇒ same decompressed block; refresh recency only.
            self.detach(i);
            self.push_front(i);
            self.slots[i].block = block;
            return (true, 0, 0);
        }
        if cost > self.budget {
            return (false, 0, 0);
        }
        let mut evictions = 0u64;
        let mut released = 0usize;
        while self.bytes + cost > self.budget {
            released += self.evict_tail();
            evictions += 1;
        }
        let slot = Slot {
            key,
            block,
            cost,
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(i) = self.free.pop() {
            self.slots[i] = slot;
            i
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        };
        self.push_front(i);
        self.map.insert(key, i);
        self.bytes += cost;
        (true, evictions, cost as isize - released as isize)
    }
}

/// Exact point-in-time counters for one [`BlockCache`]. For a
/// single-threaded deterministic op sequence these are bit-reproducible
/// (same seed ⇒ same [`tally_line`](Self::tally_line)); under
/// concurrency the *sums* still obey `hits + misses == lookups`, only
/// the interleaving varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub admission_rejects: u64,
    /// Current resident bytes (payload + per-entry overhead).
    pub bytes: u64,
    /// Highest `bytes` ever reached — the occupancy high-water mark.
    pub high_water_bytes: u64,
    /// Configured byte budget.
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from memory; `None` before any.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        (self.lookups > 0).then(|| self.hits as f64 / self.lookups as f64)
    }

    /// One JSON object line with only the deterministic fields — the
    /// text the cache proptests (and CI) diff across same-seed runs.
    #[must_use]
    pub fn tally_line(&self) -> String {
        format!(
            "{{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"insertions\": {}, \
             \"evictions\": {}, \"admission_rejects\": {}, \"bytes\": {}}}",
            self.lookups,
            self.hits,
            self.misses,
            self.insertions,
            self.evictions,
            self.admission_rejects,
            self.bytes,
        )
    }
}

/// The sharded hot-block cache. All methods take `&self`; interior
/// locking is per shard.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    budget: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    admission_rejects: AtomicU64,
    bytes: AtomicUsize,
    high_water: AtomicUsize,
}

impl BlockCache {
    /// A cache holding at most `byte_budget` bytes across `shards`
    /// independently locked shards (each owns `byte_budget / shards`).
    #[must_use]
    pub fn new(byte_budget: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = byte_budget / shards;
        BlockCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            budget: byte_budget,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Which shard `key` lives on — public so the model-based tests can
    /// replicate the routing.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        (splitmix64(key) % self.shards.len() as u64) as usize
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<f64>>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let got = crate::lock_recover(&self.shards[self.shard_of(key)]).get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("cache.hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("cache.misses", 1);
        }
        got
    }

    /// Admits `block` under `key` (evicting LRU entries as needed) or
    /// rejects it if it could never fit its shard. Returns whether the
    /// block is now resident.
    pub fn insert(&self, key: u64, block: Arc<Vec<f64>>) -> bool {
        let (admitted, evictions, delta) =
            crate::lock_recover(&self.shards[self.shard_of(key)]).insert(key, block);
        if !admitted {
            self.admission_rejects.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("cache.admission_rejects", 1);
            return false;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evictions > 0 {
            self.evictions.fetch_add(evictions, Ordering::Relaxed);
            telemetry::counter_add("cache.evictions", evictions);
        }
        if delta != 0 {
            let now = if delta > 0 {
                self.bytes.fetch_add(delta as usize, Ordering::Relaxed) + delta as usize
            } else {
                self.bytes.fetch_sub((-delta) as usize, Ordering::Relaxed) - (-delta) as usize
            };
            self.high_water.fetch_max(now, Ordering::Relaxed);
            telemetry::gauge_add("cache.bytes", delta as i64);
        }
        true
    }

    /// Is `key` resident? No stats, no recency touch — a test/debug
    /// probe that leaves LRU order exactly as it was.
    #[must_use]
    pub fn peek(&self, key: u64) -> bool {
        crate::lock_recover(&self.shards[self.shard_of(key)]).map.contains_key(&key)
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| crate::lock_recover(s).map.len()).sum()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured byte budget.
    #[must_use]
    pub fn byte_budget(&self) -> usize {
        self.budget
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed) as u64,
            high_water_bytes: self.high_water.load(Ordering::Relaxed) as u64,
            capacity_bytes: self.budget as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(len: usize, fill: f64) -> Arc<Vec<f64>> {
        Arc::new(vec![fill; len])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = BlockCache::new(1 << 20, 4);
        assert!(c.get(7).is_none());
        assert!(c.insert(7, block(16, 1.5)));
        let got = c.get(7).expect("resident");
        assert_eq!(got.len(), 16);
        assert_eq!(got[0].to_bits(), 1.5f64.to_bits());
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_within_budget() {
        // Single shard so the LRU order is global: room for exactly two
        // 16-value entries (2 × (128 + 64) = 384).
        let c = BlockCache::new(384, 1);
        assert!(c.insert(1, block(16, 1.0)));
        assert!(c.insert(2, block(16, 2.0)));
        assert!(c.get(1).is_some()); // touch 1 → victim is now 2
        assert!(c.insert(3, block(16, 3.0)));
        assert!(c.peek(1) && !c.peek(2) && c.peek(3));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.capacity_bytes);
    }

    #[test]
    fn oversized_entry_is_rejected_not_admitted() {
        let c = BlockCache::new(256, 1);
        assert!(c.insert(1, block(8, 1.0))); // 64+64=128 ≤ 256
        assert!(!c.insert(2, block(64, 2.0))); // 512+64 > 256 → reject
        assert!(c.peek(1), "a reject must not flush residents");
        assert_eq!(c.stats().admission_rejects, 1);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let c = BlockCache::new(1 << 20, 1);
        c.insert(1, block(1024, 1.0));
        let peak = c.stats().bytes;
        // Force the big entry out with enough small ones.
        let c2 = BlockCache::new(entry_cost(1024), 1);
        c2.insert(1, block(1024, 1.0));
        c2.insert(2, block(8, 2.0));
        let s = c2.stats();
        assert_eq!(s.high_water_bytes, peak.max(s.high_water_bytes));
        assert!(s.bytes < s.high_water_bytes);
    }
}
